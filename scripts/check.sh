#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Work offline when the registry is unreachable (air-gapped CI, sandboxes):
# a quick fetch probe decides, and every cargo call below honours the result.
CARGO_OFFLINE=()
if ! timeout 30 cargo fetch >/dev/null 2>&1; then
    echo "== registry unreachable: running cargo with --offline =="
    CARGO_OFFLINE=(--offline)
    export CARGO_NET_OFFLINE=true
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy "${CARGO_OFFLINE[@]}" --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test "${CARGO_OFFLINE[@]}" -q --workspace

echo "== multi-process TCP loopback (bounded) =="
# The capstone: 2P OS processes over a TCP mesh must reproduce the
# in-process run bitwise. Bounded so a wedged mesh fails instead of hanging.
timeout 300 cargo test "${CARGO_OFFLINE[@]}" -q -p poseidon-bench --test tcp_loopback

echo "== telemetry smoke: traced multi-process run + overhead budget =="
# A traced TCP run must merge into valid Chrome-trace JSON (asserted by the
# launcher itself and re-checked by the trace_roundtrip test), and the
# telemetry_overhead binary regenerates BENCH_telemetry.json, the recorder's
# disabled-path overhead record. Both bounded against a wedged mesh.
timeout 300 cargo test "${CARGO_OFFLINE[@]}" -q -p poseidon-bench --test trace_roundtrip
timeout 300 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin telemetry_overhead

echo "== chaos smoke: scripted faults heal bitwise, dead peers abort bounded =="
# Fault injection is deterministic (logical frame counters, not wall-clock),
# so these are exact tests, not flaky ones — but every one involves real
# recovery machinery (retransmits, socket redials), so each stage is bounded:
# a hang here means the self-healing plane regressed into a deadlock.
timeout 300 cargo test "${CARGO_OFFLINE[@]}" -q -p poseidon-repro --test chaos_recovery
timeout 300 cargo test "${CARGO_OFFLINE[@]}" -q -p poseidon --test fault_plan_properties
timeout 300 cargo test "${CARGO_OFFLINE[@]}" -q -p poseidon-bench --test tcp_sever_reconnect

echo "== transport bench smoke: evented core vs threaded baseline =="
# Regenerates BENCH_transport.json over the full scenario grid and fails when
# the evented/threaded frames/s ratio of any scenario drops >20% below the
# committed baseline (read before the file is rewritten). Gating the ratio —
# both transports run back-to-back per scenario — cancels machine-wide speed
# drift that makes absolute-throughput gates flap; `timeout` bounds a wedged
# mesh.
timeout 900 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin transport_bench -- \
    --check-against BENCH_transport.json --out BENCH_transport.json

echo "== collective smoke: ring == PS bitwise over a 4-endpoint TCP mesh =="
# The collectives' exactness claim end to end: a ring run over real localhost
# sockets (2 workers + 2 shards = 4 endpoints) must produce replicas bitwise
# identical to the in-process PS baseline. The tcp_loopback suite above
# asserts the same; this stage re-proves it through the public launcher CLI,
# bounded so a wedged chain fails instead of hanging.
PORT=$((21000 + RANDOM % 2000))
for policy in ps ring; do
    timeout 300 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin poseidon-node -- \
        --workers 2 --iters 4 --policy "$policy" --base-port "$PORT" \
        > "/tmp/poseidon_${policy}_smoke.txt"
    grep -q "replicas=bitwise-identical" "/tmp/poseidon_${policy}_smoke.txt"
    PORT=$((PORT + 1000))
done
PS_HEX=$(grep -o 'params=[0-9a-f]*' /tmp/poseidon_ps_smoke.txt | head -1)
RING_HEX=$(grep -o 'params=[0-9a-f]*' /tmp/poseidon_ring_smoke.txt | head -1)
test -n "$PS_HEX" && test "$PS_HEX" = "$RING_HEX" \
    || { echo "ring replicas differ from the PS baseline"; exit 1; }

echo "== collective bench: ring/tree vs PS allreduce over evented TCP =="
# Regenerates BENCH_collectives.json (ps / ring / tree racing the same
# segmented allreduce over real sockets) and fails when any collective/ps
# steps-per-second ratio drops >20% below the committed baseline — the same
# machine-cancelling ratio gate as the transport stage. The committed
# baseline also documents the headline: ring beats PS on every tensor size,
# most at the large ones where serialized push/pull incast dominates.
timeout 900 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin collective_bench -- \
    --check-against BENCH_collectives.json --out BENCH_collectives.json

echo "== compression bench: per-codec traffic + convergence parity =="
# Regenerates BENCH_compression.json (identity / onebit / f16 / bf16 / topk
# training runs through the threaded runtime) and fails when any codec's
# wire-bytes ratio vs identity exceeds its committed baseline — runs are
# deterministic, so the ratios are exact facts, not flaky timings. The bench
# also asserts convergence parity internally: every codec's loss curve must
# descend and lossy finals must land near the dense final (Figure 11).
timeout 900 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin compression_bench -- \
    --check-against BENCH_compression.json --out BENCH_compression.json

echo "== codec smoke: 1-bit mesh trains bitwise-identical replicas over TCP =="
# The compression plane end to end through the public launcher: a lossy codec
# on a real socket mesh must still produce bitwise-identical replicas (error
# feedback is deterministic), while moving different params than the dense
# run — if the hex matches identity, the codec flag silently did nothing.
timeout 300 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin poseidon-node -- \
    --workers 2 --iters 4 --policy ps --codec onebit --base-port "$PORT" \
    > /tmp/poseidon_onebit_smoke.txt
grep -q "replicas=bitwise-identical" /tmp/poseidon_onebit_smoke.txt
ONEBIT_HEX=$(grep -o 'params=[0-9a-f]*' /tmp/poseidon_onebit_smoke.txt | head -1)
test -n "$ONEBIT_HEX" && test "$ONEBIT_HEX" != "$PS_HEX" \
    || { echo "--codec onebit produced the dense params; codec plane inert"; exit 1; }

echo "== metrics smoke: live scrape + health verdict + overhead budget =="
# The observability plane end to end: metrics_scrape launches a real TCP mesh
# with one scripted straggler, scrapes Prometheus text from EVERY endpoint
# mid-run over raw sockets, and asserts the launcher's health verdict names
# the delayed worker. metrics_bench then regenerates BENCH_metrics.json and
# fails when the always-on record path costs more than 2% of an instrumented
# training run (measured as interleaved min-of-reps, off vs on).
timeout 300 cargo test "${CARGO_OFFLINE[@]}" -q -p poseidon-bench --test metrics_scrape
timeout 300 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin metrics_bench

echo "== elastic smoke: reconfiguration is bitwise-invisible, front door live =="
# The elastic membership plane end to end through the public launcher: a run
# that loses shard 1, regains it, and restarts worker 0 across a generation
# boundary (checkpoint + kill + restore over real OS processes) must produce
# params bitwise identical to the fixed-membership run — ownership moves,
# epochs bump, v4 frames fence stragglers, and none of it touches the math.
# elastic_serving additionally queries the inference front door over raw
# sockets while the reconfiguration is in flight.
PORT=$((PORT + 1000))
timeout 300 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin poseidon-node -- \
    --workers 2 --iters 8 --policy ps --base-port "$PORT" \
    > /tmp/poseidon_fixed_smoke.txt
grep -q "replicas=bitwise-identical" /tmp/poseidon_fixed_smoke.txt
PORT=$((PORT + 1000))
timeout 300 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin poseidon-node -- \
    --workers 2 --iters 8 --policy ps --base-port "$PORT" \
    --membership-plan "leave:1@2;join:1@5;restart:0@6" \
    > /tmp/poseidon_elastic_smoke.txt
grep -q "replicas=bitwise-identical" /tmp/poseidon_elastic_smoke.txt
grep -q "membership_epochs=3 generations=2" /tmp/poseidon_elastic_smoke.txt
# tail -1: the elastic log holds both generations; the final generation's
# params are the ones comparable to the fixed run's.
FIXED_HEX=$(grep -o 'params=[0-9a-f]*' /tmp/poseidon_fixed_smoke.txt | tail -1)
ELASTIC_HEX=$(grep -o 'params=[0-9a-f]*' /tmp/poseidon_elastic_smoke.txt | tail -1)
test -n "$FIXED_HEX" && test "$FIXED_HEX" = "$ELASTIC_HEX" \
    || { echo "elastic replicas differ from the fixed-membership run"; exit 1; }
timeout 300 cargo test "${CARGO_OFFLINE[@]}" -q -p poseidon-bench --test elastic_serving

echo "== serving bench: the front door stays live through reconfiguration =="
# Regenerates BENCH_serving.json (client threads hammering the snapshot-backed
# inference server while the run executes a leave+rejoin plan) and fails when
# any membership epoch answers zero requests, or when requests/s fall below a
# quarter of the committed baseline — a liveness gate with a loose margin, not
# a speed race.
timeout 900 cargo run "${CARGO_OFFLINE[@]}" -q --release -p poseidon-bench --bin serving_bench -- \
    --check-against BENCH_serving.json --out BENCH_serving.json

echo "All checks passed."
