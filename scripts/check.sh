#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "All checks passed."
