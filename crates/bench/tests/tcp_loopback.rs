//! The capstone integration test: `poseidon-node` really runs `2P` OS
//! processes over a localhost TCP mesh, and the result is *bitwise* the
//! in-process `train()` result — same replica bytes, same counted traffic.
//!
//! Each test uses its own port range (derived from the test process pid) so
//! parallel test runs don't collide.

use poseidon::config::{Partition, SchemePolicy};
use poseidon::runtime::{flatten_model_params, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use std::process::Command;
use std::time::Duration;

const WORKERS: usize = 2;
const ITERS: usize = 4;
const BATCH: usize = 8;
const LR: f32 = 0.2;
const PAIR: usize = 37;
const SEED: u64 = 5;
const LAYERS: [usize; 4] = [12, 16, 8, 4];
const SAMPLES: usize = 96;

/// What the launcher printed, scraped back out.
struct LaunchReport {
    worker_params_hex: Vec<String>,
    total_bytes: u64,
    per_node: Vec<u64>,
    replicas_ok: bool,
}

fn run_launcher(policy: &str, base_port: u16) -> LaunchReport {
    let out = Command::new(env!("CARGO_BIN_EXE_poseidon-node"))
        .args([
            "--workers".to_string(),
            WORKERS.to_string(),
            "--iters".to_string(),
            ITERS.to_string(),
            "--batch".to_string(),
            BATCH.to_string(),
            "--lr".to_string(),
            LR.to_string(),
            "--policy".to_string(),
            policy.to_string(),
            "--pair-elems".to_string(),
            PAIR.to_string(),
            "--base-port".to_string(),
            base_port.to_string(),
            "--seed".to_string(),
            SEED.to_string(),
        ])
        .output()
        .expect("spawn poseidon-node launcher");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "launcher failed ({}):\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status
    );

    let mut report = LaunchReport {
        worker_params_hex: Vec::new(),
        total_bytes: u64::MAX,
        per_node: Vec::new(),
        replicas_ok: false,
    };
    for line in stdout.lines() {
        // Child lines arrive as `e{i}. key=value`; summary lines bare.
        let body = match line.split_once(". ") {
            Some((tag, rest)) if tag.starts_with('e') => rest,
            _ => line,
        };
        let Some((key, val)) = body.split_once('=') else {
            continue;
        };
        match key {
            "params" => report.worker_params_hex.push(val.to_string()),
            "traffic_total_bytes" => report.total_bytes = val.parse().expect("total bytes"),
            "traffic_per_node" => {
                report.per_node = val
                    .split(',')
                    .map(|s| s.parse().expect("node bytes"))
                    .collect();
            }
            "replicas" => report.replicas_ok = val == "bitwise-identical",
            _ => {}
        }
    }
    assert!(report.replicas_ok, "launcher summary missing:\n{stdout}");
    assert_eq!(
        report.worker_params_hex.len(),
        WORKERS,
        "one params line per worker:\n{stdout}"
    );
    report
}

/// The identical configuration run in-process over the channel transport.
fn run_inproc(policy: SchemePolicy) -> poseidon::runtime::TrainResult<poseidon_nn::Network> {
    // Must mirror the binary's defaults exactly: same data seed (seed+1),
    // same noise, same model seed.
    let data = Dataset::gaussian_clusters(
        TensorShape::flat(LAYERS[0]),
        *LAYERS.last().unwrap(),
        SAMPLES,
        0.3,
        SEED + 1,
    );
    let cfg = RuntimeConfig {
        policy,
        partition: Partition::KvPairs { pair_elems: PAIR },
        comm_timeout: Duration::from_secs(60),
        ..RuntimeConfig::new(WORKERS, BATCH, LR, ITERS)
    };
    train(&|| presets::mlp(&LAYERS, SEED), &data, None, &cfg)
}

fn hex(vals: &[f32]) -> String {
    let mut s = String::with_capacity(vals.len() * 8);
    for v in vals {
        for b in v.to_le_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
    }
    s
}

/// Deterministic per-test port base, clear of the ephemeral range.
fn port_base(slot: u16) -> u16 {
    18000 + slot * 3000 + (std::process::id() % 2800) as u16
}

#[test]
fn multiprocess_tcp_equals_inproc_ps() {
    let tcp = run_launcher("ps", port_base(0));
    let inproc = run_inproc(SchemePolicy::AlwaysPs);
    let want = hex(&flatten_model_params(&inproc.net));
    for (w, got) in tcp.worker_params_hex.iter().enumerate() {
        assert_eq!(
            got, &want,
            "worker {w}'s TCP replica differs from the in-process run"
        );
    }
    assert_eq!(
        tcp.total_bytes,
        inproc.traffic.total_bytes(),
        "both transports must count identical traffic for identical runs"
    );
    assert_eq!(tcp.per_node, inproc.traffic.per_node_totals());
}

/// The collectives' exactness claim, end to end over real sockets: a ring
/// (and tree) run on the 4-endpoint TCP loopback mesh produces replicas
/// bitwise identical to the *PS baseline* — not merely internally
/// consistent — and counts the same traffic as its in-process twin.
#[test]
fn multiprocess_tcp_ring_and_tree_equal_inproc_ps() {
    let ps = run_inproc(SchemePolicy::AlwaysPs);
    let want = hex(&flatten_model_params(&ps.net));
    for (slot, policy, scheme) in [
        (2u16, "ring", SchemePolicy::AlwaysRing),
        (3u16, "tree", SchemePolicy::AlwaysTree),
    ] {
        let tcp = run_launcher(policy, port_base(slot));
        for (w, got) in tcp.worker_params_hex.iter().enumerate() {
            assert_eq!(
                got, &want,
                "{policy}: worker {w}'s TCP replica differs from in-process PS"
            );
        }
        let inproc = run_inproc(scheme);
        assert_eq!(
            hex(&flatten_model_params(&inproc.net)),
            want,
            "{policy}: in-process collective differs from PS"
        );
        assert_eq!(
            tcp.total_bytes,
            inproc.traffic.total_bytes(),
            "{policy}: both transports must count identical traffic"
        );
        assert_eq!(tcp.per_node, inproc.traffic.per_node_totals());
    }
}

#[test]
fn multiprocess_tcp_equals_inproc_hybrid() {
    let tcp = run_launcher("hybrid", port_base(1));
    let inproc = run_inproc(SchemePolicy::Hybrid);
    let want = hex(&flatten_model_params(&inproc.net));
    assert_eq!(tcp.worker_params_hex[0], want, "hybrid TCP replica differs");
    assert_eq!(tcp.total_bytes, inproc.traffic.total_bytes());
}
