//! `poseidon-node --trace-out` end to end: a real multi-process TCP run in
//! which every endpoint process records its own telemetry, writes a Chrome
//! trace part, and the launcher merges the parts into one valid trace with
//! one pid per OS process. Uses its own port slot so it can run alongside
//! `tcp_loopback.rs`.

use poseidon::telemetry::chrome;
use std::process::Command;

const WORKERS: usize = 2;

#[test]
fn multiprocess_trace_merges_and_validates() {
    let dir = std::env::temp_dir().join(format!("poseidon_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("trace dir");
    let base = dir.join("trace.json");
    let base_str = base.to_str().expect("utf-8 temp path");

    // Port slot 2: clear of tcp_loopback's slots 0 and 1.
    let base_port = 24000 + (std::process::id() % 2800) as u16;
    let out = Command::new(env!("CARGO_BIN_EXE_poseidon-node"))
        .args([
            "--workers",
            &WORKERS.to_string(),
            "--iters",
            "3",
            "--batch",
            "8",
            "--policy",
            "hybrid",
            "--base-port",
            &base_port.to_string(),
            "--trace-out",
            base_str,
        ])
        .output()
        .expect("spawn poseidon-node launcher");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "launcher failed ({}):\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status
    );

    // The launcher validated the merge itself and said so.
    let valid_line = stdout
        .lines()
        .find(|l| l.starts_with("trace=valid"))
        .unwrap_or_else(|| panic!("no trace=valid line:\n{stdout}"));
    assert!(
        valid_line.contains(&format!("pids={}", 2 * WORKERS)),
        "{valid_line}"
    );

    // Independently re-validate the merged file and the per-endpoint parts.
    let merged = std::fs::read_to_string(&base).expect("merged trace file");
    let stats = chrome::validate(&merged).expect("merged trace must validate");
    assert_eq!(stats.pids, 2 * WORKERS, "one pid per OS process");
    assert!(stats.spans > 0 && stats.tracks >= 2 * WORKERS);
    assert!(merged.contains("wfbp.sync"), "WFBP spans present");
    assert!(merged.contains("serve.apply"), "shard spans present");
    for me in 0..2 * WORKERS {
        let part = std::fs::read_to_string(format!("{base_str}.e{me}.json"))
            .unwrap_or_else(|e| panic!("endpoint {me} trace part: {e}"));
        chrome::validate(&part).unwrap_or_else(|e| panic!("part {me} invalid: {e}"));
    }

    // The summary report made it onto endpoint 0's stdout.
    assert!(
        stdout.contains("per-layer compute vs communication"),
        "summary report missing:\n{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
