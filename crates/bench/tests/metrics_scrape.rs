//! `poseidon-node --metrics-addr` end to end: a real multi-process TCP mesh
//! where every endpoint process serves Prometheus text while it trains. The
//! test launches the mesh with one scripted straggler, scrapes EVERY
//! endpoint over a raw `TcpStream` while the run is in flight, asserts the
//! required metric families are present in the exposition, and then checks
//! the launcher's health verdict names the delayed worker. Uses its own
//! port slots so it can run alongside the other multi-process tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WORKERS: usize = 2;
/// Endpoints in the mesh: P workers + P colocated shards.
const ENDPOINTS: usize = 2 * WORKERS;

/// One plain HTTP/1.1 scrape of `addr`, returning the response body.
fn scrape(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header/body split"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::other(format!("bad status: {head}")));
    }
    Ok(body.to_string())
}

/// Scrapes `addr` until `want` succeeds on the body or the deadline passes.
fn scrape_until(addr: &str, deadline: Instant, want: impl Fn(&str) -> bool) -> String {
    let mut last_err = String::new();
    while Instant::now() < deadline {
        match scrape(addr) {
            Ok(body) if want(&body) => return body,
            Ok(_) => {}
            Err(e) => last_err = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("scrape of {addr} never satisfied the predicate (last error: {last_err})");
}

fn kill(mut child: Child) -> ! {
    child.kill().ok();
    child.wait().ok();
    panic!("mesh run ended while scrapes were outstanding");
}

#[test]
fn every_endpoint_serves_prometheus_text_while_training() {
    // Port slot 3: clear of tcp_loopback (0, 1) and trace_roundtrip (2).
    let base_port = 27000 + (std::process::id() % 2800) as u16;
    let metrics_port = 31000 + (std::process::id() % 2800) as u16;
    // Enough iterations to hold the mesh open (the delayed worker adds
    // 15 ms per iteration) while every endpoint gets scraped.
    let mut child = Command::new(env!("CARGO_BIN_EXE_poseidon-node"))
        .args([
            "--workers",
            &WORKERS.to_string(),
            "--iters",
            "400",
            "--batch",
            "8",
            "--policy",
            "hybrid",
            "--base-port",
            &base_port.to_string(),
            "--metrics-addr",
            &format!("127.0.0.1:{metrics_port}"),
            "--straggler",
            "1:15",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn poseidon-node launcher");

    // Families every process must expose, and the per-role ones.
    let worker_families = [
        "poseidon_step_time_ns_bucket",
        "poseidon_sync_wait_ns",
        "poseidon_busy_time_ns",
        "poseidon_apply_ns",
    ];
    let shard_families = ["poseidon_serve_ns"];
    let transport_families = ["poseidon_tx_frames_total", "poseidon_tx_bytes_total"];

    let deadline = Instant::now() + Duration::from_secs(60);
    for me in 0..ENDPOINTS {
        let addr = format!("127.0.0.1:{}", metrics_port + me as u16);
        // Wait until the endpoint has trained far enough that its role
        // families are populated, then assert the full set in one body.
        let probe = if me < WORKERS {
            "poseidon_step_time_ns_count"
        } else {
            "poseidon_serve_ns_count"
        };
        let body = scrape_until(&addr, deadline, |b| b.contains(probe));
        if child.try_wait().expect("child status").is_some() {
            kill(child); // diagnoses "run finished before we scraped"
        }
        let required: &[&str] = if me < WORKERS {
            &worker_families
        } else {
            &shard_families
        };
        for family in required.iter().chain(&transport_families) {
            assert!(
                body.contains(family),
                "endpoint {me}: family {family} missing from scrape:\n{body}"
            );
        }
        assert!(
            body.contains("# TYPE poseidon_step_time_ns histogram")
                || body.contains("# TYPE poseidon_serve_ns histogram"),
            "endpoint {me}: exposition lacks TYPE headers:\n{body}"
        );
    }

    // A second scrape of a worker observes progress: the step count grew.
    let w0 = format!("127.0.0.1:{metrics_port}");
    let count_of = |body: &str| -> u64 {
        body.lines()
            .find(|l| l.starts_with("poseidon_step_time_ns_count"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let first = count_of(&scrape_until(&w0, deadline, |b| count_of(b) > 0));
    scrape_until(&w0, deadline, |b| count_of(b) > first);

    let out = child.wait_with_output().expect("wait for mesh");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "launcher failed ({}):\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status
    );
    // The run stayed correct under concurrent scraping...
    assert!(
        stdout.contains("replicas=bitwise-identical"),
        "replica check missing:\n{stdout}"
    );
    // ...and the health plane named the delayed worker.
    let verdict = stdout
        .lines()
        .find(|l| l.starts_with("health=straggler"))
        .unwrap_or_else(|| panic!("no straggler verdict:\n{stdout}"));
    assert!(
        verdict.contains('1'),
        "verdict does not name worker 1: {verdict}\n{stdout}"
    );
    assert!(
        stdout.contains("health worker=1") && stdout.contains("STRAGGLER"),
        "per-worker verdict lines missing:\n{stdout}"
    );
}
