//! Chaos over real sockets: a multi-process `poseidon-node` run whose fault
//! plan drops a frame and then severs the live TCP connection under a later
//! one, mid-training. The run must self-heal — redial the peer, rewrite the
//! frame, retransmit the dropped one — and still finish **bitwise identical**
//! to the fault-free in-process run, with the recovery visible in the merged
//! telemetry trace (`reconnect` and `retransmit` instants).
//!
//! Uses port slot 3 (27000+) so it can run alongside `tcp_loopback.rs`
//! (slots 0–1) and `trace_roundtrip.rs` (slot 2).

use poseidon::config::{Partition, SchemePolicy};
use poseidon::runtime::{flatten_model_params, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use std::process::Command;
use std::time::Duration;

// Mirrors the binary's defaults (see `run_inproc`): any drift and the
// bitwise comparison fails loudly.
const WORKERS: usize = 2;
const ITERS: usize = 4;
const BATCH: usize = 8;
const LR: f32 = 0.2;
const PAIR: usize = 37;
const SEED: u64 = 5;
const LAYERS: [usize; 4] = [12, 16, 8, 4];
const SAMPLES: usize = 96;

/// Worker 0 → shard 3 is a real cross-process socket under `--policy ps`:
/// drop its 2nd frame (forcing a nack + retransmit), then sever the
/// connection under its 4th (forcing a redial + frame rewrite).
const PLAN: &str = "drop:0>3@n2;sever:0>3@n4";

#[test]
fn severed_socket_reconnects_and_stays_bitwise() {
    let dir = std::env::temp_dir().join(format!("poseidon_sever_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("trace dir");
    let base = dir.join("trace.json");
    let base_str = base.to_str().expect("utf-8 temp path");
    let base_port = 27000 + (std::process::id() % 2800) as u16;

    let out = Command::new(env!("CARGO_BIN_EXE_poseidon-node"))
        .args([
            "--workers",
            &WORKERS.to_string(),
            "--iters",
            &ITERS.to_string(),
            "--batch",
            &BATCH.to_string(),
            "--lr",
            &LR.to_string(),
            "--policy",
            "ps",
            "--pair-elems",
            &PAIR.to_string(),
            "--seed",
            &SEED.to_string(),
            "--base-port",
            &base_port.to_string(),
            "--fault-plan",
            PLAN,
            "--trace-out",
            base_str,
        ])
        .output()
        .expect("spawn poseidon-node launcher");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "chaos launcher failed ({}):\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status
    );

    // The launcher itself verified the workers agree; scrape the evidence.
    assert!(
        stdout.contains("replicas=bitwise-identical"),
        "replica check missing:\n{stdout}"
    );
    let scrape = |key: &str| -> u64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
            .unwrap_or_else(|| panic!("no {key}= line:\n{stdout}"))
            .parse()
            .expect(key)
    };
    assert_eq!(
        scrape("faults_fired_total"),
        2,
        "both the drop and the sever must fire:\n{stdout}"
    );
    assert!(
        scrape("recovery_actions_total") >= 1,
        "the dropped frame must be retransmitted:\n{stdout}"
    );

    // And the healed run equals the fault-free single-process run, bit for
    // bit, on every worker replica.
    let want = hex(&flatten_model_params(&run_inproc_clean().net));
    let replicas: Vec<&str> = stdout
        .lines()
        .filter_map(|l| {
            let body = l.split_once(". ").map_or(l, |(_, rest)| rest);
            body.strip_prefix("params=")
        })
        .collect();
    assert_eq!(replicas.len(), WORKERS, "one params line per worker");
    for (w, got) in replicas.iter().enumerate() {
        assert_eq!(
            *got, want,
            "worker {w}: a severed+healed TCP run must match the clean run"
        );
    }

    // The recovery left its fingerprints in the merged trace: the scripted
    // faults, the socket redial, and the reliability-layer retransmit.
    let merged = std::fs::read_to_string(&base).expect("merged trace file");
    for mark in ["fault.drop", "fault.sever", "reconnect", "retransmit"] {
        assert!(
            merged.contains(mark),
            "merged trace missing a {mark:?} instant"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The identical configuration, fault-free, in one process over channels —
/// the ground truth the chaos run must reproduce exactly.
fn run_inproc_clean() -> poseidon::runtime::TrainResult<poseidon_nn::Network> {
    let data = Dataset::gaussian_clusters(
        TensorShape::flat(LAYERS[0]),
        *LAYERS.last().unwrap(),
        SAMPLES,
        0.3,
        SEED + 1,
    );
    let cfg = RuntimeConfig {
        policy: SchemePolicy::AlwaysPs,
        partition: Partition::KvPairs { pair_elems: PAIR },
        comm_timeout: Duration::from_secs(60),
        ..RuntimeConfig::new(WORKERS, BATCH, LR, ITERS)
    };
    train(&|| presets::mlp(&LAYERS, SEED), &data, None, &cfg)
}

fn hex(vals: &[f32]) -> String {
    let mut s = String::with_capacity(vals.len() * 8);
    for v in vals {
        for b in v.to_le_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
    }
    s
}
