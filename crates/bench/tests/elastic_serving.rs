//! The elastic front door end to end: a real multi-process TCP mesh executes
//! a membership plan (a shard leaves, rejoins, then a worker restarts across
//! a generation boundary) while this test queries `--serve-addr` over raw
//! sockets mid-training. The serving plane must answer inference requests
//! from snapshots of *both* the full- and reduced-membership epochs while the
//! reconfiguration is in flight, snapshots must advance, and the run itself
//! must finish with every replica bitwise identical — serving and elasticity
//! change nothing about the training math.

use poseidon::serving::{query, SERVE_OK};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const WORKERS: usize = 2;
/// Default model of the node binary: input width 12, output width 4.
const D: usize = 12;
const K: usize = 4;

#[test]
fn serving_stays_live_through_reconfiguration() {
    // Own port ranges, clear of tcp_loopback/trace_roundtrip (21xxx..25xxx),
    // and metrics_scrape (27xxx, 31xxx).
    let base_port = 35000 + (std::process::id() % 2800) as u16;
    let serve_port = 38000 + (std::process::id() % 2800) as u16;
    // 10 ms per iteration on worker 0 stretches the epochs so the query
    // loop observably samples them; the restart at 160 splits the run into
    // two generations (kill + checkpoint-restore over real processes).
    let mut child = Command::new(env!("CARGO_BIN_EXE_poseidon-node"))
        .args([
            "--workers",
            &WORKERS.to_string(),
            "--iters",
            "200",
            "--batch",
            "8",
            "--policy",
            "ps",
            "--base-port",
            &base_port.to_string(),
            "--membership-plan",
            "leave:1@60;join:1@120;restart:0@160",
            "--serve-addr",
            &format!("127.0.0.1:{serve_port}"),
            "--straggler",
            "0:10",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn poseidon-node launcher");

    // Query worker 0's front door until replies from both the full (0) and
    // reduced (1) membership epochs have been observed. Connection errors
    // are expected while processes come up and across the restart boundary;
    // every lap is throttled so the sampling loop cannot starve the mesh of
    // CPU on a loaded machine (the plan stretches over ~2 s, so ~5 ms
    // sampling still sees hundreds of replies).
    let addr = format!("127.0.0.1:{serve_port}");
    let inputs: Vec<f32> = (0..2 * D).map(|j| (j % 7) as f32 * 0.3 - 1.0).collect();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut oks = 0u64;
    let mut min_iter = u64::MAX;
    let mut max_iter = 0u64;
    let mut epochs_seen = [false; 3];
    while !(epochs_seen[0] && epochs_seen[1]) {
        assert!(
            Instant::now() < deadline,
            "never saw epochs 0 and 1 (oks={oks}, epochs={epochs_seen:?})"
        );
        if child.try_wait().expect("child status").is_some() {
            break; // run over; the launcher asserts below diagnose why
        }
        std::thread::sleep(Duration::from_millis(5));
        let Ok(reply) = query(&addr, 2, D, &inputs) else {
            continue;
        };
        if reply.status != SERVE_OK {
            continue; // no snapshot yet
        }
        assert_eq!(reply.k, K, "output width");
        assert_eq!(reply.outputs.len(), 2 * K, "torn reply");
        assert!(
            reply.outputs.iter().all(|v| v.is_finite()),
            "non-finite inference output"
        );
        assert!(
            (reply.epoch as usize) < epochs_seen.len(),
            "epoch beyond plan"
        );
        epochs_seen[reply.epoch as usize] = true;
        oks += 1;
        min_iter = min_iter.min(reply.iter);
        max_iter = max_iter.max(reply.iter);
    }

    let out = child.wait_with_output().expect("wait for mesh");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "launcher failed ({}):\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status
    );
    // The front door actually answered, from both membership epochs, with
    // snapshots that advanced.
    assert!(oks > 0, "no inference request was ever answered");
    assert!(
        max_iter > min_iter,
        "snapshots never advanced (stuck at iter {max_iter})"
    );
    assert!(
        epochs_seen[0] && epochs_seen[1],
        "both membership epochs must answer queries mid-flight: {epochs_seen:?}"
    );
    // Serving and the reconfiguration were invisible to the math...
    assert!(
        stdout.contains("replicas=bitwise-identical"),
        "replica check missing:\n{stdout}"
    );
    // ...the plan actually ran (3 epochs, restart split into 2 generations)...
    assert!(
        stdout.contains("membership_epochs=3 generations=2"),
        "membership summary missing:\n{stdout}"
    );
    // ...and the loss kept descending across the whole elastic run.
    let final_loss: f32 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("final_loss="))
        .expect("final_loss line")
        .parse()
        .expect("final_loss parses");
    assert!(
        final_loss.is_finite() && final_loss < 1.0,
        "training did not converge: final_loss={final_loss}\n{stdout}"
    );
}
