//! Shared harness code for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` that regenerates it (`table1`, `table3`, `fig5` … `fig11`,
//! `overhead`); this library holds the formatting and sweep plumbing they
//! share. Expected output (paper-reported numbers vs. what this reproduction
//! measures) is catalogued in the repository's `EXPERIMENTS.md`.

use poseidon::sim::{simulate, simulate_with_trace, SimConfig, System};
use poseidon::stats;
use poseidon::telemetry::{chrome, report};
use poseidon_nn::zoo::ModelSpec;

/// The node counts of the paper's main scaling figures.
pub const FIG5_NODES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// The node counts of the bandwidth-limited figure.
pub const FIG8_NODES: [usize; 5] = [1, 2, 4, 8, 16];

/// Prints a figure/table header.
pub fn banner(id: &str, caption: &str) {
    println!("==== {id} — {caption} ====");
}

/// Runs a node sweep of `systems` on `model` at `bandwidth_gbps` and prints a
/// speedup table (one column per system), mirroring one panel of a scaling
/// figure.
pub fn print_speedup_panel(
    model: &ModelSpec,
    systems: &[System],
    nodes: &[usize],
    bandwidth_gbps: f64,
) {
    println!(
        "{} ({:.0} GbE), speedup vs single-node native:",
        model.name, bandwidth_gbps
    );
    let mut header = vec!["nodes".to_string(), "linear".to_string()];
    header.extend(systems.iter().map(|s| s.label().to_string()));
    let rows: Vec<Vec<String>> = nodes
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string(), format!("{n}.0")];
            for &sys in systems {
                let r = simulate(model, &SimConfig::system(sys, n, bandwidth_gbps));
                row.push(format!("{:.1}", r.speedup));
            }
            row
        })
        .collect();
    println!("{}", stats::render_table(&header, &rows));
}

/// Parses an optional `--trace-out PATH` flag from the binary's argv (the
/// figure binaries accept it to dump one simulated iteration as a Chrome
/// trace alongside their tables).
pub fn trace_out_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next();
        }
    }
    None
}

/// Runs one traced simulation of `model` under `cfg`, prints the standard
/// telemetry summary, and writes validated Chrome-trace JSON to `path`.
pub fn write_sim_trace(model: &ModelSpec, cfg: &SimConfig, path: &str) {
    let (_, trace) = simulate_with_trace(model, cfg);
    print!(
        "{}",
        report::summarize(std::slice::from_ref(&trace)).render()
    );
    let json = chrome::to_chrome_json(&[trace]);
    let stats = chrome::validate(&json).expect("simulated trace must validate");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "trace=valid events={} spans={} tracks={} file={path}",
        stats.events, stats.spans, stats.tracks
    );
}

/// One full speedup series for a system (used by the assertions in the
/// figure binaries and the integration tests).
pub fn speedups(model: &ModelSpec, system: System, nodes: &[usize], bw: f64) -> Vec<(usize, f64)> {
    nodes
        .iter()
        .map(|&n| {
            (
                n,
                simulate(model, &SimConfig::system(system, n, bw)).speedup,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_nn::zoo;

    #[test]
    fn speedups_produces_one_point_per_node_count() {
        let s = speedups(&zoo::googlenet(), System::Poseidon, &[1, 2, 4], 40.0);
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 1.0).abs() < 0.05);
        assert!(s[2].1 > s[1].1);
    }
}
