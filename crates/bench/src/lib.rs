//! Shared harness code for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` that regenerates it (`table1`, `table3`, `fig5` … `fig11`,
//! `overhead`); this library holds the formatting and sweep plumbing they
//! share. Expected output (paper-reported numbers vs. what this reproduction
//! measures) is catalogued in the repository's `EXPERIMENTS.md`.

use poseidon::sim::{simulate, SimConfig, System};
use poseidon::stats;
use poseidon_nn::zoo::ModelSpec;

/// The node counts of the paper's main scaling figures.
pub const FIG5_NODES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// The node counts of the bandwidth-limited figure.
pub const FIG8_NODES: [usize; 5] = [1, 2, 4, 8, 16];

/// Prints a figure/table header.
pub fn banner(id: &str, caption: &str) {
    println!("==== {id} — {caption} ====");
}

/// Runs a node sweep of `systems` on `model` at `bandwidth_gbps` and prints a
/// speedup table (one column per system), mirroring one panel of a scaling
/// figure.
pub fn print_speedup_panel(
    model: &ModelSpec,
    systems: &[System],
    nodes: &[usize],
    bandwidth_gbps: f64,
) {
    println!(
        "{} ({:.0} GbE), speedup vs single-node native:",
        model.name, bandwidth_gbps
    );
    let mut header = vec!["nodes".to_string(), "linear".to_string()];
    header.extend(systems.iter().map(|s| s.label().to_string()));
    let rows: Vec<Vec<String>> = nodes
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string(), format!("{n}.0")];
            for &sys in systems {
                let r = simulate(model, &SimConfig::system(sys, n, bandwidth_gbps));
                row.push(format!("{:.1}", r.speedup));
            }
            row
        })
        .collect();
    println!("{}", stats::render_table(&header, &rows));
}

/// One full speedup series for a system (used by the assertions in the
/// figure binaries and the integration tests).
pub fn speedups(model: &ModelSpec, system: System, nodes: &[usize], bw: f64) -> Vec<(usize, f64)> {
    nodes
        .iter()
        .map(|&n| {
            (
                n,
                simulate(model, &SimConfig::system(system, n, bw)).speedup,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_nn::zoo;

    #[test]
    fn speedups_produces_one_point_per_node_count() {
        let s = speedups(&zoo::googlenet(), System::Poseidon, &[1, 2, 4], 40.0);
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 1.0).abs() < 0.05);
        assert!(s[2].1 > s[1].1);
    }
}
