//! Figure 9: ResNet-152 — (a) throughput speedup vs nodes (timing simulation)
//! and (b) top-1 test error vs epoch for 8/16/32-node effective batch sizes
//! (real training of a proxy network on the synthetic task).
//!
//! The paper's point in (b) is *statistical*: synchronous data-parallel
//! training at larger effective batch sizes converges per-epoch like the
//! smaller configurations, so near-linear throughput translates into
//! near-linear time-to-accuracy. We reproduce that with a CPU-sized proxy
//! CNN trained by the real threaded runtime at three worker counts
//! (substitution documented in DESIGN.md).
//!
//! Run: `cargo run --release -p poseidon-bench --bin fig9`

use poseidon::runtime::{train, RuntimeConfig};
use poseidon::sim::System;
use poseidon::stats::render_table;
use poseidon_bench::{banner, print_speedup_panel, FIG5_NODES};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::zoo;

fn main() {
    banner(
        "Figure 9a",
        "ResNet-152 throughput speedup (TF engine, 40GbE)",
    );
    print_speedup_panel(
        &zoo::resnet152(),
        &[System::TensorFlow, System::Poseidon],
        &FIG5_NODES,
        40.0,
    );
    println!("Paper shape: Poseidon ~31x at 32 nodes; open-source TF trails.\n");

    banner(
        "Figure 9b",
        "top-1 test error vs epoch at 8/16/32-node effective batch (proxy CNN)",
    );
    // Proxy substitution: a scaled cifar10_quick CNN on the synthetic
    // smooth-cluster task stands in for ResNet-152 on ILSVRC12.
    let all = Dataset::smooth_clusters(TensorShape::new(3, 16, 16), 10, 1280, 2.5, 31);
    let (train_set, test_set) = all.split_at(1024);
    let per_worker_batch = 8usize;
    let epochs = 8usize;

    let mut columns: Vec<(usize, Vec<(usize, f32)>)> = Vec::new();
    for workers in [2usize, 4, 8] {
        // One epoch = dataset / global batch iterations; evaluate per epoch.
        let iters_per_epoch = train_set.len() / (per_worker_batch * workers);
        let cfg = RuntimeConfig {
            eval_every: iters_per_epoch,
            ..RuntimeConfig::new(workers, per_worker_batch, 0.08, iters_per_epoch * epochs)
        };
        let result = train(
            &|| presets::cifar_quick_scaled(TensorShape::new(3, 16, 16), 8, 10, 77),
            &train_set,
            Some(&test_set),
            &cfg,
        );
        let per_epoch: Vec<(usize, f32)> = result
            .test_errors
            .iter()
            .enumerate()
            .map(|(e, &(_, err))| (e + 1, err))
            .collect();
        columns.push((workers, per_epoch));
    }

    let header: Vec<String> = std::iter::once("epoch".to_string())
        .chain(
            columns
                .iter()
                .map(|(w, _)| format!("{w} workers (batch {})", w * per_worker_batch)),
        )
        .collect();
    let rows: Vec<Vec<String>> = (0..epochs)
        .map(|e| {
            let mut row = vec![(e + 1).to_string()];
            for (_, col) in &columns {
                row.push(
                    col.get(e)
                        .map(|&(_, err)| format!("{:.3}", err))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    println!("Paper shape: the error-vs-epoch curves for 8/16/32 nodes lie on top of");
    println!("each other (synchronous training converges per-epoch independent of the");
    println!("cluster size), so throughput speedup = time-to-accuracy speedup.");
}
