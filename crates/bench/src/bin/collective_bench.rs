//! Races the synchronization schemes over the evented TCP transport.
//!
//! For each scheme in `--schemes` and tensor size in `--elems`, a mesh of
//! real localhost sockets performs `--iters` full BSP allreduce steps of one
//! `elems`-value f32 tensor, segmented into KV-pair-sized chunks
//! (`--seg-elems`), using the same frame types and fold discipline as the
//! runtime:
//!
//! - `ps`: `2P` endpoints (P workers + P colocated shards). Workers push
//!   every segment to its owner shard (`GradChunk`), the shard folds all `P`
//!   contributions and broadcasts the result back (`ParamChunk`).
//! - `ring`: `P` endpoints. Worker 0 seeds each segment down the id-ordered
//!   chain (`Collective`/REDUCE); every hop fuse-adds its own contribution
//!   in place ([`poseidon::wire::add_f32s_pooled`]); the last worker
//!   originates the DISTRIBUTE lap.
//! - `tree`: `P` endpoints. Non-roots send origin-tagged segments towards
//!   worker 0 through the binary tree; the root folds and broadcasts down.
//!
//! Reported per scenario: steps/s (best-of-`--repeat`, BSP-barriered) and
//! measured wire bytes per step from the transport's own traffic counters.
//! Results land in `--out` (default `BENCH_collectives.json`).
//! `--check-against FILE` reads a committed baseline first and fails if any
//! collective-vs-ps steps/s ratio lost more than 20% — machine-wide speed
//! drift cancels in the ratio because the schemes run back-to-back.
//!
//! ```text
//! cargo run --release -p poseidon-bench --bin collective_bench -- \
//!     --workers 4 --elems 16384,1048576,8388608
//! ```

use poseidon::transport::{
    bind_ephemeral, Envelope, Message, TcpFabricSpec, TcpTransport, Transport,
};
use poseidon::wire::{self, COLLECTIVE_DISTRIBUTE, COLLECTIVE_REDUCE};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "collective_bench: allreduce step time per scheme over evented TCP
  --workers N         worker count P                          [4]
  --elems A,B,..      tensor sizes (f32 values) to sweep      [16384,1048576,8388608]
  --seg-elems N       segment size in f32 values              [524288]
  --iters N           measured BSP steps per scenario         [4]
  --repeat N          runs per scenario; best-of-N kept       [3]
  --schemes LIST      ps,ring,tree (any subset)               [ps,ring,tree]
  --out PATH          write results JSON here                 [BENCH_collectives.json]
  --check-against P   fail on >20% collective/ps ratio drop   [off]";

#[derive(Clone)]
struct Args {
    workers: usize,
    elems: Vec<usize>,
    seg_elems: usize,
    iters: usize,
    repeat: usize,
    schemes: Vec<String>,
    out: String,
    check_against: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            workers: 4,
            elems: vec![16_384, 1_048_576, 8_388_608],
            seg_elems: 524_288,
            iters: 4,
            repeat: 3,
            schemes: vec!["ps".into(), "ring".into(), "tree".into()],
            out: "BENCH_collectives.json".into(),
            check_against: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let val = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag.as_str() {
            "--workers" => args.workers = val.parse().map_err(|e| bad(&e))?,
            "--elems" => {
                args.elems = val
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| bad(&e)))
                    .collect::<Result<_, _>>()?;
            }
            "--seg-elems" => args.seg_elems = val.parse().map_err(|e| bad(&e))?,
            "--iters" => args.iters = val.parse().map_err(|e| bad(&e))?,
            "--repeat" => args.repeat = val.parse().map_err(|e| bad(&e))?,
            "--schemes" => {
                args.schemes = val.split(',').map(|s| s.trim().to_string()).collect();
                for s in &args.schemes {
                    if s != "ps" && s != "ring" && s != "tree" {
                        return Err(format!("unknown scheme {s:?}\n{USAGE}"));
                    }
                }
            }
            "--out" => args.out = val,
            "--check-against" => args.check_against = Some(val),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.workers < 2 {
        return Err("--workers must be >= 2 (a collective needs a peer)".into());
    }
    if args.seg_elems == 0 || args.iters == 0 || args.repeat == 0 {
        return Err("--seg-elems, --iters and --repeat must be positive".into());
    }
    Ok(args)
}

struct Record {
    scheme: String,
    workers: usize,
    elems: usize,
    steps_per_s: f64,
    bytes_per_step: u64,
}

/// The deterministic per-worker contribution for one segment.
fn contribution(w: usize, seg: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|j| ((w * 31 + seg * 7 + j) % 13) as f32 * 0.25 - 1.0)
        .collect()
}

/// Segment boundaries tiling `elems` values into `seg_elems`-sized pieces.
fn segments(elems: usize, seg_elems: usize) -> Vec<(usize, usize)> {
    let mut segs = Vec::new();
    let mut off = 0;
    while off < elems {
        let len = seg_elems.min(elems - off);
        segs.push((off, len));
        off += len;
    }
    if segs.is_empty() {
        segs.push((0, 0));
    }
    segs
}

fn connect_mesh(n: usize, nodes: Vec<usize>) -> (TcpFabricSpec, Vec<std::net::TcpListener>) {
    let (listeners, addrs) = bind_ephemeral(n).expect("bind mesh");
    let spec = TcpFabricSpec {
        addrs,
        node_of_endpoint: nodes,
        connect_timeout: Duration::from_secs(60),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(100),
        reconnect_timeout: Duration::from_secs(10),
    };
    (spec, listeners)
}

const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// One scenario: `1 + iters` barriered allreduce steps (the first warms the
/// sockets and buffer pools and is not measured). Returns (steps/s, measured
/// wire bytes per step).
fn run_scheme(scheme: &str, p: usize, elems: usize, seg_elems: usize, iters: usize) -> (f64, u64) {
    let endpoints = if scheme == "ps" { 2 * p } else { p };
    let nodes: Vec<usize> = (0..endpoints).map(|e| e % p).collect();
    let (spec, listeners) = connect_mesh(endpoints, nodes);
    let segs = segments(elems, seg_elems);

    let barrier = Barrier::new(endpoints);
    // (per-step wall seconds after warmup, per-endpoint tx+rx bytes) rows.
    let measured = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (me, listener) in listeners.into_iter().enumerate() {
            let (spec, barrier, measured, segs) = (&spec, &barrier, &measured, &segs);
            s.spawn(move || {
                let mut ep = TcpTransport::connect_with_listener(spec, me, listener, None)
                    .expect("mesh connect");
                let traffic = std::sync::Arc::clone(ep.traffic());
                let mut warm_bytes = 0u64;
                let mut start = Instant::now();
                for it in 0..=iters as u64 {
                    match scheme {
                        "ps" => ps_step(&mut ep, me, p, it, segs),
                        "ring" => ring_step(&mut ep, me, p, it, segs),
                        _ => tree_step(&mut ep, me, p, it, segs),
                    }
                    barrier.wait();
                    if it == 0 {
                        // Warmup done: measurement starts here.
                        let snap = traffic.snapshot();
                        warm_bytes = snap.tx.iter().sum::<u64>() + snap.rx.iter().sum::<u64>();
                        start = Instant::now();
                    }
                }
                let elapsed = start.elapsed();
                let snap = traffic.snapshot();
                let bytes = snap.tx.iter().sum::<u64>() + snap.rx.iter().sum::<u64>() - warm_bytes;
                ep.shutdown().expect("shutdown");
                measured.lock().unwrap().push((elapsed, bytes));
            });
        }
    });

    let rows = measured.into_inner().unwrap();
    let slowest = rows.iter().map(|(e, _)| *e).max().expect("endpoints ran");
    // Every byte is counted twice across endpoints (tx at the sender, rx at
    // the receiver); halve for wire bytes.
    let total_bytes: u64 = rows.iter().map(|(_, b)| *b).sum::<u64>() / 2;
    let secs = slowest.as_secs_f64().max(1e-9);
    (iters as f64 / secs, total_bytes / iters as u64)
}

fn expect_env(ep: &mut TcpTransport) -> Envelope {
    ep.recv_timeout(RECV_TIMEOUT).expect("recv starved")
}

/// PS worker/shard step. Workers are endpoints `0..p`, shards `p..2p`;
/// segment `g` is owned by shard `p + g % p` (round-robin KV pairs).
fn ps_step(ep: &mut TcpTransport, me: usize, p: usize, iter: u64, segs: &[(usize, usize)]) {
    if me < p {
        for (g, &(_, len)) in segs.iter().enumerate() {
            let data = wire::encode_f32s_pooled(&contribution(me, g, len));
            let owner = p + g % p;
            ep.send(
                owner,
                Message::GradChunk {
                    iter,
                    layer: 0,
                    chunk: g as u32,
                    codec: wire::Codec::Identity,
                    data,
                },
            )
            .expect("push");
        }
        let mut got = 0;
        while got < segs.len() {
            let env = expect_env(ep);
            match env.msg {
                Message::ParamChunk { .. } => got += 1,
                other => panic!("worker {me} got {other:?}"),
            }
        }
    } else {
        let shard = me - p;
        let owned: Vec<usize> = (0..segs.len()).filter(|g| g % p == shard).collect();
        let mut acc: BTreeMap<usize, (Vec<f32>, usize)> = BTreeMap::new();
        let mut folded = 0;
        while folded < owned.len() {
            let env = expect_env(ep);
            let Message::GradChunk { chunk, data, .. } = env.msg else {
                panic!("shard {shard} got a non-push frame");
            };
            let g = chunk as usize;
            let vals = wire::decode_f32s(&data).expect("decode push");
            let entry = acc.entry(g).or_insert_with(|| (vec![0.0; vals.len()], 0));
            for (a, v) in entry.0.iter_mut().zip(&vals) {
                *a += v;
            }
            entry.1 += 1;
            if entry.1 == p {
                let (sum, _) = acc.remove(&g).expect("just inserted");
                let data = wire::encode_f32s_pooled(&sum);
                for w in 0..p {
                    ep.send(
                        w,
                        Message::ParamChunk {
                            iter,
                            layer: 0,
                            chunk: g as u32,
                            codec: wire::Codec::Identity,
                            data: data.clone(),
                        },
                    )
                    .expect("broadcast");
                }
                folded += 1;
            }
        }
    }
}

/// Ring step: the runtime's chained REDUCE / DISTRIBUTE over `p` endpoints.
fn ring_step(ep: &mut TcpTransport, me: usize, p: usize, iter: u64, segs: &[(usize, usize)]) {
    let own: Vec<Vec<f32>> = segs
        .iter()
        .enumerate()
        .map(|(g, &(_, len))| contribution(me, g, len))
        .collect();
    if me == 0 {
        for (g, seg) in own.iter().enumerate() {
            ep.send(
                1,
                Message::Collective {
                    iter,
                    layer: 0,
                    route: wire::pack_collective(COLLECTIVE_REDUCE, 0, g),
                    codec: wire::Codec::Identity,
                    data: wire::encode_f32s_pooled(seg),
                },
            )
            .expect("seed chain");
        }
    }
    let mut done = 0;
    while done < segs.len() {
        let env = expect_env(ep);
        let Message::Collective { route, data, .. } = env.msg else {
            panic!("worker {me} got a non-collective frame");
        };
        let (phase, _origin, g) = wire::unpack_collective(route);
        if phase == COLLECTIVE_REDUCE {
            let summed = wire::add_f32s_pooled(&data, &own[g]).expect("fused add");
            if me == p - 1 {
                done += 1; // final value held here
                ep.send(
                    0,
                    Message::Collective {
                        iter,
                        layer: 0,
                        route: wire::pack_collective(COLLECTIVE_DISTRIBUTE, 0, g),
                        codec: wire::Codec::Identity,
                        data: summed,
                    },
                )
                .expect("originate distribute");
            } else {
                ep.send(
                    me + 1,
                    Message::Collective {
                        iter,
                        layer: 0,
                        route,
                        codec: wire::Codec::Identity,
                        data: summed,
                    },
                )
                .expect("forward reduce");
            }
        } else {
            done += 1;
            let next = me + 1;
            if next != p - 1 {
                ep.send(
                    next,
                    Message::Collective {
                        iter,
                        layer: 0,
                        route,
                        codec: wire::Codec::Identity,
                        data,
                    },
                )
                .expect("forward distribute");
            }
        }
    }
}

/// Tree step: origin-tagged gather to worker 0, fold, broadcast down.
fn tree_step(ep: &mut TcpTransport, me: usize, p: usize, iter: u64, segs: &[(usize, usize)]) {
    let children: Vec<usize> = [2 * me + 1, 2 * me + 2]
        .into_iter()
        .filter(|&c| c < p)
        .collect();
    if me != 0 {
        let parent = (me - 1) / 2;
        for (g, &(_, len)) in segs.iter().enumerate() {
            ep.send(
                parent,
                Message::Collective {
                    iter,
                    layer: 0,
                    route: wire::pack_collective(COLLECTIVE_REDUCE, me, g),
                    codec: wire::Codec::Identity,
                    data: wire::encode_f32s_pooled(&contribution(me, g, len)),
                },
            )
            .expect("gather");
        }
        let mut done = 0;
        while done < segs.len() {
            let env = expect_env(ep);
            let Message::Collective { route, data, .. } = env.msg else {
                panic!("worker {me} got a non-collective frame");
            };
            let (phase, _origin, _g) = wire::unpack_collective(route);
            if phase == COLLECTIVE_REDUCE {
                // Interior relay towards the root, payload untouched.
                let parent = (me - 1) / 2;
                ep.send(
                    parent,
                    Message::Collective {
                        iter,
                        layer: 0,
                        route,
                        codec: wire::Codec::Identity,
                        data,
                    },
                )
                .expect("relay");
            } else {
                done += 1;
                for &c in &children {
                    ep.send(
                        c,
                        Message::Collective {
                            iter,
                            layer: 0,
                            route,
                            codec: wire::Codec::Identity,
                            data: data.clone(),
                        },
                    )
                    .expect("cast");
                }
            }
        }
    } else {
        let mut acc: BTreeMap<usize, (Vec<f32>, usize)> = BTreeMap::new();
        for (g, &(_, len)) in segs.iter().enumerate() {
            acc.insert(g, (contribution(0, g, len), 0));
        }
        let mut folded = 0;
        while folded < segs.len() {
            let env = expect_env(ep);
            let Message::Collective { route, data, .. } = env.msg else {
                panic!("root got a non-collective frame");
            };
            let (phase, _origin, g) = wire::unpack_collective(route);
            assert_eq!(phase, COLLECTIVE_REDUCE, "root only gathers");
            let entry = acc.get_mut(&g).expect("segment in range");
            let vals = wire::decode_f32s(&data).expect("decode gather");
            for (a, v) in entry.0.iter_mut().zip(&vals) {
                *a += v;
            }
            entry.1 += 1;
            if entry.1 == p - 1 {
                let (sum, _) = acc.remove(&g).expect("just updated");
                let data = wire::encode_f32s_pooled(&sum);
                for &c in &children {
                    ep.send(
                        c,
                        Message::Collective {
                            iter,
                            layer: 0,
                            route: wire::pack_collective(COLLECTIVE_DISTRIBUTE, 0, g),
                            codec: wire::Codec::Identity,
                            data: data.clone(),
                        },
                    )
                    .expect("cast");
                }
                folded += 1;
            }
        }
    }
}

fn render(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"bench\": \"collective_allreduce\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"workers\": {}, \"elems\": {}, \
             \"steps_per_s\": {:.2}, \"bytes_per_step\": {}}}{sep}\n",
            r.scheme, r.workers, r.elems, r.steps_per_s, r.bytes_per_step,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"key": value` out of one scenario line (same tiny parser as
/// `transport_bench` — the baseline format has no other consumer).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// `(scheme, workers, elems) -> steps_per_s` from a results file.
fn parse_baseline(text: &str) -> BTreeMap<(String, usize, usize), f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let (Some(s), Some(w), Some(e), Some(r)) = (
            field(line, "scheme"),
            field(line, "workers"),
            field(line, "elems"),
            field(line, "steps_per_s"),
        ) else {
            continue;
        };
        if let (Ok(w), Ok(e), Ok(r)) = (w.parse(), e.parse(), r.parse()) {
            map.insert((s.to_string(), w, e), r);
        }
    }
    map
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = args.check_against.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        parse_baseline(&text)
    });

    let mut records = Vec::new();
    for &elems in &args.elems {
        // Small tensors finish a step in microseconds; stretch the measured
        // window so scheduler jitter doesn't swamp the steps/s ratio.
        let iters = args.iters.max(((1 << 21) / elems.max(1)).min(256));
        // Schemes innermost: each ps/ring/tree triple runs back-to-back so
        // ratios see like machine conditions.
        for scheme in &args.schemes {
            let mut best: Option<(f64, u64)> = None;
            for _ in 0..args.repeat {
                let r = run_scheme(scheme, args.workers, elems, args.seg_elems, iters);
                if best.as_ref().is_none_or(|b| r.0 > b.0) {
                    best = Some(r);
                }
            }
            let (steps_per_s, bytes_per_step) = best.expect("repeat >= 1");
            println!(
                "{:>5} P={:<2} elems={:<9} {:>8.2} steps/s {:>12} B/step",
                scheme, args.workers, elems, steps_per_s, bytes_per_step
            );
            records.push(Record {
                scheme: scheme.clone(),
                workers: args.workers,
                elems,
                steps_per_s,
                bytes_per_step,
            });
        }
    }

    let json = render(&records);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("results written to {}", args.out);

    if let Some(baseline) = baseline {
        // Absolute steps/s drifts machine-wide between invocations; the
        // collective/ps ratio cancels it. Gate: each ring/ps and tree/ps
        // ratio must keep >= 80% of its committed baseline value.
        let current: std::collections::HashMap<_, _> = records
            .iter()
            .map(|r| ((r.scheme.clone(), r.workers, r.elems), r.steps_per_s))
            .collect();
        let mut regressed = false;
        let mut checked = 0usize;
        for r in &records {
            if r.scheme == "ps" {
                continue;
            }
            let ps_key = ("ps".to_string(), r.workers, r.elems);
            let my_key = (r.scheme.clone(), r.workers, r.elems);
            let (Some(&ps_now), Some(&my_base), Some(&ps_base)) = (
                current.get(&ps_key),
                baseline.get(&my_key),
                baseline.get(&ps_key),
            ) else {
                continue;
            };
            let now = r.steps_per_s / ps_now.max(1e-9);
            let base = my_base / ps_base.max(1e-9);
            let rel = now / base.max(1e-9);
            checked += 1;
            let verdict = if rel < 0.8 {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "vs baseline: {}/ps P={} elems={}: {:.2}x -> {:.2}x ({:.2} of baseline) {}",
                r.scheme, r.workers, r.elems, base, now, rel, verdict
            );
        }
        if checked == 0 {
            eprintln!("collective_bench: baseline shares no comparable scenarios; nothing gated");
        }
        if regressed {
            eprintln!("collective_bench: a collective/ps steps ratio regressed >20% vs baseline");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
