//! Emits `BENCH_telemetry.json` — the telemetry plane's overhead budget,
//! tracked across PRs next to `BENCH_kernels.json`:
//!
//! 1. Cost of one record call (a span begin or end) with the recorder
//!    disabled (the production default: one relaxed atomic load and a
//!    branch) and enabled (clock read + thread-local push).
//! 2. A full CIFAR-10-quick training step (forward, loss, backward, SGD;
//!    batch 32) with telemetry off vs on, the end-to-end overhead that
//!    matters. The nn probe hook is installed either way once telemetry has
//!    been enabled, so the "off" number includes the disabled-hook branch.
//!
//! After the instrumented run the recorded trace is rendered through
//! [`poseidon::telemetry::report`], so the binary doubles as a smoke test of
//! the per-layer summary on live (non-simulated) data.
//!
//! Run from the repo root: `cargo run --release -p poseidon-bench --bin
//! telemetry_overhead` (writes `BENCH_telemetry.json` into the current
//! directory). Timings are min-of-N wall clock; the JSON is hand-rolled so
//! the binary stays dependency-free.

use poseidon::telemetry::{self, report, TelemetryConfig};
use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::{parallel, presets};
use poseidon_tensor::Matrix;
use std::time::Instant;

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut state = seed;
    for v in m.as_mut_slice() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32) / (1u64 << 24) as f32 - 0.5;
    }
    m
}

/// Min-of-`reps` wall-clock seconds for `f`.
fn time(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Nanoseconds per record call over `pairs` begin/end pairs.
fn record_call_ns(pairs: usize) -> f64 {
    let t = Instant::now();
    for i in 0..pairs {
        telemetry::span_begin("bench", i as u64, 0);
        telemetry::span_end("bench", i as u64, 0);
    }
    t.elapsed().as_nanos() as f64 / (2 * pairs) as f64
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 1. Record-call cost, recorder off vs on. Drain between enabled reps so
    // the bounded per-thread buffer never saturates into the (cheaper) drop
    // path mid-measurement.
    telemetry::configure(&TelemetryConfig::default());
    let _ = telemetry::drain();
    let mut disabled_ns = f64::INFINITY;
    for _ in 0..5 {
        disabled_ns = disabled_ns.min(record_call_ns(1_000_000));
    }
    telemetry::configure(&TelemetryConfig::enabled());
    let mut enabled_ns = f64::INFINITY;
    for _ in 0..5 {
        enabled_ns = enabled_ns.min(record_call_ns(100_000));
        let _ = telemetry::drain();
    }
    telemetry::disable();
    let _ = telemetry::drain();

    // 2. CIFAR-10-quick step, telemetry off vs on. `enabled()` above already
    // installed the nn probe hook, so the "off" run pays the same disabled
    // branch a production binary without --trace-out pays.
    parallel::set_compute_threads(1);
    let x = lcg_matrix(32, 3 * 32 * 32, 3);
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let head = SoftmaxCrossEntropy;
    let mut step_s = [0.0f64; 2];
    for (slot, enabled) in [false, true].into_iter().enumerate() {
        telemetry::configure(&TelemetryConfig {
            enabled,
            ..TelemetryConfig::default()
        });
        let mut net = presets::cifar_quick(10, 42);
        step_s[slot] = time(10, || {
            let logits = net.forward(&x);
            let out = head.evaluate(&logits, &labels);
            net.backward(&out.grad);
            net.apply_own_grads(-0.001);
        });
    }
    parallel::reset_compute_threads();
    telemetry::disable();
    let trace = telemetry::drain();
    print!(
        "{}",
        report::summarize(std::slice::from_ref(&trace)).render()
    );

    let (off_ms, on_ms) = (step_s[0] * 1e3, step_s[1] * 1e3);
    let overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
    let json = format!(
        "{{\n  \"host\": {{\"cores\": {cores}}},\n  \"record_call_ns\": {{\n    \"disabled\": {disabled_ns:.3},\n    \"enabled\": {enabled_ns:.1}\n  }},\n  \"cifar_quick_step_batch32\": {{\n    \"telemetry_off_ms\": {off_ms:.2},\n    \"telemetry_on_ms\": {on_ms:.2},\n    \"overhead_pct\": {overhead_pct:.2}\n  }}\n}}\n"
    );
    print!("{json}");
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");
    eprintln!("wrote BENCH_telemetry.json");
}
