//! Figure 5: throughput scaling of Poseidon-parallelised **Caffe** at 40GbE —
//! GoogLeNet, VGG19 and VGG19-22K under Caffe+PS, Caffe+WFBP and Poseidon.
//!
//! Run: `cargo run --release -p poseidon-bench --bin fig5`
//! (add `--trace-out PATH` to also dump one simulated VGG19 iteration as a
//! Chrome trace.)

use poseidon::sim::{SimConfig, System};
use poseidon_bench::{banner, print_speedup_panel, trace_out_arg, write_sim_trace, FIG5_NODES};
use poseidon_nn::zoo;

fn main() {
    banner(
        "Figure 5",
        "Caffe-engine speedups at 40GbE (Caffe+PS vs Caffe+WFBP vs Poseidon)",
    );
    let systems = [System::CaffePs, System::WfbpPs, System::Poseidon];
    for model in [zoo::googlenet(), zoo::vgg19(), zoo::vgg19_22k()] {
        print_speedup_panel(&model, &systems, &FIG5_NODES, 40.0);
    }
    println!("Paper shape: WFBP(PS) and Poseidon near-linear to 32 nodes on GoogLeNet");
    println!("and VGG19 (Poseidon 30x on VGG19-22K vs 21.5x for WFBP-only); the");
    println!("vanilla Caffe+PS baseline starts below 1.0 on a single node (memcpy");
    println!("overhead: 213/257 img/s on GoogLeNet) and scales sub-linearly.");
    if let Some(path) = trace_out_arg() {
        banner(
            "Trace",
            "one simulated VGG19 Poseidon iteration (8 nodes, 40GbE)",
        );
        write_sim_trace(
            &zoo::vgg19(),
            &SimConfig::system(System::Poseidon, 8, 40.0),
            &path,
        );
    }
}
