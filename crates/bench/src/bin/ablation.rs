//! Ablations of Poseidon's design choices (DESIGN.md §4), beyond what the
//! paper's figures show directly:
//!
//! 1. WFBP scheduling on/off, isolated from everything else.
//! 2. KV-pair granularity sweep (why 2MB pairs, not whole tensors or tiny
//!    pairs).
//! 3. HybComm vs forcing either scheme for every FC layer.
//! 4. Straggler policies: wait (BSP) vs drop (the paper's policy).
//!
//! Run: `cargo run --release -p poseidon-bench --bin ablation`
//! (add `--trace-out PATH` to also dump the straggler-drop scenario of
//! ablation 4 as a Chrome trace.)

use poseidon::config::{Partition, Scheduler, SchemePolicy};
use poseidon::sim::{simulate, SimConfig, System};
use poseidon::stats::render_table;
use poseidon_bench::{banner, trace_out_arg, write_sim_trace};
use poseidon_nn::zoo;

fn main() {
    scheduler_ablation();
    granularity_ablation();
    scheme_ablation();
    straggler_ablation();
    bandwidth_model_ablation();
    if let Some(path) = trace_out_arg() {
        banner(
            "Trace",
            "GoogLeNet WFBP, node 3 twice as slow and dropped (8 nodes, 40GbE)",
        );
        let mut cfg = SimConfig::system(System::WfbpPs, 8, 40.0);
        cfg.straggler = Some((3, 2.0));
        cfg.drop_stragglers = true;
        write_sim_trace(&zoo::googlenet(), &cfg, &path);
    }
}

fn scheduler_ablation() {
    banner(
        "Ablation 1",
        "WFBP overlap on/off (PS, KV pairs, 8 nodes, 40GbE)",
    );
    let header: Vec<String> = ["model", "sequential", "WFBP", "gain"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for model in zoo::all_models() {
        if model.name == "CIFAR-10 quick" {
            continue; // trivial model, no calibration
        }
        let mut seq = SimConfig::system(System::WfbpPs, 8, 40.0);
        seq.scheduler = Scheduler::Sequential;
        let s = simulate(&model, &seq).speedup;
        let w = simulate(&model, &SimConfig::system(System::WfbpPs, 8, 40.0)).speedup;
        rows.push(vec![
            model.name.to_string(),
            format!("{s:.1}"),
            format!("{w:.1}"),
            format!("{:.0}%", (w / s - 1.0) * 100.0),
        ]);
    }
    println!("{}", render_table(&header, &rows));
}

fn granularity_ablation() {
    banner(
        "Ablation 2",
        "KV-pair size (VGG19, WFBP PS, 8 nodes, 40GbE): balance and speedup",
    );
    let header: Vec<String> = ["partition", "max/mean traffic", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let model = zoo::vgg19();
    let mut rows = Vec::new();
    for (partition, label) in [
        (
            Partition::KvPairs {
                pair_elems: 16 * 1024,
            },
            "64 KB pairs",
        ),
        (
            Partition::KvPairs {
                pair_elems: 512 * 1024,
            },
            "2 MB pairs (Poseidon)",
        ),
        (
            Partition::KvPairs {
                pair_elems: 16 * 1024 * 1024,
            },
            "64 MB pairs",
        ),
        (Partition::WholeTensor, "whole tensors (TF)"),
    ] {
        let mut cfg = SimConfig::system(System::WfbpPs, 8, 40.0);
        cfg.partition = partition;
        let r = simulate(&model, &cfg);
        let mean = r.per_node_gbit.iter().sum::<f64>() / r.per_node_gbit.len() as f64;
        let max = r.per_node_gbit.iter().cloned().fold(0.0f64, f64::max);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", max / mean),
            format!("{:.1}", r.speedup),
        ]);
    }
    println!("{}", render_table(&header, &rows));
}

fn scheme_ablation() {
    banner(
        "Ablation 3",
        "forcing one scheme vs HybComm (VGG19-22K, 16 nodes, 10GbE)",
    );
    let header: Vec<String> = ["policy", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let model = zoo::vgg19_22k();
    let mut rows = Vec::new();
    for (policy, label) in [
        (SchemePolicy::AlwaysPs, "always PS"),
        (SchemePolicy::AlwaysSfbForFc, "always SFB for FC"),
        (SchemePolicy::Hybrid, "HybComm (BestScheme)"),
    ] {
        let mut cfg = SimConfig::system(System::Poseidon, 16, 10.0);
        cfg.policy = policy;
        let r = simulate(&model, &cfg);
        rows.push(vec![label.to_string(), format!("{:.1}", r.speedup)]);
    }
    println!("{}", render_table(&header, &rows));
    println!("HybComm is never worse than either forced choice (the coordinator");
    println!("\"always chooses the best method from available ones\").\n");
}

fn straggler_ablation() {
    banner(
        "Ablation 4",
        "straggler policy (GoogLeNet, 8 nodes, one node 2x slower)",
    );
    let header: Vec<String> = ["policy", "iter time", "cluster img/s"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let model = zoo::googlenet();
    let clean = simulate(&model, &SimConfig::system(System::WfbpPs, 8, 40.0));
    let mut wait = SimConfig::system(System::WfbpPs, 8, 40.0);
    wait.straggler = Some((3, 2.0));
    let waiting = simulate(&model, &wait);
    let mut drop = wait.clone();
    drop.drop_stragglers = true;
    let dropping = simulate(&model, &drop);
    let rows = vec![
        vec![
            "no straggler".to_string(),
            format!("{:.3}s", clean.iter_time_s),
            format!("{:.0}", clean.throughput_ips),
        ],
        vec![
            "wait (plain BSP)".to_string(),
            format!("{:.3}s", waiting.iter_time_s),
            format!("{:.0}", waiting.throughput_ips),
        ],
        vec![
            "drop (Poseidon)".to_string(),
            format!("{:.3}s", dropping.iter_time_s),
            format!("{:.0}", dropping.throughput_ips),
        ],
    ];
    println!("{}", render_table(&header, &rows));
    println!("\"Poseidon handles stragglers by simply dropping them\": the barrier no");
    println!("longer waits for the slow node; throughput recovers to ~7/8 of clean.\n");
}

fn bandwidth_model_ablation() {
    banner(
        "Ablation 5",
        "bandwidth model: FIFO NIC queues vs max-min fair fluid flows",
    );
    let header: Vec<String> = ["config", "FIFO", "fair-share"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cases = [
        (
            "VGG19-22K, WFBP, 16n, 10GbE",
            poseidon_nn::zoo::vgg19_22k(),
            System::WfbpPs,
            16usize,
            10.0,
        ),
        (
            "VGG19-22K, Poseidon, 16n, 10GbE",
            poseidon_nn::zoo::vgg19_22k(),
            System::Poseidon,
            16,
            10.0,
        ),
        (
            "GoogLeNet, WFBP, 16n, 2GbE",
            poseidon_nn::zoo::googlenet(),
            System::WfbpPs,
            16,
            2.0,
        ),
        (
            "VGG19, Poseidon, 8n, 40GbE",
            poseidon_nn::zoo::vgg19(),
            System::Poseidon,
            8,
            40.0,
        ),
    ];
    let mut rows = Vec::new();
    for (label, model, sys, nodes, bw) in cases {
        let fifo = simulate(&model, &SimConfig::system(sys, nodes, bw)).speedup;
        let mut cfg = SimConfig::system(sys, nodes, bw);
        cfg.fair_share = true;
        let fair = simulate(&model, &cfg).speedup;
        rows.push(vec![
            label.to_string(),
            format!("{fifo:.1}"),
            format!("{fair:.1}"),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!("The two bandwidth models agree within ~20% on every configuration, so");
    println!("the reproduction's conclusions do not hinge on the queueing discipline.");
}
