//! `simcli` — ad-hoc cluster simulations from the command line.
//!
//! ```console
//! $ cargo run --release -p poseidon-bench --bin simcli -- \
//!       --model vgg19 --system poseidon --nodes 16 --bandwidth 10 --gpus 1
//! ```
//!
//! Options:
//!   --model      googlenet | inception | vgg19 | vgg19-22k | resnet152 | alexnet
//!   --system     poseidon | wfbp | caffe-ps | tf | adam | cntk-1bit
//!   --nodes N    cluster size (default 8)
//!   --bandwidth G  per-direction GbE (default 40)
//!   --gpus G     GPUs per node (default 1)
//!   --batch K    per-GPU batch (default: the model's Table-3 batch)
//!   --straggler F  make node 0 F-times slower
//!   --drop       drop the straggler instead of waiting

use poseidon::sim::{simulate, SimConfig, System};
use poseidon_nn::zoo::{self, ModelSpec};

fn usage() -> ! {
    eprintln!("usage: simcli --model <name> [--system S] [--nodes N] [--bandwidth G]");
    eprintln!("              [--gpus G] [--batch K] [--straggler F] [--drop]");
    eprintln!("models:  googlenet inception vgg19 vgg19-22k resnet152 alexnet");
    eprintln!("systems: poseidon wfbp caffe-ps tf adam cntk-1bit");
    std::process::exit(2)
}

fn parse_model(name: &str) -> Option<ModelSpec> {
    Some(match name {
        "googlenet" => zoo::googlenet(),
        "inception" => zoo::inception_v3(),
        "vgg19" => zoo::vgg19(),
        "vgg19-22k" => zoo::vgg19_22k(),
        "resnet152" => zoo::resnet152(),
        "alexnet" => zoo::alexnet(),
        _ => return None,
    })
}

fn parse_system(name: &str) -> Option<System> {
    Some(match name {
        "poseidon" => System::Poseidon,
        "wfbp" => System::WfbpPs,
        "caffe-ps" => System::CaffePs,
        "tf" => System::TensorFlow,
        "adam" => System::Adam,
        "cntk-1bit" => System::Cntk1Bit,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut model = None;
    let mut system = System::Poseidon;
    let mut nodes = 8usize;
    let mut bandwidth = 40.0f64;
    let mut gpus = 1usize;
    let mut batch = None;
    let mut straggler = None;
    let mut drop = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--model" => model = Some(parse_model(value()).unwrap_or_else(|| usage())),
            "--system" => system = parse_system(value()).unwrap_or_else(|| usage()),
            "--nodes" => nodes = value().parse().unwrap_or_else(|_| usage()),
            "--bandwidth" => bandwidth = value().parse().unwrap_or_else(|_| usage()),
            "--gpus" => gpus = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = Some(value().parse().unwrap_or_else(|_| usage())),
            "--straggler" => {
                straggler = Some((0usize, value().parse::<f64>().unwrap_or_else(|_| usage())))
            }
            "--drop" => drop = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(model) = model else { usage() };

    let mut cfg = SimConfig::system(system, nodes, bandwidth);
    cfg.gpus_per_node = gpus;
    cfg.batch_per_node = batch;
    cfg.straggler = straggler;
    cfg.drop_stragglers = drop;
    let r = simulate(&model, &cfg);

    println!(
        "model        : {} ({:.1}M params)",
        model.name,
        model.total_params() as f64 / 1e6
    );
    println!("system       : {}", system.label());
    println!("cluster      : {nodes} nodes x {gpus} GPU(s), {bandwidth} GbE");
    println!(
        "iteration    : {:.4} s ({:.4} s compute, {:.0}% stall)",
        r.iter_time_s,
        r.compute_s,
        r.stall_fraction * 100.0
    );
    println!(
        "throughput   : {:.1} img/s ({:.1} img/s on one GPU)",
        r.throughput_ips, r.single_node_ips
    );
    println!("speedup      : {:.2}x over one GPU", r.speedup);
    let max = r.per_node_gbit.iter().cloned().fold(0.0f64, f64::max);
    let mean = r.per_node_gbit.iter().sum::<f64>() / r.per_node_gbit.len().max(1) as f64;
    println!("traffic/node : {mean:.2} Gb/iter mean, {max:.2} max");
    let sfb = r
        .schemes
        .iter()
        .filter(|(_, s)| *s == poseidon::config::CommScheme::Sfb)
        .count();
    println!(
        "schemes      : {} layers total, {} via SFB",
        r.schemes.len(),
        sfb
    );
}
