//! Figure 7: breakdown of GPU computation vs stall time on 8 nodes for the
//! three TF-engine models under TF, TF+WFBP and Poseidon.
//!
//! Run: `cargo run --release -p poseidon-bench --bin fig7`

use poseidon::sim::{simulate, SimConfig, System};
use poseidon::stats::render_table;
use poseidon_bench::banner;
use poseidon_nn::zoo;

fn main() {
    banner(
        "Figure 7",
        "GPU computation vs stall time, 8 nodes, 40GbE (TF engine)",
    );
    let header: Vec<String> = ["model", "system", "compute %", "stall %"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for model in [zoo::inception_v3(), zoo::vgg19(), zoo::vgg19_22k()] {
        for sys in [System::TensorFlow, System::WfbpPs, System::Poseidon] {
            let label = match sys {
                System::TensorFlow => "TF",
                System::WfbpPs => "TF+WFBP",
                System::Poseidon => "PSD",
                _ => unreachable!(),
            };
            let r = simulate(&model, &SimConfig::system(sys, 8, 40.0));
            rows.push(vec![
                model.name.to_string(),
                label.to_string(),
                format!("{:.0}", (1.0 - r.stall_fraction) * 100.0),
                format!("{:.0}", r.stall_fraction * 100.0),
            ]);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!("Paper shape: Poseidon keeps the GPU busy nearly all the time; TF wastes");
    println!("a large fraction of the iteration waiting for parameter synchronisation,");
    println!("worst on the FC-heavy VGG models. (Our idealised WFBP model slightly");
    println!("overstates TF+WFBP's compute fraction — see EXPERIMENTS.md.)");
}
