//! Section 5.1 "Multi-GPU Settings": Poseidon with several GPUs per node —
//! local PCIe aggregation onto a leader GPU, then the normal network
//! synchronisation.
//!
//! Reproduces the two reported results: (a) near-linear scaling up to 4 GPUs
//! in a single machine (where Caffe's own multi-GPU tree reaches only ~3x on
//! GoogLeNet and ~2x on VGG19), and (b) 4 nodes × 8 GPUs (32 GPUs total)
//! reaching ~32x on GoogLeNet and ~28x on VGG19.
//!
//! Run: `cargo run --release -p poseidon-bench --bin multigpu`

use poseidon::sim::{simulate, SimConfig, System};
use poseidon::stats::render_table;
use poseidon_bench::banner;
use poseidon_nn::zoo::{self, ModelSpec};

/// Speedup of Poseidon with `nodes` machines × `gpus` GPUs over one GPU.
fn poseidon_speedup(model: &ModelSpec, nodes: usize, gpus: usize) -> f64 {
    let mut cfg = SimConfig::system(System::Poseidon, nodes, 40.0);
    cfg.gpus_per_node = gpus;
    simulate(model, &cfg).speedup
}

/// Caffe's unoverlapped multi-GPU tree on one machine: compute plus a
/// blocking 2·log2(G)-hop parameter exchange over unpinned PCIe per
/// iteration (the paper measured ~3x on GoogLeNet, ~2x on VGG19 at 4 GPUs).
fn caffe_tree_speedup(model: &ModelSpec, gpus: usize) -> f64 {
    let compute =
        model.default_batch as f64 / model.paper_single_node_ips.expect("calibrated model");
    let hops = 2.0 * (gpus as f64).log2().ceil();
    let pcie_unpinned = 3.0e9;
    let per_layer_overhead = 0.5e-3 * model.trainable_layers().len() as f64;
    let exchange = hops * (model.param_bytes() as f64 / pcie_unpinned) + hops * per_layer_overhead;
    let iter = compute + exchange;
    gpus as f64 * compute / iter
}

fn main() {
    banner(
        "Section 5.1 multi-GPU",
        "single machine: Poseidon vs Caffe's multi-GPU tree",
    );
    let header: Vec<String> = ["model", "GPUs", "Poseidon", "Caffe multi-GPU", "paper"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for model in [zoo::googlenet(), zoo::vgg19()] {
        for gpus in [1usize, 2, 4] {
            let paper = match (model.name, gpus) {
                ("GoogLeNet", 4) => "~4x vs ~3x",
                ("VGG19", 4) => "~4x vs ~2x",
                _ => "-",
            };
            rows.push(vec![
                model.name.to_string(),
                gpus.to_string(),
                format!("{:.1}", poseidon_speedup(&model, 1, gpus)),
                format!("{:.1}", caffe_tree_speedup(&model, gpus)),
                paper.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&header, &rows));

    banner(
        "Section 5.1 multi-GPU",
        "4 nodes x 8 GPUs (p2.8xlarge-like), 32 GPUs total",
    );
    let header: Vec<String> = ["model", "config", "speedup", "paper"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows = vec![
        vec![
            "GoogLeNet".to_string(),
            "4 x 8 GPUs".to_string(),
            format!("{:.1}", poseidon_speedup(&zoo::googlenet(), 4, 8)),
            "32x".to_string(),
        ],
        vec![
            "VGG19".to_string(),
            "4 x 8 GPUs".to_string(),
            format!("{:.1}", poseidon_speedup(&zoo::vgg19(), 4, 8)),
            "28x".to_string(),
        ],
    ];
    println!("{}", render_table(&header, &rows));
    println!("Shape: local PCIe aggregation keeps multi-GPU nodes near-linear; VGG19's");
    println!("bigger parameter volume costs more per-node aggregation, so it lands");
    println!("below GoogLeNet — the ordering the paper reports (32x vs 28x).");
}
