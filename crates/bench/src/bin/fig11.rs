//! Figure 11: training loss and test error vs iteration for the CIFAR-10
//! quick network under exact synchronisation (Poseidon) vs 1-bit quantized
//! gradients with residual feedback (Poseidon-1bit), 4 workers.
//!
//! This is a *real* training experiment on the threaded runtime: both
//! configurations run the same synchronous protocol; only the FC-layer
//! payloads differ. The synthetic Gaussian-cluster dataset substitutes for
//! CIFAR-10 (DESIGN.md); the comparison between the two systems is the
//! reproduction target.
//!
//! Run: `cargo run --release -p poseidon-bench --bin fig11`

use poseidon::config::SchemePolicy;
use poseidon::runtime::{train, LrSchedule, RuntimeConfig, TrainResult};
use poseidon::stats::render_table;
use poseidon_bench::banner;
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;

fn run(policy: SchemePolicy, iters: usize) -> TrainResult<poseidon_nn::Network> {
    let shape = TensorShape::new(3, 16, 16);
    let all = Dataset::smooth_clusters(shape, 20, 2400, 3.0, 51);
    let (train_set, test_set) = all.split_at(2000);
    let cfg = RuntimeConfig {
        policy,
        // The Caffe cifar10_quick solver trains with momentum 0.9 and a
        // stepped learning rate.
        momentum: 0.9,
        lr_schedule: LrSchedule::Step {
            every: 250,
            factor: 0.3,
        },
        eval_every: iters / 10,
        ..RuntimeConfig::new(4, 8, 0.01, iters)
    };
    train(
        &|| presets::cifar_quick_scaled(TensorShape::new(3, 16, 16), 8, 20, 13),
        &train_set,
        Some(&test_set),
        &cfg,
    )
}

fn main() {
    banner(
        "Figure 11",
        "loss / test error vs iteration: Poseidon vs Poseidon-1bit, 4 workers",
    );
    let iters = 600usize;
    let exact = run(SchemePolicy::Hybrid, iters);
    let onebit = run(SchemePolicy::OneBit, iters);

    let header: Vec<String> = [
        "iteration",
        "loss (PSD)",
        "loss (1bit)",
        "err (PSD)",
        "err (1bit)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let step = iters / 10;
    let rows: Vec<Vec<String>> = (1..=10)
        .map(|k| {
            let it = k * step;
            let window = |r: &TrainResult<poseidon_nn::Network>| {
                let lo = it.saturating_sub(step);
                let s: f32 = r.losses[lo..it].iter().sum();
                s / (it - lo) as f32
            };
            let err = |r: &TrainResult<poseidon_nn::Network>| {
                r.test_errors
                    .iter()
                    .find(|&&(i, _)| i == it)
                    .map(|&(_, e)| format!("{e:.3}"))
                    .unwrap_or_else(|| "-".into())
            };
            vec![
                it.to_string(),
                format!("{:.3}", window(&exact)),
                format!("{:.3}", window(&onebit)),
                err(&exact),
                err(&onebit),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));

    let final_exact = exact.test_errors.last().map(|&(_, e)| e).unwrap_or(1.0);
    let final_onebit = onebit.test_errors.last().map(|&(_, e)| e).unwrap_or(1.0);
    println!("final test error: Poseidon {final_exact:.3}, Poseidon-1bit {final_onebit:.3}");
    println!("Paper shape: the 1-bit variant converges more slowly in both loss and");
    println!("test error — with the solver's momentum (0.9, as in Caffe's");
    println!("cifar10_quick), the quantization residual behaves like delayed updates");
    println!("that momentum amplifies, exactly the paper's conjecture. Poseidon's");
    println!("exact synchronous updates converge fastest at every checkpoint.");
}
