//! Gradient-compression sweep (paper Figure 11 territory): train the same
//! model under every registry codec and report, per codec, the wire bytes
//! actually moved (from the traffic ledger), throughput, and the final loss
//! next to the identity baseline — compression is only worth its bytes if
//! convergence survives it.
//!
//! The run is deterministic end to end (fixed seeds, BSP, error-feedback
//! compressors), so the bytes ratios in `BENCH_compression.json` are exact
//! machine-independent facts and the `--check-against` gate compares them
//! directly; steps/s is recorded for context but never gated.
//!
//!   cargo run --release -p poseidon-bench --bin compression_bench -- \
//!       --out BENCH_compression.json --check-against BENCH_compression.json

use poseidon::config::{Codec, CodecPolicy, Partition, SchemePolicy};
use poseidon::runtime::{train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::Network;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "compression_bench: per-codec traffic/convergence sweep

USAGE:
    compression_bench [OPTIONS]

OPTIONS:
    --workers N        workers, shards colocated (default 3)
    --iters N          training iterations per run (default 12)
    --batch N          per-worker minibatch (default 8)
    --codecs LIST      comma-separated codec list
                       (default identity,onebit,f16,bf16,topk:100)
    --pair-elems N     KV-pair chunk granularity (default 256)
    --repeat N         keep the best steps/s of N runs (default 2)
    --out FILE         write JSON results (default BENCH_compression.json)
    --check-against F  gate bytes ratios + convergence parity vs baseline
    --help             print this text
";

struct Args {
    workers: usize,
    iters: usize,
    batch: usize,
    codecs: Vec<Codec>,
    pair_elems: usize,
    repeat: usize,
    out: String,
    check_against: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: 3,
            iters: 12,
            batch: 8,
            codecs: vec![
                Codec::Identity,
                Codec::OneBit,
                Codec::F16,
                Codec::Bf16,
                Codec::TopK { permille: 100 },
            ],
            pair_elems: 256,
            repeat: 2,
            out: "BENCH_compression.json".to_string(),
            check_against: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    let bad = |what: &dyn std::fmt::Display| format!("compression_bench: {what}\n\n{USAGE}");
    while let Some(flag) = it.next() {
        if flag == "--help" {
            return Err(USAGE.to_string());
        }
        let val = it
            .next()
            .ok_or_else(|| bad(&format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--workers" => args.workers = val.parse().map_err(|e| bad(&e))?,
            "--iters" => args.iters = val.parse().map_err(|e| bad(&e))?,
            "--batch" => args.batch = val.parse().map_err(|e| bad(&e))?,
            "--pair-elems" => args.pair_elems = val.parse().map_err(|e| bad(&e))?,
            "--repeat" => args.repeat = val.parse::<usize>().map_err(|e| bad(&e))?.max(1),
            "--out" => args.out = val,
            "--check-against" => args.check_against = Some(val),
            "--codecs" => {
                args.codecs = val
                    .split(',')
                    .map(|s| s.trim().parse::<Codec>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| bad(&e))?;
            }
            other => return Err(bad(&format!("unknown flag {other}"))),
        }
    }
    if !args.codecs.contains(&Codec::Identity) {
        // Ratios and parity are all relative to the dense baseline.
        args.codecs.insert(0, Codec::Identity);
    }
    Ok(args)
}

struct Record {
    codec: String,
    workers: usize,
    iters: usize,
    bytes_total: u64,
    bytes_ratio: f64,
    steps_per_s: f64,
    final_loss: f32,
    first_loss: f32,
}

const IN: usize = 24;
const CLASSES: usize = 6;

fn dataset() -> Dataset {
    Dataset::gaussian_clusters(TensorShape::flat(IN), CLASSES, 192, 0.35, 11)
}

fn factory() -> Network {
    presets::mlp(&[IN, 64, 48, CLASSES], 9)
}

/// One deterministic PS training run under `codec`; returns
/// `(total wire bytes, steps/s, first loss, final loss)`.
fn run_codec(codec: Codec, a: &Args) -> (u64, f64, f32, f32) {
    let cfg = RuntimeConfig {
        policy: SchemePolicy::AlwaysPs,
        codec: match codec {
            Codec::Identity => CodecPolicy::Identity,
            c => CodecPolicy::Always(c),
        },
        partition: Partition::KvPairs {
            pair_elems: a.pair_elems,
        },
        comm_timeout: Duration::from_secs(60),
        ..RuntimeConfig::new(a.workers, a.batch, 0.15, a.iters)
    };
    let started = Instant::now();
    let result = train(&factory, &dataset(), None, &cfg);
    let elapsed = started.elapsed().as_secs_f64();
    let steps_per_s = a.iters as f64 / elapsed.max(1e-9);
    let first = *result.losses.first().expect("at least one iteration");
    let last = *result.losses.last().expect("at least one iteration");
    (result.traffic.total_bytes(), steps_per_s, first, last)
}

fn render(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"bench\": \"compression\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"codec\": \"{}\", \"workers\": {}, \"iters\": {}, \
             \"bytes_total\": {}, \"bytes_ratio\": {:.4}, \"steps_per_s\": {:.2}, \
             \"first_loss\": {:.6}, \"final_loss\": {:.6}}}{sep}\n",
            r.codec,
            r.workers,
            r.iters,
            r.bytes_total,
            r.bytes_ratio,
            r.steps_per_s,
            r.first_loss,
            r.final_loss,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"key": value` out of one scenario line (same tiny parser as the
/// other benches — the baseline format has no other consumer).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// `codec -> bytes_ratio` from a committed results file.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let (Some(c), Some(r)) = (field(line, "codec"), field(line, "bytes_ratio")) else {
            continue;
        };
        if let Ok(r) = r.parse() {
            map.insert(c.to_string(), r);
        }
    }
    map
}

/// The wire-bytes floor a lossy codec must beat regardless of baseline: if a
/// "compressed" run moves more than 3/4 of the dense bytes, the codec plane
/// is broken (headers swamping payloads, a codec silently falling back to
/// dense, double-shipping).
const LOSSY_RATIO_FLOOR: f64 = 0.75;

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = args.check_against.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        parse_baseline(&text)
    });

    // Identity first (parse_args guarantees membership) so every later row
    // can report its ratio immediately; repeats run back-to-back per codec so
    // steps/s comparisons see like machine conditions.
    let mut codecs = args.codecs.clone();
    codecs.sort_by_key(|c| if *c == Codec::Identity { 0 } else { 1 });

    let mut records: Vec<Record> = Vec::new();
    let mut identity_bytes = 0u64;
    let mut identity_final = f32::NAN;
    for codec in &codecs {
        let mut best: Option<(u64, f64, f32, f32)> = None;
        for _ in 0..args.repeat {
            let r = run_codec(*codec, &args);
            if let Some(b) = &best {
                // Deterministic runs: bytes and losses must not vary between
                // repeats, only wall time may.
                assert_eq!(b.0, r.0, "{codec}: wire bytes varied across repeats");
                assert_eq!(b.3, r.3, "{codec}: final loss varied across repeats");
            }
            if best.is_none_or(|b| r.1 > b.1) {
                best = Some(r);
            }
        }
        let (bytes, steps_per_s, first, last) = best.expect("repeat >= 1");
        if *codec == Codec::Identity {
            identity_bytes = bytes;
            identity_final = last;
        }
        let ratio = bytes as f64 / identity_bytes.max(1) as f64;
        println!(
            "{:>9}  {:>10} B  ratio {:>6.4}  {:>7.2} steps/s  loss {:.4} -> {:.4}",
            codec.to_string(),
            bytes,
            ratio,
            steps_per_s,
            first,
            last
        );
        records.push(Record {
            codec: codec.to_string(),
            workers: args.workers,
            iters: args.iters,
            bytes_total: bytes,
            bytes_ratio: ratio,
            steps_per_s,
            final_loss: last,
            first_loss: first,
        });
    }

    let json = render(&records);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("results written to {}", args.out);

    // Convergence parity, Figure-11 style: every codec's loss curve must
    // actually descend, and lossy finals must land near the dense final.
    // These hold unconditionally — no baseline needed, runs are deterministic.
    let mut failed = false;
    for r in &records {
        if !r.final_loss.is_finite() || r.final_loss >= r.first_loss {
            eprintln!(
                "compression_bench: {} diverged (loss {:.4} -> {:.4})",
                r.codec, r.first_loss, r.final_loss
            );
            failed = true;
        }
        if r.final_loss > identity_final * 2.0 + 1e-3 {
            eprintln!(
                "compression_bench: {} lost convergence parity (final {:.4} vs identity {:.4})",
                r.codec, r.final_loss, identity_final
            );
            failed = true;
        }
        if r.codec != "identity" && r.bytes_ratio >= LOSSY_RATIO_FLOOR {
            eprintln!(
                "compression_bench: {} saved too little ({:.4} of dense bytes, floor {})",
                r.codec, r.bytes_ratio, LOSSY_RATIO_FLOOR
            );
            failed = true;
        }
    }

    if let Some(baseline) = baseline {
        // Bytes ratios are deterministic, so "no worse than committed" means
        // equal up to rounding; 5% slack absorbs intentional small protocol
        // changes without letting a codec quietly stop compressing.
        let mut checked = 0usize;
        for r in &records {
            let Some(&base) = baseline.get(&r.codec) else {
                continue;
            };
            checked += 1;
            let verdict = if r.bytes_ratio > base * 1.05 {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "vs baseline: {} bytes ratio {:.4} (committed {:.4}) {}",
                r.codec, r.bytes_ratio, base, verdict
            );
        }
        if checked == 0 {
            eprintln!("compression_bench: baseline shares no comparable codecs; nothing gated");
        }
    }

    if failed {
        eprintln!("compression_bench: gate failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
