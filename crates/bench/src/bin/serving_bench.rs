//! Emits `BENCH_serving.json` — proof the inference front door stays live
//! *through* an elastic reconfiguration, and at what request rate.
//!
//! One threaded `train` run executes a membership plan (default: shard 1
//! leaves at iteration 4 and rejoins at 8, so the run crosses two handoff
//! boundaries) while client threads hammer the [`ServingServer`] bound to
//! the run's snapshot cell. Every reply is tallied by status and by the
//! membership epoch of the snapshot that answered it; the bench FAILS
//! (nonzero exit) unless requests were answered OK from *every* epoch of
//! the plan — including the reduced-membership window in the middle, which
//! is exactly when a naive design would go dark.
//!
//! A small per-iteration straggler delay stretches each epoch's wall-clock
//! window so the clients observably sample all of them; the delay changes
//! no arithmetic (the elastic run stays bitwise equal to the fixed one).
//!
//! `--check-against FILE` gates requests/s against a committed baseline
//! with a deliberately loose 4x margin — serving throughput is accept-loop
//! bound, not machine bound, so it is stable, but this is a liveness gate,
//! not a speed race.
//!
//! Run from the repo root: `cargo run --release -p poseidon-bench --bin
//! serving_bench` (writes `BENCH_serving.json` into the current directory).

use poseidon::config::{Partition, SchemePolicy};
use poseidon::membership::{MembershipPlan, MembershipSchedule};
use poseidon::runtime::{install_model_params, train, RuntimeConfig};
use poseidon::serving::{
    query, InferFn, ServingServer, Snapshot, SnapshotCell, SERVE_NO_SNAPSHOT, SERVE_OK,
};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::Network;
use poseidon_tensor::Matrix;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "serving_bench: live-serving availability across an elastic reconfiguration
  --workers N       worker count P                              [2]
  --iters N         BSP iterations                              [12]
  --plan P          membership plan the run executes            [leave:1@4;join:1@8]
  --clients N       concurrent query threads                    [2]
  --delay-ms N      per-iteration straggler delay stretching the
                    reconfiguration window                      [5]
  --retries N       measurement attempts before giving up       [3]
  --out PATH        write results JSON here                     [BENCH_serving.json]
  --check-against P fail if requests/s fall below baseline/4    [off]";

struct Args {
    workers: usize,
    iters: usize,
    plan: MembershipPlan,
    clients: usize,
    delay_ms: u64,
    retries: usize,
    out: String,
    check_against: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            workers: 2,
            iters: 12,
            plan: MembershipPlan::parse("leave:1@4;join:1@8").expect("default plan"),
            clients: 2,
            delay_ms: 5,
            retries: 3,
            out: "BENCH_serving.json".into(),
            check_against: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let val = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag.as_str() {
            "--workers" => args.workers = val.parse().map_err(|e| bad(&e))?,
            "--iters" => args.iters = val.parse().map_err(|e| bad(&e))?,
            "--plan" => args.plan = MembershipPlan::parse(&val).map_err(|e| bad(&e))?,
            "--clients" => args.clients = val.parse().map_err(|e| bad(&e))?,
            "--delay-ms" => args.delay_ms = val.parse().map_err(|e| bad(&e))?,
            "--retries" => args.retries = val.parse().map_err(|e| bad(&e))?,
            "--out" => args.out = val,
            "--check-against" => args.check_against = Some(val),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.workers == 0 || args.iters == 0 || args.clients == 0 || args.retries == 0 {
        return Err("--workers, --iters, --clients and --retries must be positive".into());
    }
    MembershipSchedule::resolve(&args.plan, args.workers).map_err(|e| format!("--plan: {e}"))?;
    Ok(args)
}

const LAYERS: [usize; 4] = [12, 16, 8, 4];
const SEED: u64 = 5;
const BATCH: usize = 8;

/// Per-client tallies, merged after the run.
#[derive(Default, Clone)]
struct Tally {
    requests: u64,
    ok: u64,
    no_snapshot: u64,
    io_errors: u64,
    /// OK replies per membership epoch (indexed by epoch).
    ok_by_epoch: Vec<u64>,
    /// Highest snapshot iteration observed (snapshots must advance).
    max_iter: u64,
}

struct Measured {
    tally: Tally,
    elapsed: Duration,
    final_loss: f32,
}

/// One measured run: train under the plan while clients hammer the front
/// door; returns merged tallies and the training wall time.
fn run_once(a: &Args, epochs: usize) -> Measured {
    let cell = SnapshotCell::new();
    let cache: Mutex<Option<(u64, Network)>> = Mutex::new(None);
    let infer: Arc<InferFn> = Arc::new(move |snap: &Snapshot, n, d, inputs: &[f32]| {
        if d != LAYERS[0] {
            return None;
        }
        let mut cached = cache.lock().expect("infer cache");
        if cached.as_ref().is_none_or(|(it, _)| *it != snap.iter) {
            let mut net = presets::mlp(&LAYERS, SEED);
            install_model_params(&mut net, &snap.params);
            *cached = Some((snap.iter, net));
        }
        let (_, net) = cached.as_mut().expect("just installed");
        let out = net.forward(&Matrix::from_vec(n, d, inputs.to_vec()));
        Some(out.as_slice().to_vec())
    });
    let server = ServingServer::serve("127.0.0.1:0", Arc::clone(&cell), infer).expect("serve bind");
    let addr = server.addr().to_string();

    let cfg = RuntimeConfig {
        policy: SchemePolicy::AlwaysPs,
        partition: Partition::KvPairs { pair_elems: 37 },
        comm_timeout: Duration::from_secs(120),
        membership: a.plan.clone(),
        serve_snapshots: Some(Arc::clone(&cell)),
        straggler_delay_ms: Some((0, a.delay_ms)),
        ..RuntimeConfig::new(a.workers, BATCH, 0.2, a.iters)
    };
    let data = Dataset::gaussian_clusters(
        TensorShape::flat(LAYERS[0]),
        *LAYERS.last().expect("layers"),
        96,
        0.3,
        SEED + 1,
    );

    let stop = AtomicBool::new(false);
    let tallies = Mutex::new(Vec::new());
    let mut final_loss = f32::NAN;
    let start = Instant::now();
    let elapsed = std::thread::scope(|s| {
        for c in 0..a.clients {
            let (addr, stop, tallies) = (&addr, &stop, &tallies);
            s.spawn(move || {
                let mut t = Tally {
                    ok_by_epoch: vec![0; epochs],
                    ..Tally::default()
                };
                let mut r = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let n = 4usize;
                    let inputs: Vec<f32> = (0..n * LAYERS[0])
                        .map(|j| ((c as u64 * 131 + r * 17 + j as u64) % 23) as f32 * 0.1 - 1.0)
                        .collect();
                    r += 1;
                    t.requests += 1;
                    match query(addr, n, LAYERS[0], &inputs) {
                        Ok(reply) if reply.status == SERVE_OK => {
                            assert_eq!(reply.outputs.len(), n * reply.k, "torn reply");
                            assert_eq!(reply.k, *LAYERS.last().expect("layers"), "output width");
                            t.ok += 1;
                            t.max_iter = t.max_iter.max(reply.iter);
                            let e = reply.epoch as usize;
                            assert!(e < epochs, "epoch {e} beyond the plan");
                            t.ok_by_epoch[e] += 1;
                        }
                        Ok(reply) => {
                            assert_eq!(reply.status, SERVE_NO_SNAPSHOT, "unexpected status");
                            t.no_snapshot += 1;
                        }
                        Err(_) => t.io_errors += 1,
                    }
                }
                tallies.lock().expect("tally lock").push(t);
            });
        }
        let result = train(&|| presets::mlp(&LAYERS, SEED), &data, None, &cfg);
        let elapsed = start.elapsed();
        final_loss = result.losses.last().copied().unwrap_or(f32::NAN);
        stop.store(true, Ordering::Relaxed);
        elapsed
    });

    let mut merged = Tally {
        ok_by_epoch: vec![0; epochs],
        ..Tally::default()
    };
    for t in tallies.into_inner().expect("tally lock") {
        merged.requests += t.requests;
        merged.ok += t.ok;
        merged.no_snapshot += t.no_snapshot;
        merged.io_errors += t.io_errors;
        merged.max_iter = merged.max_iter.max(t.max_iter);
        for (m, v) in merged.ok_by_epoch.iter_mut().zip(&t.ok_by_epoch) {
            *m += v;
        }
    }
    Measured {
        tally: merged,
        elapsed,
        final_loss,
    }
}

/// Pulls `"key": value` out of the baseline text (same tiny parser as the
/// other bench binaries — the format has no other consumer).
fn field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = text.find(&pat)? + pat.len();
    let rest = &text[at..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let schedule =
        MembershipSchedule::resolve(&a.plan, a.workers).expect("parse_args validated the plan");
    let epochs = schedule.epochs();

    // Liveness is the claim: every epoch must answer at least one request.
    // Scheduler starvation on a loaded machine can blank a short window, so
    // measure up to `--retries` times before calling it a failure.
    let mut measured = run_once(&a, epochs);
    for attempt in 1..a.retries {
        if measured.tally.ok_by_epoch.iter().all(|&n| n > 0) {
            break;
        }
        eprintln!(
            "attempt {attempt}: an epoch served zero requests ({:?}); retrying",
            measured.tally.ok_by_epoch
        );
        measured = run_once(&a, epochs);
    }
    let t = &measured.tally;
    let secs = measured.elapsed.as_secs_f64().max(1e-9);
    let requests_per_s = t.ok as f64 / secs;
    let all_epochs_live = t.ok_by_epoch.iter().all(|&n| n > 0);
    let pass = all_epochs_live && t.ok > 0;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let by_epoch = t
        .ok_by_epoch
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"host\": {{\"cores\": {cores}}},\n  \"config\": {{\"workers\": {}, \"iters\": {}, \"plan\": \"{}\", \"clients\": {}, \"epochs\": {epochs}}},\n  \"results\": {{\n    \"requests_total\": {},\n    \"ok\": {},\n    \"no_snapshot\": {},\n    \"io_errors\": {},\n    \"elapsed_ms\": {:.2},\n    \"requests_per_s\": {requests_per_s:.2},\n    \"ok_by_epoch\": [{by_epoch}],\n    \"max_snapshot_iter\": {},\n    \"final_loss\": {:.6},\n    \"pass\": {pass}\n  }}\n}}\n",
        a.workers,
        a.iters,
        a.plan,
        a.clients,
        t.requests,
        t.ok,
        t.no_snapshot,
        t.io_errors,
        measured.elapsed.as_secs_f64() * 1e3,
        t.max_iter,
        measured.final_loss,
    );
    print!("{json}");
    if let Err(e) = std::fs::write(&a.out, &json) {
        eprintln!("writing {}: {e}", a.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", a.out);

    if !pass {
        eprintln!(
            "serving_bench: FAIL — epochs served {:?} (every epoch must answer requests)",
            t.ok_by_epoch
        );
        return ExitCode::FAILURE;
    }
    if let Some(path) = &a.check_against {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match field(&text, "requests_per_s") {
            Some(base) if base > 0.0 => {
                let rel = requests_per_s / base;
                println!("vs baseline: {base:.2} -> {requests_per_s:.2} req/s ({rel:.2}x)");
                if rel < 0.25 {
                    eprintln!(
                        "serving_bench: FAIL — requests/s fell below a quarter of the baseline"
                    );
                    return ExitCode::FAILURE;
                }
            }
            _ => eprintln!("serving_bench: baseline has no requests_per_s; nothing gated"),
        }
    }
    ExitCode::SUCCESS
}
