//! Figure 10: averaged per-node communication load (Gb per iteration) when
//! training VGG19 on 8 nodes with the TF engine — TF+WFBP vs Adam vs
//! Poseidon.
//!
//! Run: `cargo run --release -p poseidon-bench --bin fig10`

use poseidon::sim::{simulate, SimConfig, System};
use poseidon::stats::render_table;
use poseidon_bench::banner;
use poseidon_nn::zoo;

fn main() {
    banner(
        "Figure 10",
        "per-node traffic (Gb/iteration), VGG19, 8 nodes, 40GbE",
    );
    let vgg = zoo::vgg19();
    let header: Vec<String> = std::iter::once("system".to_string())
        .chain((0..8).map(|n| format!("node{n}")))
        .chain(["max/mean".to_string(), "speedup".to_string()])
        .collect();
    let mut rows = Vec::new();
    for (sys, label) in [
        (System::WfbpPs, "TF-WFBP"),
        (System::Adam, "Adam"),
        (System::Poseidon, "Poseidon"),
    ] {
        let r = simulate(&vgg, &SimConfig::system(sys, 8, 40.0));
        let mean = r.per_node_gbit.iter().sum::<f64>() / 8.0;
        let max = r.per_node_gbit.iter().cloned().fold(0.0f64, f64::max);
        let mut row = vec![label.to_string()];
        row.extend(r.per_node_gbit.iter().map(|g| format!("{g:.1}")));
        row.push(format!("{:.2}", max / mean));
        row.push(format!("{:.1}", r.speedup));
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));
    println!("Paper shape: TF-WFBP's PS traffic is evenly spread (~even bars); Adam's");
    println!("SF-push/matrix-pull overloads the shard owning the big FC layers (one");
    println!("bar several times the rest, ~5x speedup only); Poseidon is both small");
    println!("and balanced.");
}
