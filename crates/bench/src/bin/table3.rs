//! Table 3: the evaluation networks — parameter counts, datasets, batch sizes
//! — regenerated from the layer-by-layer zoo descriptors.
//!
//! Run: `cargo run --release -p poseidon-bench --bin table3`

use poseidon::stats::render_table;
use poseidon_bench::banner;
use poseidon_nn::zoo;

fn main() {
    banner("Table 3", "neural networks for evaluation");
    let header: Vec<String> = [
        "model",
        "# params",
        "paper",
        "dataset",
        "batch",
        "layers",
        "FC share",
        "fwd GFLOPs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let paper_params = [
        ("CIFAR-10 quick", "145.6K"),
        ("GoogLeNet", "5M"),
        ("Inception-V3", "27M"),
        ("VGG19", "143M"),
        ("VGG19-22K", "229M"),
        ("ResNet-152", "60.2M"),
        ("AlexNet", "61.5M"),
    ];

    let rows: Vec<Vec<String>> = zoo::all_models()
        .iter()
        .map(|m| {
            let paper = paper_params
                .iter()
                .find(|(name, _)| *name == m.name)
                .map(|(_, p)| *p)
                .unwrap_or("-");
            vec![
                m.name.to_string(),
                format_params(m.total_params()),
                paper.to_string(),
                m.dataset.to_string(),
                m.default_batch.to_string(),
                m.layers.len().to_string(),
                format!("{:.0}%", m.fc_fraction() * 100.0),
                format!("{:.1}", m.fwd_flops() as f64 / 1e9),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    println!("Notes: GoogLeNet's exact deploy count is 7.0M (the paper's 5M is the");
    println!("'12x fewer than AlexNet' approximation); all other rows match Table 3");
    println!("within 3%. 'FC share' is the fraction of parameters in FC layers — the");
    println!("paper quotes 91% for VGG19-22K.");
}

fn format_params(p: u64) -> String {
    if p >= 1_000_000 {
        format!("{:.1}M", p as f64 / 1e6)
    } else {
        format!("{:.1}K", p as f64 / 1e3)
    }
}
