//! Figure 8: throughput scaling under limited bandwidth (tc-throttled
//! Ethernet) — Caffe engine, Caffe+WFBP vs Poseidon.
//!
//! Run: `cargo run --release -p poseidon-bench --bin fig8`

use poseidon::sim::{simulate, SimConfig, System};
use poseidon::stats::render_table;
use poseidon_bench::{banner, FIG8_NODES};
use poseidon_nn::zoo;

fn main() {
    banner(
        "Figure 8",
        "speedups with limited per-node bandwidth (Caffe engine)",
    );
    let panels: [(poseidon_nn::zoo::ModelSpec, [f64; 3]); 3] = [
        (zoo::googlenet(), [2.0, 5.0, 10.0]),
        (zoo::vgg19(), [10.0, 20.0, 30.0]),
        (zoo::vgg19_22k(), [10.0, 20.0, 30.0]),
    ];
    for (model, bws) in panels {
        println!("{}:", model.name);
        let mut header = vec!["nodes".to_string()];
        for bw in bws {
            header.push(format!("PSD {bw:.0}GbE"));
            header.push(format!("WFBP {bw:.0}GbE"));
        }
        let rows: Vec<Vec<String>> = FIG8_NODES
            .iter()
            .map(|&n| {
                let mut row = vec![n.to_string()];
                for bw in bws {
                    let psd = simulate(&model, &SimConfig::system(System::Poseidon, n, bw));
                    let wfbp = simulate(&model, &SimConfig::system(System::WfbpPs, n, bw));
                    row.push(format!("{:.1}", psd.speedup));
                    row.push(format!("{:.1}", wfbp.speedup));
                }
                row
            })
            .collect();
        println!("{}", render_table(&header, &rows));
    }
    println!("Paper shape: with 10GbE, PS-only training of VGG19 reaches only ~8x on");
    println!("16 nodes while Poseidon stays near-linear (HybComm shrinks the FC");
    println!("messages); on GoogLeNet (one thin FC, batch 128) Poseidon reduces to PS");
    println!("and the two curves coincide.");
}
