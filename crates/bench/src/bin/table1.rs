//! Table 1: estimated communication cost of PS, SFB and Adam for
//! synchronising an M×N FC layer, plus the Section 3.2 worked example.
//!
//! Run: `cargo run --release -p poseidon-bench --bin table1`

use poseidon::config::ClusterConfig;
use poseidon::costmodel;
use poseidon::stats::render_table;
use poseidon_bench::banner;

fn fmt_millions(v: f64) -> String {
    format!("{:.2}M", v / 1e6)
}

fn main() {
    banner(
        "Table 1",
        "per-node communication cost (f32 values) for an M x N FC layer",
    );

    // The paper's worked example: M = N = 4096, K = 32, P1 = P2 = 8.
    let (m, n) = (4096usize, 4096usize);
    let cluster = ClusterConfig {
        workers: 8,
        servers: 8,
        batch_per_worker: 32,
        colocated: true,
    };
    let ps = costmodel::ps_cost(m, n, &cluster);
    let sfb = costmodel::sfb_cost(m, n, &cluster);
    let adam = costmodel::adam_cost(m, n, &cluster);

    let header: Vec<String> = ["method", "server", "worker", "server+worker"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows = vec![
        vec![
            "PS".into(),
            fmt_millions(ps.server),
            fmt_millions(ps.worker),
            fmt_millions(ps.server_and_worker),
        ],
        vec!["SFB".into(), "n/a".into(), fmt_millions(sfb), "n/a".into()],
        vec![
            "Adam (max)".into(),
            fmt_millions(adam.server),
            fmt_millions(adam.worker),
            fmt_millions(adam.server_and_worker),
        ],
    ];
    println!("M = N = 4096, K = 32, P1 = P2 = 8 (Section 3.2 worked example)");
    println!("{}", render_table(&header, &rows));
    println!("Paper quotes: PS worker ~34M, PS server ~34M, PS both ~58.7M, SFB ~3.7M.\n");

    // BestScheme crossovers: where HybComm switches for the paper's FC layers.
    banner(
        "Algorithm 1",
        "BestScheme decisions for the evaluation networks' FC layers",
    );
    let header: Vec<String> = ["layer", "M", "N", "K", "P", "scheme"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cases = [
        ("VGG19 fc6", 4096usize, 25088usize, 32usize),
        ("VGG19 fc7", 4096, 4096, 32),
        ("VGG19 fc8", 1000, 4096, 32),
        ("VGG19-22K fc8", 21841, 4096, 32),
        ("GoogLeNet classifier", 1000, 1024, 128),
        ("Inception-V3 fc", 1000, 2048, 32),
    ];
    let mut rows = Vec::new();
    for &(name, m, n, k) in &cases {
        for p in [8usize, 16, 32] {
            let cluster = ClusterConfig::colocated(p, k);
            let scheme = costmodel::best_scheme_fc(m, n, &cluster);
            rows.push(vec![
                name.to_string(),
                m.to_string(),
                n.to_string(),
                k.to_string(),
                p.to_string(),
                scheme.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "Expected: VGG FC layers pick SFB at K=32; GoogLeNet's thin classifier at K=128 reduces to PS."
    );
}
