//! Emits `BENCH_kernels.json` — the compute-kernel performance baseline the
//! repository tracks across PRs:
//!
//! 1. 512³ GEMM, naive jik reference vs the blocked/packed kernel.
//! 2. Conv2d forward+backward over a 32-sample CIFAR-shaped batch at compute
//!    thread counts 1 and 4.
//! 3. A full CIFAR-10-quick training step (forward, loss, backward, SGD) at
//!    thread counts 1 and 4, reported as images/second.
//!
//! Run from the repo root: `cargo run --release -p poseidon-bench --bin
//! kernel_baseline` (writes `BENCH_kernels.json` into the current
//! directory). Timings are min-of-N wall clock; the JSON is hand-rolled so
//! the binary stays dependency-free.

use poseidon_nn::layer::{Layer, TensorShape};
use poseidon_nn::layers::Conv2d;
use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::{parallel, presets};
use poseidon_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut state = seed;
    for v in m.as_mut_slice() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32) / (1u64 << 24) as f32 - 0.5;
    }
    m
}

/// The seed revision's GEMM (ikj loop order with a zero-skip fast path),
/// kept here so the baseline records speedup against the exact kernel this
/// PR replaced, not just the jik oracle.
fn seed_style_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            let brow = b.row(k);
            let orow = &mut out.as_mut_slice()[i * brow.len()..(i + 1) * brow.len()];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Min-of-`reps` wall-clock seconds for `f`.
fn time(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 1. 512^3 GEMM: naive vs blocked.
    let a = lcg_matrix(512, 512, 1);
    let b = lcg_matrix(512, 512, 2);
    let flops = 2.0 * 512f64.powi(3);
    let naive_s = time(3, || {
        std::hint::black_box(a.matmul_naive(&b));
    });
    let seed_s = time(3, || {
        std::hint::black_box(seed_style_matmul(&a, &b));
    });
    let blocked_s = time(5, || {
        std::hint::black_box(a.matmul(&b));
    });

    // 2. Conv2d fwd+bwd, batch 32, CIFAR conv1 shape (3x32x32 -> 32 @ 5x5).
    let mut conv_ms = Vec::new();
    let x = lcg_matrix(32, 3 * 32 * 32, 3);
    for &threads in &[1usize, 4] {
        parallel::set_compute_threads(threads);
        let mut conv = Conv2d::new(
            "conv1",
            TensorShape::new(3, 32, 32),
            32,
            5,
            1,
            2,
            &mut StdRng::seed_from_u64(7),
        );
        let gout = lcg_matrix(32, conv.output_shape().len(), 4);
        let s = time(3, || {
            conv.forward(&x);
            std::hint::black_box(conv.backward(&gout));
        });
        conv_ms.push((threads, s * 1e3));
    }

    // 3. Full CIFAR-10-quick training step, batch 32.
    let mut step_rows = Vec::new();
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let head = SoftmaxCrossEntropy;
    for &threads in &[1usize, 4] {
        parallel::set_compute_threads(threads);
        let mut net = presets::cifar_quick(10, 42);
        let s = time(3, || {
            let logits = net.forward(&x);
            let out = head.evaluate(&logits, &labels);
            net.backward(&out.grad);
            net.apply_own_grads(-0.001);
        });
        step_rows.push((threads, s * 1e3, 32.0 / s));
    }
    parallel::reset_compute_threads();

    let conv_json: Vec<String> = conv_ms
        .iter()
        .map(|(t, ms)| format!("    {{\"threads\": {t}, \"fwd_bwd_ms\": {ms:.2}}}"))
        .collect();
    let step_json: Vec<String> = step_rows
        .iter()
        .map(|(t, ms, ips)| {
            format!("    {{\"threads\": {t}, \"step_ms\": {ms:.2}, \"img_per_s\": {ips:.1}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"host\": {{\"cores\": {cores}}},\n  \"gemm_512\": {{\n    \"naive_ms\": {:.2},\n    \"seed_ikj_ms\": {:.2},\n    \"blocked_ms\": {:.2},\n    \"blocked_gflops\": {:.2},\n    \"speedup_vs_naive\": {:.2},\n    \"speedup_vs_seed\": {:.2}\n  }},\n  \"conv2d_cifar_batch32\": [\n{}\n  ],\n  \"cifar_quick_step_batch32\": [\n{}\n  ]\n}}\n",
        naive_s * 1e3,
        seed_s * 1e3,
        blocked_s * 1e3,
        flops / blocked_s * 1e-9,
        naive_s / blocked_s,
        seed_s / blocked_s,
        conv_json.join(",\n"),
        step_json.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    eprintln!("wrote BENCH_kernels.json");
}
