//! Emits `BENCH_metrics.json` — the metrics plane's overhead budget,
//! tracked across PRs next to `BENCH_telemetry.json`:
//!
//! 1. Cost of one record call per instrument (counter add, gauge set_max,
//!    histogram record) with the plane disabled (one relaxed load and a
//!    branch) and enabled (relaxed RMWs on pre-resolved handles — the
//!    production default, since metrics are always on).
//! 2. A full threaded `train` run, metrics off vs on, interleaved
//!    min-of-reps — the end-to-end overhead that matters. The binary FAILS
//!    (nonzero exit) when the end-to-end overhead exceeds the 2% budget, so
//!    `check.sh` can gate on it.
//!
//! Run from the repo root: `cargo run --release -p poseidon-bench --bin
//! metrics_bench` (writes `BENCH_metrics.json` into the current directory).
//! Timings are min-of-N wall clock; the JSON is hand-rolled so the binary
//! stays dependency-free.

use poseidon::config::{Partition, SchemePolicy};
use poseidon::metrics;
use poseidon::runtime::{train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// End-to-end overhead budget, percent.
const BUDGET_PCT: f64 = 2.0;

/// Nanoseconds per call of `f` over `n` calls.
fn ns_per_call(n: usize, mut f: impl FnMut(usize)) -> f64 {
    let t = Instant::now();
    for i in 0..n {
        f(i);
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

/// Min-of-5 ns/op for the three instruments at the current enable state.
fn record_path_ns() -> (f64, f64, f64) {
    let c = metrics::counter("bench_metrics_counter", &[]);
    let g = metrics::gauge("bench_metrics_gauge", &[]);
    let h = metrics::histogram("bench_metrics_hist", &[]);
    let (mut cn, mut gn, mut hn) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        cn = cn.min(ns_per_call(1_000_000, |i| c.add(i as u64)));
        gn = gn.min(ns_per_call(1_000_000, |i| g.set_max(i as u64)));
        hn = hn.min(ns_per_call(1_000_000, |i| h.record(i as u64)));
    }
    (cn, gn, hn)
}

/// One threaded training run on a compute-heavy-enough model that the
/// per-iteration record calls are measured against real work.
fn train_once() -> f64 {
    let layers = [48usize, 96, 64, 10];
    let data = Dataset::gaussian_clusters(TensorShape::flat(layers[0]), 10, 128, 0.3, 7);
    let cfg = RuntimeConfig {
        policy: SchemePolicy::Hybrid,
        partition: Partition::KvPairs { pair_elems: 128 },
        comm_timeout: Duration::from_secs(60),
        ..RuntimeConfig::new(2, 16, 0.1, 10)
    };
    let t = Instant::now();
    let result = train(&|| presets::mlp(&layers, 42), &data, None, &cfg);
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(result.health.verdicts.len(), 2, "health verdicts present");
    dt
}

fn main() -> ExitCode {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 1. Record-path cost per instrument, enabled vs disabled.
    metrics::set_enabled(true);
    let (c_on, g_on, h_on) = record_path_ns();
    metrics::set_enabled(false);
    let (c_off, g_off, h_off) = record_path_ns();
    metrics::set_enabled(true);

    // 2. End-to-end: interleave off/on reps (min-of-7 each) so thermal and
    // scheduler drift hit both sides equally.
    train_once(); // warm-up
    let (mut off_s, mut on_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        metrics::set_enabled(false);
        off_s = off_s.min(train_once());
        metrics::set_enabled(true);
        on_s = on_s.min(train_once());
    }

    let (off_ms, on_ms) = (off_s * 1e3, on_s * 1e3);
    let overhead_pct = ((on_ms / off_ms - 1.0) * 100.0).max(0.0);
    let pass = overhead_pct <= BUDGET_PCT;
    let json = format!(
        "{{\n  \"host\": {{\"cores\": {cores}}},\n  \"record_call_ns\": {{\n    \"counter_enabled\": {c_on:.2},\n    \"counter_disabled\": {c_off:.2},\n    \"gauge_enabled\": {g_on:.2},\n    \"gauge_disabled\": {g_off:.2},\n    \"histogram_enabled\": {h_on:.2},\n    \"histogram_disabled\": {h_off:.2}\n  }},\n  \"threaded_train_2x10\": {{\n    \"metrics_off_ms\": {off_ms:.2},\n    \"metrics_on_ms\": {on_ms:.2},\n    \"overhead_pct\": {overhead_pct:.2},\n    \"budget_pct\": {BUDGET_PCT:.1},\n    \"pass\": {pass}\n  }}\n}}\n"
    );
    print!("{json}");
    std::fs::write("BENCH_metrics.json", &json).expect("write BENCH_metrics.json");
    eprintln!("wrote BENCH_metrics.json");
    if !pass {
        eprintln!(
            "metrics_bench: FAIL — end-to-end overhead {overhead_pct:.2}% exceeds {BUDGET_PCT}% budget"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
