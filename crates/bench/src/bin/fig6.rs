//! Figure 6: throughput scaling of Poseidon-parallelised **TensorFlow** at
//! 40GbE — Inception-V3, VGG19 and VGG19-22K under TF, TF+WFBP and Poseidon.
//!
//! Run: `cargo run --release -p poseidon-bench --bin fig6`

use poseidon::sim::System;
use poseidon_bench::{banner, print_speedup_panel, FIG5_NODES};
use poseidon_nn::zoo;

fn main() {
    banner(
        "Figure 6",
        "TensorFlow-engine speedups at 40GbE (TF vs TF+WFBP vs Poseidon)",
    );
    let systems = [System::TensorFlow, System::WfbpPs, System::Poseidon];
    for model in [zoo::inception_v3(), zoo::vgg19(), zoo::vgg19_22k()] {
        print_speedup_panel(&model, &systems, &FIG5_NODES, 40.0);
    }
    println!("Paper shape: Poseidon ~31.5x on Inception-V3 at 32 nodes, ~50% above");
    println!("open-source TF (~20x); distributed TF fails to scale on VGG19 and");
    println!("VGG19-22K (coarse whole-tensor sharding creates server hot-spots),");
    println!("while TF+WFBP and Poseidon stay near-linear.");
}
