//! Ring-topology benchmark of the two TCP transport cores.
//!
//! Every endpoint `i` streams frames to `(i+1) % E` while draining its own
//! inbox, for `E` in `--endpoints` and payload sizes in `--payloads`, once
//! over the evented single-poller core ([`TcpTransport`]) and once over the
//! thread-per-peer baseline ([`ThreadedTcpTransport`]). Reported per
//! scenario: aggregate frames/s and bytes/s, plus p50/p99 one-way frame
//! latency (send-enqueue to recv-dequeue, micros — the `iter` header field
//! carries the send timestamp, so no extra wire bytes are involved).
//!
//! Results land in `--out` (default `BENCH_transport.json`, one scenario per
//! line). `--check-against FILE` reads a baseline *before* running and fails
//! the process if any scenario present in both runs lost more than 20% of
//! its baseline frames/s — the regression gate `scripts/check.sh` runs.
//!
//! ```text
//! cargo run --release -p poseidon-bench --bin transport_bench -- \
//!     --endpoints 2,8,32 --payloads 256,65536
//! ```

use poseidon::transport::{
    bind_ephemeral, Message, TcpFabricSpec, TcpTransport, ThreadedTcpTransport, Transport,
};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "transport_bench: ring throughput/latency for both TCP cores
  --endpoints A,B,..  mesh sizes to sweep                     [2,8,32]
  --payloads A,B,..   payload bytes per frame                 [256,65536]
  --frames A,B,..     frames per endpoint, one per payload    [20000,1500]
  --transports LIST   evented,threaded (either or both)       [evented,threaded]
  --repeat N          runs per scenario; best-of-N is kept    [3]
  --out PATH          write results JSON here                 [BENCH_transport.json]
  --check-against P   fail on >20% evented/threaded ratio drop [off]";

#[derive(Clone)]
struct Args {
    endpoints: Vec<usize>,
    payloads: Vec<usize>,
    frames: Vec<usize>,
    transports: Vec<String>,
    out: String,
    check_against: Option<String>,
    repeat: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            endpoints: vec![2, 8, 32],
            payloads: vec![256, 65536],
            frames: vec![20000, 1500],
            transports: vec!["evented".into(), "threaded".into()],
            out: "BENCH_transport.json".into(),
            check_against: None,
            repeat: 3,
        }
    }
}

fn parse_list(val: &str, flag: &str) -> Result<Vec<usize>, String> {
    val.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("bad value for {flag}: {e}"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let val = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        match flag.as_str() {
            "--endpoints" => args.endpoints = parse_list(&val, &flag)?,
            "--payloads" => args.payloads = parse_list(&val, &flag)?,
            "--frames" => args.frames = parse_list(&val, &flag)?,
            "--repeat" => {
                args.repeat = val
                    .parse()
                    .map_err(|_| format!("--repeat needs a positive integer, got {val}"))?;
                if args.repeat == 0 {
                    return Err("--repeat needs a positive integer".into());
                }
            }
            "--transports" => {
                args.transports = val.split(',').map(|s| s.trim().to_string()).collect();
                for t in &args.transports {
                    if t != "evented" && t != "threaded" {
                        return Err(format!("unknown transport {t:?}\n{USAGE}"));
                    }
                }
            }
            "--out" => args.out = val,
            "--check-against" => args.check_against = Some(val),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.frames.len() != args.payloads.len() {
        return Err("--frames needs one entry per --payloads entry".into());
    }
    if args.endpoints.iter().any(|&e| e < 2) {
        return Err("--endpoints entries must be >= 2 (a ring needs a peer)".into());
    }
    Ok(args)
}

/// One measured scenario. The key triple identifies it across runs.
struct Record {
    transport: String,
    endpoints: usize,
    payload_bytes: usize,
    frames_per_endpoint: usize,
    frames_per_s: f64,
    bytes_per_s: f64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs one ring scenario over any transport and returns the aggregate
/// rates plus the latency distribution.
fn run_ring<T, F>(endpoints: usize, payload_bytes: usize, frames: usize, connect: F) -> Record
where
    T: Transport + Send,
    F: Fn(&TcpFabricSpec, usize, std::net::TcpListener) -> T + Sync,
{
    let (listeners, addrs) = bind_ephemeral(endpoints).expect("bind mesh");
    let spec = TcpFabricSpec {
        addrs,
        node_of_endpoint: (0..endpoints).collect(),
        connect_timeout: Duration::from_secs(60),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(100),
        reconnect_timeout: Duration::from_secs(10),
    };
    // Frame payload: a shared refcounted buffer, so the send loop measures
    // the transport, not the allocator. `encode_f32s` emits 4 + 4n bytes.
    let elems = payload_bytes.saturating_sub(4) / 4;
    let payload = poseidon::wire::encode_f32s(&vec![1.0f32; elems]);
    let wire_frame_bytes = 32 + payload.len() as u64;

    let barrier = Barrier::new(endpoints);
    let epoch = Instant::now();
    let done = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (me, listener) in listeners.into_iter().enumerate() {
            let (spec, connect, barrier, done, payload) =
                (&spec, &connect, &barrier, &done, payload.clone());
            s.spawn(move || {
                let mut ep = connect(spec, me, listener);
                let next = (me + 1) % endpoints;
                barrier.wait();
                let start = epoch.elapsed();
                let mut latencies = Vec::with_capacity(frames);
                let mut got = 0usize;
                let note = |env: poseidon::transport::Envelope, lat: &mut Vec<u64>| {
                    let now = epoch.elapsed().as_micros() as u64;
                    lat.push(now.saturating_sub(env.msg.iter()));
                };
                for k in 0..frames {
                    let msg = Message::GradChunk {
                        iter: epoch.elapsed().as_micros() as u64,
                        layer: 0,
                        chunk: k as u32,
                        codec: poseidon::wire::Codec::Identity,
                        data: payload.clone(),
                    };
                    ep.send(next, msg).expect("ring send");
                    // Drain eagerly so inboxes (and pooled buffers) stay
                    // bounded no matter how far ahead the sender runs.
                    while let Some(env) = ep.try_recv().expect("ring try_recv") {
                        note(env, &mut latencies);
                        got += 1;
                    }
                }
                while got < frames {
                    let env = ep
                        .recv_timeout(Duration::from_secs(60))
                        .expect("ring recv starved");
                    note(env, &mut latencies);
                    got += 1;
                }
                let elapsed = epoch.elapsed() - start;
                ep.shutdown().expect("shutdown");
                done.lock().unwrap().push((elapsed, latencies));
            });
        }
    });

    let finished = done.into_inner().unwrap();
    let slowest = finished
        .iter()
        .map(|(e, _)| *e)
        .max()
        .expect("at least one endpoint");
    let mut latencies: Vec<u64> = finished.into_iter().flat_map(|(_, l)| l).collect();
    latencies.sort_unstable();
    let total_frames = (endpoints * frames) as f64;
    let secs = slowest.as_secs_f64().max(1e-9);
    Record {
        transport: String::new(),
        endpoints,
        payload_bytes,
        frames_per_endpoint: frames,
        frames_per_s: total_frames / secs,
        bytes_per_s: total_frames * wire_frame_bytes as f64 / secs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn render(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"bench\": \"transport_ring\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"endpoints\": {}, \"payload_bytes\": {}, \
             \"frames_per_endpoint\": {}, \"frames_per_s\": {:.1}, \"bytes_per_s\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}}}{sep}\n",
            r.transport,
            r.endpoints,
            r.payload_bytes,
            r.frames_per_endpoint,
            r.frames_per_s,
            r.bytes_per_s,
            r.p50_us,
            r.p99_us,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"key": value` out of one scenario line. Good enough for the JSON
/// this binary writes — the baseline parser has no other job.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// `(transport, endpoints, payload) -> frames_per_s` from a results file.
fn parse_baseline(text: &str) -> BTreeMap<(String, usize, usize), f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let (Some(t), Some(e), Some(p), Some(f)) = (
            field(line, "transport"),
            field(line, "endpoints"),
            field(line, "payload_bytes"),
            field(line, "frames_per_s"),
        ) else {
            continue;
        };
        if let (Ok(e), Ok(p), Ok(f)) = (e.parse(), p.parse(), f.parse()) {
            map.insert((t.to_string(), e, p), f);
        }
    }
    map
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Read the baseline before `--out` (possibly the same file) is rewritten.
    let baseline = args.check_against.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        parse_baseline(&text)
    });

    let mut records = Vec::new();
    // Transports innermost: each evented/threaded pair runs back-to-back so
    // the comparison sees like machine conditions (page cache, allocator
    // arenas, scheduler state drift across a long sweep).
    for &endpoints in &args.endpoints {
        for (&payload, &frames) in args.payloads.iter().zip(&args.frames) {
            for kind in &args.transports {
                // Best-of-N: on a contended single-core box one run can land
                // in a bad scheduling mode; the max measures what the
                // transport can actually sustain, and is a far stabler
                // statistic across invocations than any single sample.
                let mut rec: Option<Record> = None;
                for _ in 0..args.repeat {
                    let r = match kind.as_str() {
                        "evented" => run_ring(endpoints, payload, frames, |spec, me, l| {
                            TcpTransport::connect_with_listener(spec, me, l, None).expect("connect")
                        }),
                        _ => run_ring(endpoints, payload, frames, |spec, me, l| {
                            ThreadedTcpTransport::connect_with_listener(spec, me, l, None)
                                .expect("connect")
                        }),
                    };
                    if rec.as_ref().is_none_or(|b| r.frames_per_s > b.frames_per_s) {
                        rec = Some(r);
                    }
                }
                let mut rec = rec.expect("repeat >= 1");
                rec.transport = kind.clone();
                println!(
                    "{:>8} E={:<2} payload={:<6} {:>10.0} frames/s {:>12.0} B/s p50={}us p99={}us",
                    rec.transport,
                    rec.endpoints,
                    rec.payload_bytes,
                    rec.frames_per_s,
                    rec.bytes_per_s,
                    rec.p50_us,
                    rec.p99_us
                );
                records.push(rec);
            }
        }
    }

    let json = render(&records);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("results written to {}", args.out);

    if let Some(baseline) = baseline {
        // Absolute frames/s on shared-tenancy hardware drifts by tens of
        // percent between invocations, for every transport at once. The
        // evented/threaded ratio cancels that machine-wide factor — the two
        // run back-to-back under like conditions — so the gate compares
        // ratios: current evented-vs-threaded against the committed one.
        let mut regressed = false;
        let mut checked = 0usize;
        let current: std::collections::HashMap<_, _> = records
            .iter()
            .map(|r| {
                (
                    (r.transport.clone(), r.endpoints, r.payload_bytes),
                    r.frames_per_s,
                )
            })
            .collect();
        for r in &records {
            if r.transport != "evented" {
                continue;
            }
            let th_key = ("threaded".to_string(), r.endpoints, r.payload_bytes);
            let ev_key = ("evented".to_string(), r.endpoints, r.payload_bytes);
            let (Some(&th_now), Some(&ev_base), Some(&th_base)) = (
                current.get(&th_key),
                baseline.get(&ev_key),
                baseline.get(&th_key),
            ) else {
                continue;
            };
            let now = r.frames_per_s / th_now.max(1e-9);
            let base = ev_base / th_base.max(1e-9);
            let rel = now / base.max(1e-9);
            checked += 1;
            let verdict = if rel < 0.8 {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "vs baseline: E={} payload={}: evented/threaded {:.2}x -> {:.2}x ({:.2} of baseline) {}",
                r.endpoints, r.payload_bytes, base, now, rel, verdict
            );
        }
        if checked == 0 {
            eprintln!("transport_bench: baseline shares no comparable scenarios; nothing gated");
        }
        if regressed {
            eprintln!("transport_bench: evented/threaded ratio regressed >20% vs baseline");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
