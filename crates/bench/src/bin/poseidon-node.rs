//! Multi-process distributed SGD over the TCP transport.
//!
//! Without `--endpoint` this binary is the launcher: it spawns `2P` copies of
//! itself (`P` workers + `P` colocated KV shards) as separate OS processes on
//! a localhost TCP mesh, waits for all of them, merges their per-process
//! traffic ledgers, and asserts every worker converged to the bitwise-same
//! replica. With `--endpoint N` it runs exactly one participant via
//! [`poseidon::runtime::run_endpoint`].
//!
//! There is no control plane beyond the command line: every process derives
//! the same deterministic run plan (model init, data partition, scheme
//! assignment, chunk tables) from the same flags, exactly as the threaded
//! `train` does — so a run here is comparable byte-for-byte with an
//! in-process run of the same configuration.
//!
//! ```text
//! cargo run --release -p poseidon-bench --bin poseidon-node -- \
//!     --workers 3 --iters 5 --policy hybrid --base-port 46000
//! ```

use poseidon::checkpoint::{self, TrainingCheckpoint};
use poseidon::config::{Codec, CodecPolicy, Partition, SchemePolicy};
use poseidon::faults::{FaultPlan, FaultyTransport};
use poseidon::health::{self, HealthConfig};
use poseidon::membership::{MembershipPlan, MembershipSchedule};
use poseidon::metrics::expose::MetricsServer;
use poseidon::runtime::{
    flatten_model_params, install_model_params, run_endpoint, NodeOutcome, RuntimeConfig,
};
use poseidon::serving::{InferFn, ServingServer, Snapshot, SnapshotCell};
use poseidon::telemetry::{self, chrome, report, TelemetryConfig};
use poseidon::transport::{
    ReliabilityConfig, ReliableTransport, TcpFabricSpec, TcpTransport, ThreadedTcpTransport,
    TrafficSnapshot, Transport,
};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::Network;
use poseidon_tensor::Matrix;
use std::process::{Command, ExitCode, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which TCP core carries the mesh: the evented single-poller transport or
/// the thread-per-peer baseline it replaced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TransportKind {
    Evented,
    Threaded,
}

impl TransportKind {
    fn as_flag(self) -> &'static str {
        match self {
            TransportKind::Evented => "evented",
            TransportKind::Threaded => "threaded",
        }
    }
}

#[derive(Clone)]
struct Args {
    workers: usize,
    iters: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    policy: SchemePolicy,
    codec: CodecPolicy,
    pair_elems: usize,
    base_port: u16,
    seed: u64,
    layers: Vec<usize>,
    samples: usize,
    timeout_s: u64,
    trace_out: Option<String>,
    fault_plan: Option<FaultPlan>,
    reliable: bool,
    transport: TransportKind,
    metrics_addr: Option<String>,
    straggler: Option<(usize, u64)>,
    straggler_factor: f64,
    membership: MembershipPlan,
    serve_addr: Option<String>,
    ckpt_dir: Option<String>,
    start_iter: usize,
    export_state: bool,
    restore: bool,
    endpoint: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            workers: 2,
            iters: 4,
            batch: 8,
            lr: 0.2,
            momentum: 0.0,
            policy: SchemePolicy::Hybrid,
            codec: CodecPolicy::Identity,
            pair_elems: 37,
            base_port: 45000,
            seed: 5,
            layers: vec![12, 16, 8, 4],
            samples: 96,
            timeout_s: 60,
            trace_out: None,
            fault_plan: None,
            reliable: false,
            transport: TransportKind::Evented,
            metrics_addr: None,
            straggler: None,
            straggler_factor: HealthConfig::default().straggler_factor,
            membership: MembershipPlan::empty(),
            serve_addr: None,
            ckpt_dir: None,
            start_iter: 0,
            export_state: false,
            restore: false,
            endpoint: None,
        }
    }
}

const USAGE: &str = "poseidon-node: multi-process distributed SGD over TCP
  --workers N       worker count P (2P processes total)     [2]
  --iters N         BSP iterations                          [4]
  --batch N         per-worker minibatch                    [8]
  --lr F            learning rate                           [0.2]
  --momentum F      classical momentum                      [0.0]
  --policy S        ps | hybrid | sfb | adam | onebit | ring | tree [hybrid]
  --codec S         gradient codec on PS/collective layers:
                    identity | onebit | f16 | bf16 | topk[:permille] | cost
                    (cost = let the cost model pick per layer)  [identity]
  --pair-elems N    KV-pair size in f32 elements            [37]
  --base-port N     first TCP port (2P consecutive used)    [45000]
  --seed N          model/data seed                         [5]
  --layers A,B,..   MLP layer sizes, >= 2 entries           [12,16,8,4]
  --samples N       synthetic dataset size                  [96]
  --timeout-s N     per-endpoint comm timeout, seconds      [60]
  --trace-out PATH  record telemetry; write a merged Chrome trace to PATH
                    (children write PATH.eN.json; open in chrome://tracing)
  --fault-plan P    scripted chaos, e.g. 'drop:0>2@n3;sever:1>3@n5'
                    (action:from>to@trigger; implies the reliability layer)
  --reliable on     wrap every endpoint in the reliability layer even with
                    no faults scripted (sequencing, acks, retransmits)
  --transport S     evented (single-poller core) | threaded      [evented]
  --metrics-addr A  serve Prometheus text on HOST:PORT; endpoint N binds
                    HOST:PORT+N, so every process of the mesh is scrapable
                    while it trains (curl any of them)
  --straggler W:MS  delay worker W by MS milliseconds per iteration (the
                    health plane should then name W in its verdict)
  --straggler-factor F  flag workers whose busy-time p50 exceeds the mesh
                    median by more than F                        [2]
  --membership-plan P  scripted shard elasticity, e.g. 'leave:1@2;join:1@4'
                    (action:shard@iter; 'restart:S@N' marks a checkpoint/
                    resume generation boundary the launcher drives; join/
                    leave events need a PS-only configuration)
  --serve-addr A    live inference front door: worker endpoint N binds
                    HOST:PORT+N and answers PSRV requests against the
                    latest published snapshot while training continues
  --ckpt-dir PATH   directory for per-endpoint checkpoint slices
                    (e{N}.ckpt); the launcher picks a temp dir when the
                    membership plan has restarts and none is given
  --start-iter N    first iteration of this generation              [0]
  --export-state on write checkpoint slices on exit (needs --ckpt-dir)
  --restore on      resume from --ckpt-dir slices at --start-iter
  --endpoint N      run one endpoint (internal; launcher spawns these)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let val = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag.as_str() {
            "--workers" => args.workers = val.parse().map_err(|e| bad(&e))?,
            "--iters" => args.iters = val.parse().map_err(|e| bad(&e))?,
            "--batch" => args.batch = val.parse().map_err(|e| bad(&e))?,
            "--lr" => args.lr = val.parse().map_err(|e| bad(&e))?,
            "--momentum" => args.momentum = val.parse().map_err(|e| bad(&e))?,
            "--policy" => {
                args.policy = match val.as_str() {
                    "ps" => SchemePolicy::AlwaysPs,
                    "hybrid" => SchemePolicy::Hybrid,
                    "sfb" => SchemePolicy::AlwaysSfbForFc,
                    "adam" => SchemePolicy::AdamSf,
                    "onebit" => SchemePolicy::OneBit,
                    "ring" => SchemePolicy::AlwaysRing,
                    "tree" => SchemePolicy::AlwaysTree,
                    other => return Err(format!("unknown policy {other:?}\n{USAGE}")),
                }
            }
            "--codec" => {
                args.codec = match val.as_str() {
                    "cost" => CodecPolicy::CostAware,
                    other => match other.parse::<Codec>().map_err(|e| bad(&e))? {
                        Codec::Identity => CodecPolicy::Identity,
                        c => CodecPolicy::Always(c),
                    },
                }
            }
            "--pair-elems" => args.pair_elems = val.parse().map_err(|e| bad(&e))?,
            "--base-port" => args.base_port = val.parse().map_err(|e| bad(&e))?,
            "--seed" => args.seed = val.parse().map_err(|e| bad(&e))?,
            "--layers" => {
                args.layers = val
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| bad(&e)))
                    .collect::<Result<_, _>>()?;
                if args.layers.len() < 2 {
                    return Err("--layers needs at least input,output".into());
                }
            }
            "--samples" => args.samples = val.parse().map_err(|e| bad(&e))?,
            "--timeout-s" => args.timeout_s = val.parse().map_err(|e| bad(&e))?,
            "--trace-out" => args.trace_out = Some(val),
            "--fault-plan" => args.fault_plan = Some(FaultPlan::parse(&val).map_err(|e| bad(&e))?),
            "--reliable" => {
                args.reliable = match val.as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("--reliable takes on|off, got {other:?}")),
                }
            }
            "--transport" => {
                args.transport = match val.as_str() {
                    "evented" => TransportKind::Evented,
                    "threaded" => TransportKind::Threaded,
                    other => {
                        return Err(format!("--transport takes evented|threaded, got {other:?}"))
                    }
                }
            }
            "--metrics-addr" => args.metrics_addr = Some(val),
            "--straggler" => {
                let (w, ms) = val
                    .split_once(':')
                    .ok_or_else(|| format!("--straggler takes W:MS, got {val:?}"))?;
                args.straggler = Some((
                    w.parse().map_err(|e| bad(&e))?,
                    ms.parse().map_err(|e| bad(&e))?,
                ));
            }
            "--straggler-factor" => args.straggler_factor = val.parse().map_err(|e| bad(&e))?,
            "--membership-plan" => {
                args.membership = MembershipPlan::parse(&val).map_err(|e| bad(&e))?
            }
            "--serve-addr" => args.serve_addr = Some(val),
            "--ckpt-dir" => args.ckpt_dir = Some(val),
            "--start-iter" => args.start_iter = val.parse().map_err(|e| bad(&e))?,
            "--export-state" => args.export_state = on_off(&flag, &val)?,
            "--restore" => args.restore = on_off(&flag, &val)?,
            "--endpoint" => args.endpoint = Some(val.parse().map_err(|e| bad(&e))?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be positive".into());
    }
    // Fail fast on an illegal plan — every process must resolve it anyway.
    MembershipSchedule::resolve(&args.membership, args.workers)
        .map_err(|e| format!("--membership-plan: {e}"))?;
    if (args.export_state || args.restore) && args.ckpt_dir.is_none() && args.endpoint.is_some() {
        return Err("--export-state/--restore need --ckpt-dir".into());
    }
    Ok(args)
}

fn on_off(flag: &str, val: &str) -> Result<bool, String> {
    match val {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        other => Err(format!("{flag} takes on|off, got {other:?}")),
    }
}

fn runtime_config(a: &Args) -> RuntimeConfig {
    RuntimeConfig {
        policy: a.policy,
        codec: a.codec,
        momentum: a.momentum,
        partition: Partition::KvPairs {
            pair_elems: a.pair_elems,
        },
        comm_timeout: Duration::from_secs(a.timeout_s),
        telemetry: if a.trace_out.is_some() {
            TelemetryConfig::enabled()
        } else {
            TelemetryConfig::default()
        },
        straggler_delay_ms: a.straggler,
        health: HealthConfig {
            straggler_factor: a.straggler_factor,
        },
        membership: a.membership.clone(),
        start_iter: a.start_iter,
        export_state: a.export_state,
        ..RuntimeConfig::new(a.workers, a.batch, a.lr, a.iters)
    }
}

/// The scrape address for endpoint `me` under `--metrics-addr HOST:PORT`:
/// `HOST:PORT+me`, one port per process of the mesh.
fn metrics_addr_for(base: &str, me: usize) -> Result<String, String> {
    let (host, port) = base
        .rsplit_once(':')
        .ok_or_else(|| format!("--metrics-addr takes HOST:PORT, got {base:?}"))?;
    let port: u16 = port
        .parse()
        .map_err(|e| format!("bad port in --metrics-addr {base:?}: {e}"))?;
    let port = port
        .checked_add(me as u16)
        .ok_or_else(|| format!("--metrics-addr {base:?}: port overflow at endpoint {me}"))?;
    Ok(format!("{host}:{port}"))
}

/// The per-child trace part file for endpoint `me`.
fn trace_part_path(base: &str, me: usize) -> String {
    format!("{base}.e{me}.json")
}

/// The checkpoint slice file for endpoint `me`: each process persists (and
/// restores) only its own state; the *set* of slices is the full training
/// checkpoint.
fn ckpt_path(dir: &str, me: usize) -> String {
    format!("{dir}/e{me}.ckpt")
}

fn dataset(a: &Args) -> Dataset {
    Dataset::gaussian_clusters(
        TensorShape::flat(a.layers[0]),
        *a.layers.last().unwrap(),
        a.samples,
        0.3,
        a.seed + 1,
    )
}

fn f32s_to_hex(vals: &[f32]) -> String {
    let mut s = String::with_capacity(vals.len() * 8);
    for v in vals {
        for b in v.to_le_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
    }
    s
}

fn csv<T: std::fmt::Display>(vals: &[T]) -> String {
    vals.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// One endpoint's role in the mesh: joins over the selected TCP core, trains
/// (or serves), prints its results as `key=value` lines for the launcher to
/// scrape.
fn run_one(a: &Args, me: usize) -> ExitCode {
    let spec = TcpFabricSpec::colocated_loopback(a.workers, a.base_port);
    assert!(me < 2 * a.workers, "endpoint {me} out of range");
    // Bind the scrape endpoint before joining the mesh so the process is
    // observable even while it blocks in connect. The guard keeps the
    // listener thread alive for the whole run.
    let _metrics = match a.metrics_addr.as_deref() {
        Some(base) => {
            let addr = match metrics_addr_for(base, me) {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("endpoint {me}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match MetricsServer::serve(&addr) {
                Ok(srv) => {
                    println!("metrics_addr={}", srv.addr());
                    Some(srv)
                }
                Err(e) => {
                    eprintln!("endpoint {me}: metrics bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    match a.transport {
        TransportKind::Evented => match TcpTransport::connect(&spec, me) {
            Ok(ep) => run_role(a, me, &spec, ep),
            Err(e) => {
                eprintln!("endpoint {me}: mesh connect failed: {e}");
                ExitCode::FAILURE
            }
        },
        TransportKind::Threaded => match ThreadedTcpTransport::connect(&spec, me) {
            Ok(ep) => run_role(a, me, &spec, ep),
            Err(e) => {
                eprintln!("endpoint {me}: mesh connect failed: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

fn run_role<T: Transport + Send + 'static>(
    a: &Args,
    me: usize,
    spec: &TcpFabricSpec,
    endpoint: T,
) -> ExitCode {
    let traffic = std::sync::Arc::clone(endpoint.traffic());
    let mut cfg = runtime_config(a);
    let data = dataset(a);
    let layers = a.layers.clone();
    let seed = a.seed;
    let factory = move || presets::mlp(&layers, seed);

    // Resume: read only this endpoint's slice and wrap it as a one-slice
    // training checkpoint — `run_endpoint` picks its own slice back out.
    if a.restore {
        let dir = a
            .ckpt_dir
            .as_deref()
            .expect("parse_args enforced --ckpt-dir");
        let path = ckpt_path(dir, me);
        let blob = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("endpoint {me}: reading checkpoint {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let resume = if me < a.workers {
            checkpoint::decode_worker(&blob).map(|w| TrainingCheckpoint {
                next_iter: a.start_iter as u64,
                workers: vec![w],
                shards: Vec::new(),
            })
        } else {
            checkpoint::decode_shard(&blob).map(|s| TrainingCheckpoint {
                next_iter: a.start_iter as u64,
                workers: Vec::new(),
                shards: vec![s],
            })
        };
        match resume {
            Some(ck) => cfg.resume = Some(ck),
            None => {
                eprintln!("endpoint {me}: checkpoint {path} is corrupt or mis-typed");
                return ExitCode::FAILURE;
            }
        }
    }

    // Serving front door: worker endpoints publish per-iteration snapshots
    // into a cell and answer inference against them on PORT+me (the metrics
    // scrape port scheme). The guard keeps the listener alive for the run.
    let mut _serving = None;
    if me < a.workers {
        if let Some(base) = a.serve_addr.as_deref() {
            let addr = match metrics_addr_for(base, me) {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("endpoint {me}: {e}"); // reuses HOST:PORT+me parsing
                    return ExitCode::FAILURE;
                }
            };
            let cell = SnapshotCell::new();
            cfg.serve_snapshots = Some(Arc::clone(&cell));
            let infer_layers = a.layers.clone();
            // Rebuilding a replica per request would dominate serving cost;
            // cache the last materialized parameter version by iteration.
            let cache: Mutex<Option<(u64, Network)>> = Mutex::new(None);
            let infer: Arc<InferFn> = Arc::new(move |snap: &Snapshot, n, d, inputs: &[f32]| {
                if d != infer_layers[0] {
                    return None;
                }
                let mut cached = cache.lock().expect("infer cache");
                if cached.as_ref().is_none_or(|(it, _)| *it != snap.iter) {
                    let mut net = presets::mlp(&infer_layers, seed);
                    install_model_params(&mut net, &snap.params);
                    *cached = Some((snap.iter, net));
                }
                let (_, net) = cached.as_mut().expect("just installed");
                let out = net.forward(&Matrix::from_vec(n, d, inputs.to_vec()));
                Some(out.as_slice().to_vec())
            });
            match ServingServer::serve(&addr, cell, infer) {
                Ok(srv) => {
                    println!("serve_addr={}", srv.addr());
                    _serving = Some(srv);
                }
                Err(e) => {
                    eprintln!("endpoint {me}: serving bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Chaos plane: wrap the socket endpoint as Reliable(Faulty(tcp)), keep
    // Arc handles to the fired-fault log and recovery stats so they can be
    // reported after `run_endpoint` consumes the stack.
    let mut chaos = None;
    let outcome = if a.fault_plan.is_some() || a.reliable {
        let plan = a.fault_plan.clone().unwrap_or_default();
        let faulty = FaultyTransport::new(endpoint, &plan);
        let reliable = ReliableTransport::new(faulty, ReliabilityConfig::default());
        chaos = Some((reliable.inner().log(), reliable.stats()));
        run_endpoint(&factory, &data, None, &cfg, reliable)
    } else {
        run_endpoint(&factory, &data, None, &cfg, endpoint)
    };

    println!("endpoint={me}");
    println!("node={}", spec.node_of_endpoint[me]);
    let snap = traffic.snapshot();
    println!("tx={}", csv(&snap.tx));
    println!("rx={}", csv(&snap.rx));
    if let Some((log, stats)) = &chaos {
        use std::sync::atomic::Ordering::Relaxed;
        println!("faults_fired={}", log.lock().expect("fault log").len());
        println!("retransmits={}", stats.retransmits.load(Relaxed));
        println!("dups_dropped={}", stats.dups_dropped.load(Relaxed));
        println!("nacks_sent={}", stats.nacks_sent.load(Relaxed));
        println!("acks_sent={}", stats.acks_sent.load(Relaxed));
        println!("recovery_actions={}", stats.recovery_actions());
    }
    if let Some(base) = &a.trace_out {
        // run_endpoint's shutdown joined the reader threads, so every
        // recording thread of this process has flushed by now.
        let trace = telemetry::drain();
        let path = trace_part_path(base, me);
        if me == 0 {
            // One child demonstrates the plain-text summary (scrape-safe:
            // report lines carry no `key=value` shape).
            print!(
                "{}",
                report::summarize(std::slice::from_ref(&trace)).render()
            );
        }
        if let Err(e) = std::fs::write(&path, chrome::to_chrome_json(&[trace])) {
            eprintln!("endpoint {me}: writing trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace_file={path}");
    }
    let ckpt_blob = match outcome {
        NodeOutcome::Worker {
            losses,
            net,
            busy_p50_ns,
            checkpoint,
            ..
        } => {
            println!("role=worker");
            println!("losses={}", csv(&losses));
            println!("busy_p50_ns={busy_p50_ns}");
            println!("params={}", f32s_to_hex(&flatten_model_params(&net)));
            checkpoint.map(|ck| checkpoint::encode_worker(&ck))
        }
        NodeOutcome::Server { checkpoint } => {
            println!("role=server");
            checkpoint.map(|ck| checkpoint::encode_shard(&ck))
        }
    };
    if let Some(blob) = ckpt_blob {
        let dir = a
            .ckpt_dir
            .as_deref()
            .expect("parse_args enforced --ckpt-dir");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("endpoint {me}: creating {dir}: {e}");
            return ExitCode::FAILURE;
        }
        let path = ckpt_path(dir, me);
        if let Err(e) = std::fs::write(&path, &blob) {
            eprintln!("endpoint {me}: writing checkpoint {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("ckpt_file={path}");
    }
    ExitCode::SUCCESS
}

/// Scraped output of one child process.
struct ChildReport {
    endpoint: usize,
    role: String,
    losses: Vec<f32>,
    params: Option<String>,
    traffic: TrafficSnapshot,
    faults_fired: u64,
    recovery_actions: u64,
    busy_p50_ns: Option<u64>,
}

fn parse_report(endpoint: usize, stdout: &str) -> Result<ChildReport, String> {
    let mut report = ChildReport {
        endpoint,
        role: String::new(),
        losses: Vec::new(),
        params: None,
        traffic: TrafficSnapshot::zeros(0),
        faults_fired: 0,
        recovery_actions: 0,
        busy_p50_ns: None,
    };
    let parse_u64s = |v: &str| -> Result<Vec<u64>, String> {
        v.split(',')
            .map(|s| s.parse().map_err(|e| format!("endpoint {endpoint}: {e}")))
            .collect()
    };
    for line in stdout.lines() {
        let Some((key, val)) = line.split_once('=') else {
            continue;
        };
        match key {
            "endpoint" => {
                let reported: usize = val.parse().map_err(|e| format!("{e}"))?;
                if reported != endpoint {
                    return Err(format!("child {endpoint} reported endpoint {reported}"));
                }
            }
            "role" => report.role = val.to_string(),
            "losses" => {
                report.losses = val
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("endpoint {endpoint}: {e}")))
                    .collect::<Result<_, String>>()?;
            }
            "params" => report.params = Some(val.to_string()),
            "tx" => report.traffic.tx = parse_u64s(val)?,
            "rx" => report.traffic.rx = parse_u64s(val)?,
            "faults_fired" => {
                report.faults_fired = val
                    .parse()
                    .map_err(|e| format!("endpoint {endpoint}: {e}"))?
            }
            "recovery_actions" => {
                report.recovery_actions = val
                    .parse()
                    .map_err(|e| format!("endpoint {endpoint}: {e}"))?
            }
            "busy_p50_ns" => {
                report.busy_p50_ns = Some(
                    val.parse()
                        .map_err(|e| format!("endpoint {endpoint}: {e}"))?,
                )
            }
            _ => {}
        }
    }
    if report.role.is_empty() {
        return Err(format!(
            "endpoint {endpoint} produced no report — it likely died; output:\n{stdout}"
        ));
    }
    Ok(report)
}

/// One generation's merged results (between process-restart boundaries).
struct Generation {
    reports: Vec<ChildReport>,
    traffic: TrafficSnapshot,
}

/// Spawns all `2P` endpoints of one generation first (each blocks in mesh
/// connect until every peer is up, so spawn-then-wait is mandatory), then
/// collects, merges ledgers and asserts the workers' replicas are bitwise
/// identical.
#[allow(clippy::too_many_arguments)]
fn run_generation(
    a: &Args,
    start_iter: usize,
    iters: usize,
    export: bool,
    restore: bool,
    ckpt_dir: Option<&str>,
    trace: bool,
) -> Result<Generation, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let n = 2 * a.workers;
    let mut children = Vec::with_capacity(n);
    for me in 0..n {
        let child = Command::new(&exe)
            .args([
                "--workers".into(),
                a.workers.to_string(),
                "--iters".into(),
                iters.to_string(),
                "--start-iter".into(),
                start_iter.to_string(),
                "--batch".into(),
                a.batch.to_string(),
                "--lr".into(),
                a.lr.to_string(),
                "--momentum".into(),
                a.momentum.to_string(),
                "--policy".into(),
                match a.policy {
                    SchemePolicy::AlwaysPs => "ps".to_string(),
                    SchemePolicy::Hybrid => "hybrid".to_string(),
                    SchemePolicy::AlwaysSfbForFc => "sfb".to_string(),
                    SchemePolicy::AdamSf => "adam".to_string(),
                    SchemePolicy::OneBit => "onebit".to_string(),
                    SchemePolicy::AlwaysRing => "ring".to_string(),
                    SchemePolicy::AlwaysTree => "tree".to_string(),
                    SchemePolicy::TopoAware(_) => {
                        unreachable!("TopoAware has no CLI spelling; pick ring/tree/hybrid")
                    }
                },
                "--codec".into(),
                match a.codec {
                    CodecPolicy::Identity => "identity".to_string(),
                    CodecPolicy::Always(c) => c.to_string(),
                    CodecPolicy::CostAware => "cost".to_string(),
                },
                "--pair-elems".into(),
                a.pair_elems.to_string(),
                "--base-port".into(),
                a.base_port.to_string(),
                "--seed".into(),
                a.seed.to_string(),
                "--layers".into(),
                csv(&a.layers),
                "--samples".into(),
                a.samples.to_string(),
                "--timeout-s".into(),
                a.timeout_s.to_string(),
                "--transport".into(),
                a.transport.as_flag().into(),
                "--straggler-factor".into(),
                a.straggler_factor.to_string(),
                "--endpoint".into(),
                me.to_string(),
            ])
            .args(
                a.metrics_addr
                    .iter()
                    .flat_map(|m| ["--metrics-addr".to_string(), m.clone()]),
            )
            .args(
                a.straggler
                    .iter()
                    .flat_map(|(w, ms)| ["--straggler".to_string(), format!("{w}:{ms}")]),
            )
            .args(if trace {
                a.trace_out
                    .iter()
                    .flat_map(|p| ["--trace-out".to_string(), p.clone()])
                    .collect()
            } else {
                Vec::new()
            })
            .args(
                a.fault_plan
                    .iter()
                    .flat_map(|p| ["--fault-plan".to_string(), p.to_string()]),
            )
            .args(if a.reliable {
                vec!["--reliable".to_string(), "on".to_string()]
            } else {
                Vec::new()
            })
            .args(if a.membership.events.is_empty() {
                Vec::new()
            } else {
                vec!["--membership-plan".to_string(), a.membership.to_string()]
            })
            .args(
                a.serve_addr
                    .iter()
                    .flat_map(|s| ["--serve-addr".to_string(), s.clone()]),
            )
            .args(
                ckpt_dir
                    .iter()
                    .flat_map(|d| ["--ckpt-dir".to_string(), d.to_string()]),
            )
            .args(if export {
                vec!["--export-state".to_string(), "on".to_string()]
            } else {
                Vec::new()
            })
            .args(if restore {
                vec!["--restore".to_string(), "on".to_string()]
            } else {
                Vec::new()
            })
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn endpoint {me}: {e}"))?;
        children.push(child);
    }

    let mut reports = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (me, child) in children.into_iter().enumerate() {
        let out = child
            .wait_with_output()
            .map_err(|e| format!("wait endpoint {me}: {e}"))?;
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        for line in stdout.lines() {
            println!("e{me}. {line}");
        }
        if !out.status.success() {
            failures.push(format!("endpoint {me} exited with {}", out.status));
            continue;
        }
        match parse_report(me, &stdout) {
            Ok(r) => reports.push(r),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }

    // Merge the per-process ledgers. Each process counted only the frames it
    // sent (crediting both its tx and the destination's rx), so the sum over
    // processes double-counts nothing.
    let mut traffic = TrafficSnapshot::zeros(a.workers);
    for r in &reports {
        traffic.accumulate(&r.traffic);
    }

    // BSP must leave every worker replica bitwise identical.
    let workers: Vec<&ChildReport> = reports.iter().filter(|r| r.role == "worker").collect();
    if workers.len() != a.workers {
        return Err(format!(
            "expected {} worker reports, got {}",
            a.workers,
            workers.len()
        ));
    }
    let reference = workers[0].params.as_deref().unwrap_or_default();
    for w in &workers[1..] {
        if w.params.as_deref().unwrap_or_default() != reference {
            return Err(format!(
                "worker {} diverged from worker {} — replicas are not bitwise identical",
                w.endpoint, workers[0].endpoint
            ));
        }
    }

    // Merge the per-process Chrome trace parts into one file and validate
    // its structure (balanced spans, monotonic timestamps per track).
    if trace {
        if let Some(base) = &a.trace_out {
            let parts = (0..n)
                .map(|me| {
                    let path = trace_part_path(base, me);
                    std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let merged = chrome::merge_chrome_json(&parts)?;
            let stats = chrome::validate(&merged)?;
            std::fs::write(base, &merged).map_err(|e| format!("writing {base}: {e}"))?;
            println!(
                "trace=valid events={} spans={} tracks={} pids={} file={base}",
                stats.events, stats.spans, stats.tracks, stats.pids
            );
        }
    }

    Ok(Generation { reports, traffic })
}

/// Launcher: split the run into generations at the plan's `restart`
/// boundaries, run each as a full `2P`-process mesh (exporting checkpoint
/// slices at every internal boundary, restoring after it), and summarize
/// across generations. A plan with no restarts is a single generation — the
/// pre-elastic behaviour, flag for flag.
fn launch(a: &Args) -> Result<(), String> {
    let schedule = MembershipSchedule::resolve(&a.membership, a.workers)
        .expect("parse_args validated the plan");
    let begin = a.start_iter;
    let end = a.start_iter + a.iters;
    let mut cuts: Vec<usize> = schedule
        .restarts()
        .iter()
        .copied()
        .filter(|&r| r > begin && r < end)
        .collect();
    cuts.push(end);
    let n_gens = cuts.len();

    // Checkpoint slices need a home once any generation exports or restores.
    let ckpt_dir = if a.ckpt_dir.is_some() {
        a.ckpt_dir.clone()
    } else if n_gens > 1 || a.export_state || a.restore {
        let dir = std::env::temp_dir().join(format!("poseidon-node-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        Some(dir.to_string_lossy().into_owned())
    } else {
        None
    };

    let mut traffic = TrafficSnapshot::zeros(a.workers);
    let mut last = None;
    let mut start = begin;
    for (g, &cut) in cuts.iter().enumerate() {
        let export = g + 1 < n_gens || a.export_state;
        let restore = start > begin || a.restore;
        // The merged Chrome trace covers the final generation (earlier parts
        // would be overwritten by later ones anyway).
        let trace = a.trace_out.is_some() && g + 1 == n_gens;
        if n_gens > 1 {
            println!(
                "generation={g} start_iter={start} iters={} export={export} restore={restore}",
                cut - start
            );
        }
        let gen = run_generation(
            a,
            start,
            cut - start,
            export,
            restore,
            ckpt_dir.as_deref(),
            trace,
        )?;
        traffic.accumulate(&gen.traffic);
        last = Some(gen);
        start = cut;
    }
    let last = last.expect("at least one generation");
    let reports = &last.reports;
    let workers: Vec<&ChildReport> = reports.iter().filter(|r| r.role == "worker").collect();

    println!(
        "workers={} iters={} policy={:?}",
        a.workers, a.iters, a.policy
    );
    if !schedule.is_trivial() || n_gens > 1 {
        println!(
            "membership_epochs={} generations={n_gens}",
            schedule.epochs()
        );
    }
    println!(
        "final_loss={}",
        workers[0].losses.last().copied().unwrap_or(f32::NAN)
    );
    println!("traffic_total_bytes={}", traffic.total_bytes());
    println!("traffic_per_node={}", csv(&traffic.per_node_totals()));

    // Mesh-level health verdict from the workers' reported busy-time p50s:
    // the same detector `train` runs in-process, here fed across processes.
    let busy: Vec<(usize, u64)> = workers
        .iter()
        .filter_map(|w| w.busy_p50_ns.map(|b| (w.endpoint, b)))
        .collect();
    if busy.len() == workers.len() {
        print!("{}", health::detect(&busy, a.straggler_factor).render());
    }
    if a.fault_plan.is_some() || a.reliable {
        let fired: u64 = reports.iter().map(|r| r.faults_fired).sum();
        let recovered: u64 = reports.iter().map(|r| r.recovery_actions).sum();
        println!("faults_fired_total={fired}");
        println!("recovery_actions_total={recovered}");
    }
    println!("replicas=bitwise-identical");
    Ok(())
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match a.endpoint {
        Some(me) => run_one(&a, me),
        None => match launch(&a) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("poseidon-node: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
