//! Section 5.1 single-node overhead: images/sec of the native engine vs a
//! vanilla PS parallelisation vs Poseidon on ONE machine (no network).
//!
//! Run: `cargo run --release -p poseidon-bench --bin overhead`

use poseidon::sim::{simulate, SimConfig, System};
use poseidon::stats::render_table;
use poseidon_bench::banner;
use poseidon_nn::zoo;

fn main() {
    banner(
        "Section 5.1",
        "single-node throughput (img/s): native vs +PS vs Poseidon",
    );
    let header: Vec<String> = [
        "model",
        "native",
        "engine+PS",
        "Poseidon",
        "paper (native/+PS/PSD)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let paper = [
        ("GoogLeNet", "257 / 213.3 / 257"),
        ("VGG19", "35.5 / 21.3 / 35.5"),
        ("VGG19-22K", "34.6 / 18.5 / 34.2"),
    ];
    let mut rows = Vec::new();
    for model in [zoo::googlenet(), zoo::vgg19(), zoo::vgg19_22k()] {
        let ps = simulate(&model, &SimConfig::system(System::CaffePs, 1, 40.0));
        let psd = simulate(&model, &SimConfig::system(System::Poseidon, 1, 40.0));
        let paper_row = paper
            .iter()
            .find(|(n, _)| *n == model.name)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        rows.push(vec![
            model.name.to_string(),
            format!("{:.1}", ps.single_node_ips),
            format!("{:.1}", ps.throughput_ips),
            format!("{:.1}", psd.throughput_ips),
            paper_row.to_string(),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!("Shape: vanilla PS loses throughput on one node to unoverlapped GPU<->CPU");
    println!("copies; Poseidon overlaps them and matches the native engine.");
}
