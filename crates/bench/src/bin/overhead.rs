//! Section 5.1 single-node overhead: images/sec of the native engine vs a
//! vanilla PS parallelisation vs Poseidon on ONE machine (no network),
//! rendered through the telemetry summary-report formatter so its output
//! matches the per-layer digests `poseidon-node --trace-out` prints.
//!
//! Run: `cargo run --release -p poseidon-bench --bin overhead`

use poseidon::sim::{simulate, SimConfig, System};
use poseidon::telemetry::report::Report;
use poseidon_bench::banner;
use poseidon_nn::zoo;

fn main() {
    banner(
        "Section 5.1",
        "single-node throughput (img/s): native vs +PS vs Poseidon",
    );
    let paper = [
        ("GoogLeNet", "257 / 213.3 / 257"),
        ("VGG19", "35.5 / 21.3 / 35.5"),
        ("VGG19-22K", "34.6 / 18.5 / 34.2"),
    ];
    let mut rows = Vec::new();
    for model in [zoo::googlenet(), zoo::vgg19(), zoo::vgg19_22k()] {
        let ps = simulate(&model, &SimConfig::system(System::CaffePs, 1, 40.0));
        let psd = simulate(&model, &SimConfig::system(System::Poseidon, 1, 40.0));
        let paper_row = paper
            .iter()
            .find(|(n, _)| *n == model.name)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        rows.push(vec![
            model.name.to_string(),
            format!("{:.1}", ps.single_node_ips),
            format!("{:.1}", ps.throughput_ips),
            format!("{:.1}", psd.throughput_ips),
            paper_row.to_string(),
        ]);
    }
    let mut report = Report::new();
    report.table(
        "single-node img/s",
        &[
            "model",
            "native",
            "engine+PS",
            "Poseidon",
            "paper (native/+PS/PSD)",
        ],
        rows,
    );
    report.note("Shape: vanilla PS loses throughput on one node to unoverlapped GPU<->CPU");
    report.note("copies; Poseidon overlaps them and matches the native engine.");
    print!("{}", report.render());
}
