//! Bounded-asynchronous extension (Section 3: Poseidon's design "can easily
//! be applied to asynchronous or bounded-asynchronous consistency models"):
//! BSP vs stale-synchronous-parallel on the *real* threaded runtime, with an
//! injected straggler worker.
//!
//! Under BSP the straggler gates every iteration; under SSP the fast workers
//! run up to `staleness` iterations ahead, recovering wall-clock throughput
//! at a small statistical cost.
//!
//! Run: `cargo run --release -p poseidon-bench --bin ssp`

use poseidon::config::{Consistency, SchemePolicy};
use poseidon::runtime::{evaluate_error, train, RuntimeConfig};
use poseidon::stats::render_table;
use poseidon_bench::banner;
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use std::time::Instant;

fn main() {
    banner(
        "SSP extension",
        "BSP vs SSP on the threaded runtime under per-iteration compute jitter",
    );
    let all = Dataset::gaussian_clusters(TensorShape::flat(32), 5, 1200, 0.45, 61);
    let (train_set, test_set) = all.split_at(1000);
    let iters = 150;

    let header: Vec<String> = [
        "consistency",
        "wall s",
        "fast-worker s",
        "final loss",
        "test err",
        "max clock spread",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (consistency, label) in [
        (Consistency::Bsp, "BSP"),
        (Consistency::Ssp { staleness: 0 }, "SSP s=0"),
        (Consistency::Ssp { staleness: 2 }, "SSP s=2"),
        (Consistency::Ssp { staleness: 8 }, "SSP s=8"),
    ] {
        let cfg = RuntimeConfig {
            policy: SchemePolicy::AlwaysPs,
            consistency,
            jitter_us: Some(4000),
            ..RuntimeConfig::new(4, 8, 0.1, iters)
        };
        let t0 = Instant::now();
        let result = train(
            &|| presets::mlp(&[32, 48, 24, 5], 71),
            &train_set,
            None,
            &cfg,
        );
        let wall = t0.elapsed().as_secs_f64();
        let mut net = result.net;
        let err = evaluate_error(&mut net, &test_set);
        let tail: f32 = result.losses[iters - 10..].iter().sum::<f32>() / 10.0;
        let fast = result
            .worker_wall_s
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        rows.push(vec![
            label.to_string(),
            format!("{wall:.2}"),
            format!("{fast:.2}"),
            format!("{tail:.3}"),
            format!("{err:.3}"),
            result.max_staleness_spread.to_string(),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!("Expected shape: with ~0-4ms of random per-iteration jitter per worker,");
    println!("every BSP barrier waits for the unluckiest worker (per-iteration cost ~");
    println!("max of 4 draws), while SSP lets workers ride through each other's bad");
    println!("draws — wall time drops toward the mean-rate floor as staleness grows,");
    println!("at equal statistical quality, with clock spread <= staleness + 1.");
}
