//! Criterion microbenches of the real (threaded) communication schemes:
//! end-to-end wall time of a short distributed training run under each
//! scheme policy, plus the per-payload codec costs. Complements Table 1's
//! analytic bytes with measured in-process costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poseidon::config::SchemePolicy;
use poseidon::runtime::{train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;

fn bench_scheme_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_scheme");
    g.sample_size(10);
    let data = Dataset::gaussian_clusters(TensorShape::flat(64), 4, 128, 0.3, 5);
    for (policy, name) in [
        (SchemePolicy::AlwaysPs, "ps"),
        (SchemePolicy::AlwaysSfbForFc, "sfb"),
        (SchemePolicy::Hybrid, "hybrid"),
        (SchemePolicy::AdamSf, "adam"),
        (SchemePolicy::OneBit, "onebit"),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let cfg = RuntimeConfig {
                    policy,
                    ..RuntimeConfig::new(4, 8, 0.1, 10)
                };
                std::hint::black_box(train(&|| presets::mlp(&[64, 96, 4], 3), &data, None, &cfg))
            });
        });
    }
    g.finish();
}

fn bench_sf_vs_dense_payload(c: &mut Criterion) {
    // Wire-encoding cost of a 256x1024 FC gradient: dense matrix vs K=32
    // sufficient factors (the trade HybComm arbitrates).
    use poseidon_tensor::{bytesio, Matrix, SfBatch, SufficientFactor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let mut dense = Matrix::zeros(256, 1024);
    poseidon_tensor::init::gaussian(&mut dense, 0.0, 1.0, &mut rng);
    let batch = SfBatch::from_factors(
        (0..32)
            .map(|_| {
                let mut u = Matrix::zeros(1, 256);
                let mut v = Matrix::zeros(1, 1024);
                poseidon_tensor::init::gaussian(&mut u, 0.0, 1.0, &mut rng);
                poseidon_tensor::init::gaussian(&mut v, 0.0, 1.0, &mut rng);
                SufficientFactor::new(u.as_slice().to_vec(), v.as_slice().to_vec())
            })
            .collect(),
    );
    c.bench_function("encode_dense_256x1024", |b| {
        b.iter(|| std::hint::black_box(bytesio::encode_matrix(&dense)));
    });
    c.bench_function("encode_sf_batch_k32_256x1024", |b| {
        b.iter(|| std::hint::black_box(bytesio::encode_sf_batch(&batch)));
    });
}

criterion_group!(benches, bench_scheme_policies, bench_sf_vs_dense_payload);
criterion_main!(benches);
