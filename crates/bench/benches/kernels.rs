//! Criterion microbenches for the blocked GEMM kernels on the exact shapes
//! the paper's models put on the hot path: VGG19's giant FC layers and
//! GoogLeNet's classifier (FC forward is `x · Wᵀ` over a 32-sample batch),
//! plus an im2col-shaped conv GEMM and the square 512³ reference point.
//!
//! Run: `cargo bench -p poseidon-bench --bench kernels`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poseidon_tensor::Matrix;

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut state = seed;
    for v in m.as_mut_slice() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32) / (1u64 << 24) as f32 - 0.5;
    }
    m
}

/// FC forward GEMMs, batch 32: `(K × in) · (out × in)ᵀ`.
fn bench_model_fc_shapes(c: &mut Criterion) {
    let shapes: &[(&str, usize, usize)] = &[
        ("vgg19_fc6_25088x4096", 25088, 4096),
        ("vgg19_fc7_4096x4096", 4096, 4096),
        ("vgg19_fc8_4096x1000", 4096, 1000),
        ("googlenet_fc_1024x1000", 1024, 1000),
    ];
    let mut g = c.benchmark_group("fc_forward_gemm_batch32");
    g.sample_size(10);
    for &(name, inf, outf) in shapes {
        let x = lcg_matrix(32, inf, 1);
        let w = lcg_matrix(outf, inf, 2);
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| std::hint::black_box(x.matmul_nt(&w)));
        });
    }
    g.finish();
}

/// An im2col conv GEMM: VGG19 conv3_1-shaped, one sample —
/// patches `(56·56) × (128·3·3)` times filters `256 × (128·3·3)`.
fn bench_conv_im2col_gemm(c: &mut Criterion) {
    let patches = lcg_matrix(56 * 56, 128 * 9, 3);
    let filters = lcg_matrix(256, 128 * 9, 4);
    let mut g = c.benchmark_group("conv_im2col_gemm");
    g.sample_size(10);
    g.bench_function("vgg19_conv3_1", |bench| {
        bench.iter(|| std::hint::black_box(filters.matmul_nt(&patches)));
    });
    g.finish();
}

/// Square 512³ — the headline blocked-vs-naive comparison point recorded in
/// `BENCH_kernels.json`.
fn bench_square_512(c: &mut Criterion) {
    let a = lcg_matrix(512, 512, 5);
    let b = lcg_matrix(512, 512, 6);
    let mut g = c.benchmark_group("gemm_512");
    g.sample_size(10);
    g.bench_function("blocked", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)));
    });
    g.bench_function("naive", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul_naive(&b)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_model_fc_shapes,
    bench_conv_im2col_gemm,
    bench_square_512
);
criterion_main!(benches);
