//! Criterion benches over the figure-regeneration sweeps themselves: how
//! long each figure's simulation sweep takes. Keeps the experiment harness
//! honest about its own cost and doubles as a regression check that every
//! sweep still runs.

use criterion::{criterion_group, criterion_main, Criterion};
use poseidon::sim::{simulate, SimConfig, System};
use poseidon_nn::zoo;

fn bench_fig5_sweep(c: &mut Criterion) {
    c.bench_function("fig5_sweep_caffe_models", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for model in [zoo::googlenet(), zoo::vgg19(), zoo::vgg19_22k()] {
                for sys in [System::CaffePs, System::WfbpPs, System::Poseidon] {
                    for n in [1usize, 8, 32] {
                        acc += simulate(&model, &SimConfig::system(sys, n, 40.0)).speedup;
                    }
                }
            }
            std::hint::black_box(acc)
        });
    });
}

fn bench_fig8_sweep(c: &mut Criterion) {
    c.bench_function("fig8_bandwidth_sweep_vgg19", |b| {
        let model = zoo::vgg19();
        b.iter(|| {
            let mut acc = 0.0;
            for bw in [10.0, 20.0, 30.0] {
                for n in [1usize, 4, 16] {
                    acc += simulate(&model, &SimConfig::system(System::Poseidon, n, bw)).speedup;
                }
            }
            std::hint::black_box(acc)
        });
    });
}

fn bench_single_simulation(c: &mut Criterion) {
    c.bench_function("simulate_resnet152_32nodes", |b| {
        let model = zoo::resnet152();
        let cfg = SimConfig::system(System::Poseidon, 32, 40.0);
        b.iter(|| std::hint::black_box(simulate(&model, &cfg)));
    });
}

criterion_group!(
    benches,
    bench_fig5_sweep,
    bench_fig8_sweep,
    bench_single_simulation
);
criterion_main!(benches);
