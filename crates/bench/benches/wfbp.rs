//! WFBP ablation bench (DESIGN.md ablation #1 and #2): simulated iteration
//! time under sequential vs wait-free scheduling, and under KV-pair vs
//! whole-tensor partitioning, for the evaluation models at 8 nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poseidon::config::{Partition, Scheduler};
use poseidon::sim::{simulate, SimConfig, System};
use poseidon_nn::zoo;

fn bench_scheduler_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_scheduler");
    for model in [zoo::googlenet(), zoo::vgg19(), zoo::resnet152()] {
        for scheduler in [Scheduler::Sequential, Scheduler::Wfbp] {
            let id = format!("{}/{:?}", model.name, scheduler);
            g.bench_with_input(BenchmarkId::from_parameter(id), &scheduler, |b, &s| {
                let mut cfg = SimConfig::system(System::WfbpPs, 8, 40.0);
                cfg.scheduler = s;
                b.iter(|| std::hint::black_box(simulate(&model, &cfg)));
            });
        }
    }
    g.finish();
}

fn bench_partition_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_partition");
    let model = zoo::vgg19();
    for (partition, name) in [
        (Partition::default_kv_pairs(), "kv2mb"),
        (
            Partition::KvPairs {
                pair_elems: 64 * 1024,
            },
            "kv256kb",
        ),
        (
            Partition::KvPairs {
                pair_elems: 4 * 1024 * 1024,
            },
            "kv16mb",
        ),
        (Partition::WholeTensor, "whole"),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &partition, |b, &p| {
            let mut cfg = SimConfig::system(System::WfbpPs, 8, 40.0);
            cfg.partition = p;
            b.iter(|| std::hint::black_box(simulate(&model, &cfg)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler_ablation, bench_partition_ablation);
criterion_main!(benches);
