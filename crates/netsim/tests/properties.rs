//! Property-based tests for the discrete-event simulator.

use poseidon_netsim::{EventQueue, LinkConfig, Network, NodeId, Resource};
use proptest::prelude::*;

proptest! {
    /// Popping events always yields non-decreasing timestamps.
    #[test]
    fn event_queue_pops_monotonically(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Two identical schedules produce identical pop sequences (determinism).
    #[test]
    fn event_queue_is_deterministic(times in proptest::collection::vec(0.0f64..100.0, 1..100)) {
        let run = |times: &[f64]| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(t, i);
            }
            let mut out = Vec::new();
            while let Some(ev) = q.pop() {
                out.push(ev);
            }
            out
        };
        prop_assert_eq!(run(&times), run(&times));
    }

    /// A serial resource's total busy time equals the sum of durations, and
    /// job intervals never overlap.
    #[test]
    fn resource_conserves_time(jobs in proptest::collection::vec((0.0f64..100.0, 0.0f64..10.0), 1..100)) {
        let mut r = Resource::new();
        let mut total = 0.0;
        let mut last_finish = f64::NEG_INFINITY;
        for &(ready, dur) in &jobs {
            let (start, finish) = r.reserve(ready, dur);
            prop_assert!(start >= ready);
            prop_assert!(start >= last_finish - 1e-12, "jobs must not overlap");
            prop_assert!((finish - start - dur).abs() < 1e-9);
            last_finish = finish;
            total += dur;
        }
        prop_assert!((r.total_busy() - total).abs() < 1e-6);
    }

    /// Per-NIC throughput can never exceed the configured bandwidth: the
    /// completion time of all transfers out of one node is at least
    /// total_bytes / bandwidth.
    #[test]
    fn nic_bandwidth_is_respected(
        sizes in proptest::collection::vec(1u64..50_000_000, 1..40),
        gbps in 1.0f64..40.0,
    ) {
        let mut net = Network::new(2, LinkConfig { bandwidth_gbps: gbps, latency_s: 0.0 });
        let mut last_done = 0.0f64;
        let mut total_bytes = 0u64;
        for &s in &sizes {
            last_done = last_done.max(net.transfer(0.0, NodeId(0), NodeId(1), s));
            total_bytes += s;
        }
        let min_time = (total_bytes as f64 * 8.0) / (gbps * 1e9);
        prop_assert!(last_done >= min_time - 1e-9,
            "finished in {last_done} but wire minimum is {min_time}");
        // FIFO with no gaps: should also finish exactly at the wire minimum.
        prop_assert!((last_done - min_time).abs() <= 1e-9);
    }

    /// Ledger totals: sum of tx == sum of rx == total.
    #[test]
    fn ledger_is_conservative(
        transfers in proptest::collection::vec((0usize..4, 0usize..4, 1u64..1_000_000), 1..60),
    ) {
        let mut net = Network::new(4, LinkConfig::gbe(10.0));
        let mut expect_total = 0u64;
        for &(src, dst, bytes) in &transfers {
            net.transfer(0.0, NodeId(src), NodeId(dst), bytes);
            if src != dst {
                expect_total += bytes;
            }
        }
        let l = net.ledger();
        let tx_sum: u64 = (0..4).map(|n| l.tx_bytes(n)).sum();
        let rx_sum: u64 = (0..4).map(|n| l.rx_bytes(n)).sum();
        prop_assert_eq!(tx_sum, expect_total);
        prop_assert_eq!(rx_sum, expect_total);
        prop_assert_eq!(l.total_bytes(), expect_total);
    }

    /// Max-min fairness conservation: in the fluid-flow model, every flow
    /// completes, total ledger bytes equal the sum of flow sizes, and the
    /// makespan is at least the busiest NIC's bytes / capacity.
    #[test]
    fn flow_network_conserves_bytes_and_respects_capacity(
        flows in proptest::collection::vec(
            (0usize..4, 0usize..4, 1u64..200_000_000, 0.0f64..0.5),
            1..20,
        ),
        gbps in 1.0f64..40.0,
    ) {
        use poseidon_netsim::FlowNetwork;
        let mut net: FlowNetwork<usize> = FlowNetwork::new(4, gbps);
        let mut tx = [0u64; 4];
        let mut rx = [0u64; 4];
        let mut expect_total = 0u64;
        let mut n_real = 0usize;
        for (i, &(src, dst, bytes, start)) in flows.iter().enumerate() {
            net.add_flow(start, src, dst, bytes, i);
            if src != dst {
                tx[src] += bytes;
                rx[dst] += bytes;
                expect_total += bytes;
                n_real += 1;
            }
        }
        let mut completed = 0usize;
        let mut makespan = 0.0f64;
        while let Some(t) = net.next_event_time() {
            let done = net.advance(t);
            completed += done.len();
            if !done.is_empty() {
                makespan = makespan.max(t);
            }
        }
        prop_assert_eq!(completed, flows.len(), "every flow must complete");
        prop_assert_eq!(net.ledger().total_bytes(), expect_total);
        if n_real > 0 {
            let capacity = gbps * 1e9 / 8.0;
            let busiest = tx.iter().chain(rx.iter()).cloned().max().unwrap() as f64;
            prop_assert!(
                makespan + 1e-9 >= busiest / capacity,
                "makespan {makespan} beats the {busiest}-byte NIC at {capacity} B/s"
            );
        }
    }

    /// Later ready times never make a transfer finish earlier.
    #[test]
    fn transfer_completion_is_monotone_in_ready_time(
        bytes in 1u64..100_000_000,
        r1 in 0.0f64..10.0,
        dr in 0.0f64..10.0,
    ) {
        let cfg = LinkConfig::gbe(10.0);
        let mut a = Network::new(2, cfg);
        let mut b = Network::new(2, cfg);
        let d1 = a.transfer(r1, NodeId(0), NodeId(1), bytes);
        let d2 = b.transfer(r1 + dr, NodeId(0), NodeId(1), bytes);
        prop_assert!(d2 >= d1 - 1e-12);
    }
}
