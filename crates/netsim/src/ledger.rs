//! Per-node traffic accounting.
//!
//! Figure 10 of the paper plots the network traffic each node sends/receives
//! per iteration under three communication schemes; the ledger provides that
//! measurement for the simulator (and the threaded runtime keeps an analogous
//! count on its in-process transport).

/// Cumulative per-node byte counters.
#[derive(Clone, Debug, Default)]
pub struct TrafficLedger {
    tx: Vec<u64>,
    rx: Vec<u64>,
    core: u64,
}

impl TrafficLedger {
    /// Creates a ledger for `nodes` nodes with zeroed counters.
    pub fn new(nodes: usize) -> Self {
        Self {
            tx: vec![0; nodes],
            rx: vec![0; nodes],
            core: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Records a transfer of `bytes` from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range.
    pub fn record(&mut self, src: usize, dst: usize, bytes: u64) {
        self.tx[src] += bytes;
        self.rx[dst] += bytes;
    }

    /// Records `bytes` crossing the (possibly oversubscribed) shared core —
    /// inter-node traffic in a hierarchical topology. The flat single-switch
    /// network never calls this, so its counters are unaffected.
    pub fn record_core(&mut self, bytes: u64) {
        self.core += bytes;
    }

    /// Bytes that crossed the shared core since construction or last reset.
    pub fn core_bytes(&self) -> u64 {
        self.core
    }

    /// Bytes sent by `node` since construction or the last reset.
    pub fn tx_bytes(&self, node: usize) -> u64 {
        self.tx[node]
    }

    /// Bytes received by `node`.
    pub fn rx_bytes(&self, node: usize) -> u64 {
        self.rx[node]
    }

    /// Total traffic (tx + rx) touching `node`.
    pub fn node_bytes(&self, node: usize) -> u64 {
        self.tx[node] + self.rx[node]
    }

    /// Sum of bytes sent by all nodes (== sum received by all nodes).
    pub fn total_bytes(&self) -> u64 {
        self.tx.iter().sum()
    }

    /// Per-node totals (tx + rx), one entry per node.
    pub fn per_node_totals(&self) -> Vec<u64> {
        (0..self.nodes()).map(|n| self.node_bytes(n)).collect()
    }

    /// Largest per-node total divided by the mean — 1.0 means perfectly
    /// balanced. This is the imbalance statistic used when reproducing
    /// Figure 10's comparison of Adam vs. Poseidon.
    ///
    /// Returns 0.0 when no traffic has been recorded.
    pub fn imbalance(&self) -> f64 {
        let totals = self.per_node_totals();
        let sum: u64 = totals.iter().sum();
        if sum == 0 {
            return 0.0;
        }
        let mean = sum as f64 / totals.len() as f64;
        let max = *totals.iter().max().expect("non-empty") as f64;
        max / mean
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        self.tx.fill(0);
        self.rx.fill(0);
        self.core = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_both_directions() {
        let mut l = TrafficLedger::new(3);
        l.record(0, 1, 100);
        l.record(1, 2, 50);
        assert_eq!(l.tx_bytes(0), 100);
        assert_eq!(l.rx_bytes(1), 100);
        assert_eq!(l.tx_bytes(1), 50);
        assert_eq!(l.rx_bytes(2), 50);
        assert_eq!(l.total_bytes(), 150);
        assert_eq!(l.node_bytes(1), 150);
    }

    #[test]
    fn imbalance_is_one_when_uniform() {
        let mut l = TrafficLedger::new(4);
        for src in 0..4usize {
            for dst in 0..4usize {
                if src != dst {
                    l.record(src, dst, 10);
                }
            }
        }
        assert!((l.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_hotspot() {
        let mut l = TrafficLedger::new(4);
        l.record(0, 1, 10);
        l.record(0, 2, 10);
        l.record(0, 3, 10);
        // Node 0 carries 30 of the 60 total node-bytes; mean is 15.
        assert!(l.imbalance() > 1.9);
    }

    #[test]
    fn empty_ledger_reports_zero_imbalance() {
        assert_eq!(TrafficLedger::new(2).imbalance(), 0.0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut l = TrafficLedger::new(2);
        l.record(0, 1, 7);
        l.record_core(7);
        l.reset();
        assert_eq!(l.total_bytes(), 0);
        assert_eq!(l.core_bytes(), 0);
    }

    #[test]
    fn core_counter_is_independent_of_node_counters() {
        let mut l = TrafficLedger::new(2);
        l.record(0, 1, 100);
        l.record_core(100);
        l.record_core(25);
        assert_eq!(l.core_bytes(), 125);
        assert_eq!(l.total_bytes(), 100);
    }
}
