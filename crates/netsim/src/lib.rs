//! Discrete-event cluster simulator for the Poseidon reproduction.
//!
//! The paper's evaluation ran on a 32-node GPU cluster with 40GbE Ethernet
//! (throttled down to 1–30GbE with `tc` for the bandwidth experiments). This
//! crate is the substitute substrate: it models each node's full-duplex NIC as
//! a pair of serial bandwidth queues with per-message latency, plus generic
//! serial [`resource::Resource`]s reused for GPU compute and PCIe memcpy.
//!
//! The model is intentionally first-order — messages are pipelined
//! (cut-through: one flow costs `latency + bytes/bandwidth`), and concurrent
//! flows that share a NIC serialise on it. That is exactly enough to produce
//! the phenomena the paper measures: bursty end-of-iteration traffic, server
//! hot-spots under Project-Adam-style broadcasting (Figure 10), and bandwidth
//! saturation for large models (Figure 8).
//!
//! Everything is deterministic: there is no randomness anywhere in this crate
//! and event ordering ties are broken by insertion sequence.

pub mod flow;
pub mod ledger;
pub mod net;
pub mod queue;
pub mod resource;
pub mod topo;

pub use flow::{FlowId, FlowNetwork};
pub use ledger::TrafficLedger;
pub use net::{LinkConfig, Network, NodeId};
pub use queue::EventQueue;
pub use resource::Resource;
pub use topo::{HierNetwork, Topology};
