//! Max-min fair bandwidth sharing — a fluid-flow alternative to the FIFO NIC
//! queues of [`crate::net::Network`].
//!
//! Real TCP flows crossing a switched cluster do not serialise per NIC; they
//! share each NIC's capacity, converging (roughly) to the max-min fair
//! allocation. [`FlowNetwork`] models that: every active flow gets a rate from
//! progressive filling (water-filling) over its sender's tx capacity and its
//! receiver's rx capacity, rates are recomputed whenever a flow starts or
//! finishes, and remaining bytes drain fluidly between events.
//!
//! The FIFO model is the default in the cluster simulator (simple,
//! conservative); this model is the higher-fidelity option
//! (`SimConfig::fair_share`), and an ablation compares the two.

use crate::ledger::TrafficLedger;

/// Identifies a flow within a [`FlowNetwork`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId(usize);

#[derive(Clone, Debug)]
struct Flow<T> {
    src: usize,
    dst: usize,
    start: f64,
    remaining: f64,
    /// Current max-min rate (bytes/s); 0 until activated.
    rate: f64,
    tag: Option<T>,
    done: bool,
}

/// A fluid-flow network of `n` nodes with per-direction NIC capacity.
///
/// `T` is an arbitrary completion tag returned when a flow finishes (the
/// cluster simulator stores the event to fire).
#[derive(Clone, Debug)]
pub struct FlowNetwork<T> {
    nodes: usize,
    capacity_bps: f64,
    now: f64,
    flows: Vec<Flow<T>>,
    ledger: TrafficLedger,
    /// Rates are stale (flows added since the last recompute).
    dirty: bool,
}

impl<T> FlowNetwork<T> {
    /// Creates a network of `nodes` nodes with per-direction `bandwidth_gbps`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or bandwidth is not positive.
    pub fn new(nodes: usize, bandwidth_gbps: f64) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        Self {
            nodes,
            capacity_bps: bandwidth_gbps * 1e9 / 8.0,
            now: 0.0,
            flows: Vec::new(),
            ledger: TrafficLedger::new(nodes),
            dirty: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The traffic ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Mutable access to the traffic ledger.
    pub fn ledger_mut(&mut self) -> &mut TrafficLedger {
        &mut self.ledger
    }

    /// Number of flows still draining.
    pub fn active_flows(&self) -> usize {
        self.flows.iter().filter(|f| !f.done).count()
    }

    /// Adds a flow of `bytes` from `src` to `dst`, eligible to transmit from
    /// `start` (clamped to now). Zero-byte and loop-back flows complete
    /// immediately at `start` (returned by the next [`Self::advance`] at or
    /// after that time); loop-back is not recorded as traffic.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range.
    pub fn add_flow(&mut self, start: f64, src: usize, dst: usize, bytes: u64, tag: T) -> FlowId {
        assert!(src < self.nodes && dst < self.nodes, "node out of range");
        let start = start.max(self.now);
        if src != dst {
            self.ledger.record(src, dst, bytes);
        }
        let remaining = if src == dst { 0.0 } else { bytes as f64 };
        self.flows.push(Flow {
            src,
            dst,
            start,
            remaining,
            rate: 0.0,
            tag: Some(tag),
            done: false,
        });
        // Defer the (expensive) rate recomputation: many flows are typically
        // added back to back before time advances.
        self.dirty = true;
        FlowId(self.flows.len() - 1)
    }

    /// The next time the flow system changes state (a flow activates or
    /// completes), or `None` if nothing is pending.
    pub fn next_event_time(&mut self) -> Option<f64> {
        if self.dirty {
            self.recompute_rates();
            self.dirty = false;
        }
        let mut next = f64::INFINITY;
        for f in &self.flows {
            if f.done {
                continue;
            }
            if f.start > self.now {
                next = next.min(f.start);
            } else if f.remaining <= 0.0 {
                next = next.min(self.now);
            } else if f.rate > 0.0 {
                next = next.min(self.now + f.remaining / f.rate);
            }
        }
        (next != f64::INFINITY).then_some(next)
    }

    /// Advances the fluid model to time `t`, returning the tags of every flow
    /// that completed at or before `t` (in insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the current time or beyond the next state
    /// change (call [`Self::next_event_time`] first).
    pub fn advance(&mut self, t: f64) -> Vec<T> {
        assert!(t >= self.now - 1e-12, "cannot advance into the past");
        if self.dirty {
            self.recompute_rates();
            self.dirty = false;
        }
        if let Some(next) = self.next_event_time() {
            assert!(
                t <= next + 1e-9,
                "advance past a state change: {t} > {next}"
            );
        }
        let dt = (t - self.now).max(0.0);
        self.now = t;
        let mut completed = Vec::new();
        let mut changed = false;
        for f in self.flows.iter_mut() {
            if f.done {
                continue;
            }
            if f.start <= self.now && f.remaining > 0.0 {
                f.remaining -= f.rate * dt;
            }
            if f.start <= self.now + 1e-12 && f.remaining <= 1e-6 {
                f.done = true;
                changed = true;
                completed.push(f.tag.take().expect("tag taken once"));
            } else if f.start <= self.now && f.rate == 0.0 {
                changed = true; // flow just activated; rates must refresh
            }
        }
        if changed {
            // Drop finished flows so the books stay proportional to the
            // number of *live* flows (FlowIds are invalidated by completion).
            self.flows.retain(|f| !f.done);
            self.recompute_rates();
        }
        completed
    }

    /// Progressive filling: every unfrozen flow raises its rate uniformly
    /// until some NIC saturates; flows on that NIC freeze; repeat.
    fn recompute_rates(&mut self) {
        // Active = started, not done, bytes remaining.
        let mut active: Vec<usize> = Vec::with_capacity(self.flows.len());
        for (i, f) in self.flows.iter_mut().enumerate() {
            if !f.done && f.start <= self.now + 1e-12 && f.remaining > 0.0 {
                active.push(i);
            } else {
                f.rate = 0.0;
            }
        }
        if active.is_empty() {
            return;
        }

        let mut frozen: Vec<bool> = vec![false; active.len()];
        let mut rate: Vec<f64> = vec![0.0; active.len()];
        loop {
            // Remaining capacity and unfrozen count per (node, direction).
            let mut cap_tx = vec![self.capacity_bps; self.nodes];
            let mut cap_rx = vec![self.capacity_bps; self.nodes];
            let mut n_tx = vec![0usize; self.nodes];
            let mut n_rx = vec![0usize; self.nodes];
            for (k, &i) in active.iter().enumerate() {
                let f = &self.flows[i];
                if frozen[k] {
                    cap_tx[f.src] -= rate[k];
                    cap_rx[f.dst] -= rate[k];
                } else {
                    n_tx[f.src] += 1;
                    n_rx[f.dst] += 1;
                }
            }
            // Smallest fair share over all constrained resources.
            let mut best_share = f64::INFINITY;
            for n in 0..self.nodes {
                if n_tx[n] > 0 {
                    best_share = best_share.min(cap_tx[n].max(0.0) / n_tx[n] as f64);
                }
                if n_rx[n] > 0 {
                    best_share = best_share.min(cap_rx[n].max(0.0) / n_rx[n] as f64);
                }
            }
            if best_share == f64::INFINITY {
                break; // everything frozen
            }
            // Freeze every unfrozen flow touching a saturated resource.
            let mut froze_any = false;
            for (k, &i) in active.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                let f = &self.flows[i];
                let tx_share = cap_tx[f.src].max(0.0) / n_tx[f.src] as f64;
                let rx_share = cap_rx[f.dst].max(0.0) / n_rx[f.dst] as f64;
                if tx_share <= best_share + 1e-9 || rx_share <= best_share + 1e-9 {
                    rate[k] = best_share;
                    frozen[k] = true;
                    froze_any = true;
                }
            }
            if !froze_any {
                // Numerical corner: freeze everything at the current share.
                for (k, _) in active.iter().enumerate() {
                    if !frozen[k] {
                        rate[k] = best_share;
                        frozen[k] = true;
                    }
                }
            }
            if frozen.iter().all(|&f| f) {
                break;
            }
        }
        for (k, &i) in active.iter().enumerate() {
            self.flows[i].rate = rate[k];
        }
    }

    /// The current rate of a flow (bytes/s) — for tests and diagnostics.
    /// Only valid before any flow completes (completion compacts the table).
    pub fn rate_of(&mut self, id: FlowId) -> f64 {
        if self.dirty {
            self.recompute_rates();
            self.dirty = false;
        }
        self.flows[id.0].rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Capacity of the 8-Gbps links used below, in bytes/s.
    const LINE_RATE: f64 = 1e9;

    fn drain<T>(net: &mut FlowNetwork<T>) -> Vec<(f64, T)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event_time() {
            for tag in net.advance(t) {
                out.push((t, tag));
            }
        }
        out
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let mut net: FlowNetwork<&str> = FlowNetwork::new(2, 8.0);
        net.add_flow(0.0, 0, 1, 1_000_000_000, "a");
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!(
            (done[0].0 - 1.0).abs() < 1e-6,
            "1GB at 1GB/s: {}",
            done[0].0
        );
    }

    #[test]
    fn two_flows_sharing_a_tx_nic_split_evenly() {
        let mut net: FlowNetwork<u32> = FlowNetwork::new(3, 8.0);
        let a = net.add_flow(0.0, 0, 1, 500_000_000, 1);
        let b = net.add_flow(0.0, 0, 2, 500_000_000, 2);
        assert!((net.rate_of(a) - 0.5 * LINE_RATE).abs() < 1.0);
        assert!((net.rate_of(b) - 0.5 * LINE_RATE).abs() < 1.0);
        let done = drain(&mut net);
        // Both finish together at 1s (500MB each at 0.5 GB/s).
        assert!((done[0].0 - 1.0).abs() < 1e-6);
        assert!((done[1].0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn finished_flow_releases_bandwidth() {
        let mut net: FlowNetwork<u32> = FlowNetwork::new(3, 8.0);
        net.add_flow(0.0, 0, 1, 250_000_000, 1);
        net.add_flow(0.0, 0, 2, 750_000_000, 2);
        let done = drain(&mut net);
        // Phase 1: both at 0.5 GB/s; flow 1 finishes at 0.5s. Phase 2: flow 2
        // has 500MB left at full rate -> finishes at 1.0s.
        assert!((done[0].0 - 0.5).abs() < 1e-6, "{:?}", done[0].0);
        assert_eq!(done[0].1, 1);
        assert!((done[1].0 - 1.0).abs() < 1e-6, "{:?}", done[1].0);
    }

    #[test]
    fn incast_shares_the_receiver() {
        // 4 senders to one receiver: each gets B/4; aggregate finishes in
        // total_bytes / B.
        let mut net: FlowNetwork<usize> = FlowNetwork::new(5, 8.0);
        for s in 1..=4usize {
            net.add_flow(0.0, s, 0, 250_000_000, s);
        }
        let done = drain(&mut net);
        for (t, _) in &done {
            assert!((t - 1.0).abs() < 1e-6, "all finish at 1s, got {t}");
        }
    }

    #[test]
    fn max_min_gives_unbottlenecked_flows_more() {
        // Flows: A: 0->1, B: 0->2, C: 3->2. NIC 0 tx shared by A,B; NIC 2 rx
        // shared by B,C. Max-min: A=B=C=0.5 then A raises to... progressive
        // filling: all rise to 0.5 (both nic0.tx and nic2.rx saturate at
        // 2x0.5), A frozen at 0.5? nic0.tx has A,B at 0.5 => saturated; A
        // stays 0.5. C shares nic2.rx with B: also 0.5. Classic result: all
        // 0.5 here. Use asymmetric case instead: remove B -> A and C get 1.0.
        let mut net: FlowNetwork<&str> = FlowNetwork::new(4, 8.0);
        let a = net.add_flow(0.0, 0, 1, 1_000_000, "a");
        let c = net.add_flow(0.0, 3, 2, 1_000_000, "c");
        assert!(
            (net.rate_of(a) - LINE_RATE).abs() < 1.0,
            "disjoint flows run at line rate"
        );
        assert!((net.rate_of(c) - LINE_RATE).abs() < 1.0);
    }

    #[test]
    fn future_flows_activate_on_time() {
        let mut net: FlowNetwork<&str> = FlowNetwork::new(2, 8.0);
        net.add_flow(0.0, 0, 1, 500_000_000, "early");
        net.add_flow(0.25, 0, 1, 500_000_000, "late");
        let done = drain(&mut net);
        // 0–0.25s: early alone (250MB done). Then both share 0.5 GB/s.
        // early: 250MB left -> done at 0.75s; late: 500MB: 0.25s..0.75 at 0.5
        // -> 250MB left, then full rate: done at 1.0s.
        assert_eq!(done[0].1, "early");
        assert!((done[0].0 - 0.75).abs() < 1e-6, "{}", done[0].0);
        assert_eq!(done[1].1, "late");
        assert!((done[1].0 - 1.0).abs() < 1e-6, "{}", done[1].0);
    }

    #[test]
    fn loopback_completes_immediately_without_traffic() {
        let mut net: FlowNetwork<&str> = FlowNetwork::new(2, 8.0);
        net.add_flow(0.5, 1, 1, 1_000_000_000, "local");
        let done = drain(&mut net);
        assert_eq!(done, vec![(0.5, "local")]);
        assert_eq!(net.ledger().total_bytes(), 0);
    }

    #[test]
    fn ledger_records_flows() {
        let mut net: FlowNetwork<u8> = FlowNetwork::new(3, 10.0);
        net.add_flow(0.0, 0, 2, 1234, 0);
        assert_eq!(net.ledger().tx_bytes(0), 1234);
        assert_eq!(net.ledger().rx_bytes(2), 1234);
    }

    #[test]
    fn aggregate_throughput_never_exceeds_capacity() {
        // Random-ish mix of flows; verify total completion time >= bytes/B
        // bound at the busiest NIC.
        let mut net: FlowNetwork<usize> = FlowNetwork::new(4, 8.0);
        let mut tx_bytes = [0u64; 4];
        let mut rx_bytes = [0u64; 4];
        let flows = [
            (0usize, 1usize, 300_000_000u64),
            (0, 2, 500_000_000),
            (1, 2, 200_000_000),
            (3, 2, 400_000_000),
            (2, 0, 600_000_000),
        ];
        for (i, &(s, d, b)) in flows.iter().enumerate() {
            net.add_flow(0.0, s, d, b, i);
            tx_bytes[s] += b;
            rx_bytes[d] += b;
        }
        let done = drain(&mut net);
        let makespan = done.iter().map(|&(t, _)| t).fold(0.0f64, f64::max);
        let busiest = tx_bytes
            .iter()
            .chain(rx_bytes.iter())
            .cloned()
            .max()
            .unwrap() as f64;
        assert!(
            makespan >= busiest / LINE_RATE - 1e-6,
            "makespan {makespan} beats capacity"
        );
        assert_eq!(done.len(), flows.len(), "every flow completes");
    }
}
