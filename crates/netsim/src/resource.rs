//! A serial FIFO resource with utilisation accounting.
//!
//! Used to model anything that processes one job at a time at a fixed rate: a
//! GPU's compute engine, a PCIe DMA engine, or one direction of a NIC. Jobs
//! are granted in request order (FIFO), which matches the paper's description
//! of per-NIC message queues and of a GPU stream executing layers in order.

/// A serial resource: at most one job occupies it at a time.
#[derive(Clone, Debug, Default)]
pub struct Resource {
    busy_until: f64,
    total_busy: f64,
    jobs: u64,
}

impl Resource {
    /// Creates an idle resource at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `duration`, starting no earlier than `ready`.
    ///
    /// Returns `(start, finish)`. The job starts at
    /// `max(ready, previous finish)` — FIFO with no preemption.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or either argument is NaN.
    pub fn reserve(&mut self, ready: f64, duration: f64) -> (f64, f64) {
        assert!(!ready.is_nan() && !duration.is_nan(), "NaN time");
        assert!(
            duration >= 0.0,
            "duration must be non-negative, got {duration}"
        );
        let start = ready.max(self.busy_until);
        let finish = start + duration;
        self.busy_until = finish;
        self.total_busy += duration;
        self.jobs += 1;
        (start, finish)
    }

    /// Earliest time a new job could start.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Total time spent busy since construction (or the last [`Self::reset_accounting`]).
    pub fn total_busy(&self) -> f64 {
        self.total_busy
    }

    /// Number of jobs processed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Clears the utilisation counters without changing `busy_until`.
    pub fn reset_accounting(&mut self) {
        self.total_busy = 0.0;
        self.jobs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_serialize_fifo() {
        let mut r = Resource::new();
        let (s1, f1) = r.reserve(0.0, 2.0);
        let (s2, f2) = r.reserve(0.0, 3.0);
        assert_eq!((s1, f1), (0.0, 2.0));
        assert_eq!((s2, f2), (2.0, 5.0), "second job queues behind the first");
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut r = Resource::new();
        r.reserve(0.0, 1.0);
        let (s, f) = r.reserve(10.0, 1.0);
        assert_eq!((s, f), (10.0, 11.0), "job not ready until 10 starts at 10");
        assert_eq!(r.total_busy(), 2.0, "idle time does not count as busy");
    }

    #[test]
    fn zero_duration_job_is_allowed() {
        let mut r = Resource::new();
        let (s, f) = r.reserve(1.0, 0.0);
        assert_eq!(s, f);
        assert_eq!(r.jobs(), 1);
    }

    #[test]
    fn accounting_reset_keeps_schedule() {
        let mut r = Resource::new();
        r.reserve(0.0, 4.0);
        r.reset_accounting();
        assert_eq!(r.total_busy(), 0.0);
        assert_eq!(r.jobs(), 0);
        assert_eq!(r.busy_until(), 4.0, "reset must not free the resource");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let mut r = Resource::new();
        r.reserve(0.0, -1.0);
    }
}
