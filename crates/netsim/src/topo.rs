//! Hierarchical (two-level) cluster topology: nodes × devices per node.
//!
//! The flat [`crate::net::Network`] models the paper's testbed — every node
//! on one non-blocking switch — and stays untouched. This module adds the
//! generalisation the collective-scheme work needs: `nodes` machines, each
//! hosting `devices_per_node` endpoints, with distinct **intra-node** links
//! (NVLink/PCIe/shared-memory class) and **inter-node** links (Ethernet
//! class) plus an optionally **oversubscribed core** shared by all
//! node-to-node traffic.
//!
//! A transfer between devices on the same node touches only the two device
//! NICs at intra-node speed. A transfer between nodes traverses, in order:
//! the source device NIC (intra speed), the source node's uplink (inter
//! speed), the shared core (aggregate inter bandwidth divided by the
//! oversubscription factor), the destination node's uplink, and the
//! destination device NIC — cut-through, so one uncontended flow costs the
//! sum of latencies plus a single serialisation at the slowest stage.
//! Loop-back (`src == dst`) is free and unrecorded, matching the flat model.

use crate::ledger::TrafficLedger;
use crate::net::{LinkConfig, NodeId};
use crate::resource::Resource;

/// Shape and link parameters of a two-level cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Topology {
    /// Number of physical machines.
    pub nodes: usize,
    /// Endpoints (GPUs/workers) hosted per machine.
    pub devices_per_node: usize,
    /// Link between devices on the same machine.
    pub intra: LinkConfig,
    /// Each machine's uplink into the core.
    pub inter: LinkConfig,
    /// Core oversubscription factor: 1.0 = non-blocking; 4.0 means the core
    /// carries only a quarter of the aggregate uplink bandwidth.
    pub oversubscription: f64,
}

impl Topology {
    /// A flat single-device-per-node cluster with a non-blocking core —
    /// equivalent to the paper's testbed and to [`crate::net::Network`].
    pub fn flat(nodes: usize, link: LinkConfig) -> Self {
        Self {
            nodes,
            devices_per_node: 1,
            intra: link,
            inter: link,
            oversubscription: 1.0,
        }
    }

    /// A two-level cluster: `nodes` machines × `devices_per_node` devices,
    /// fast `intra` links inside a machine, `inter` uplinks into a core
    /// oversubscribed by `oversubscription`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `oversubscription < 1.0`.
    pub fn two_level(
        nodes: usize,
        devices_per_node: usize,
        intra: LinkConfig,
        inter: LinkConfig,
        oversubscription: f64,
    ) -> Self {
        let t = Self {
            nodes,
            devices_per_node,
            intra,
            inter,
            oversubscription,
        };
        t.validate();
        t
    }

    fn validate(&self) {
        assert!(self.nodes > 0, "topology needs at least one node");
        assert!(
            self.devices_per_node > 0,
            "need at least one device per node"
        );
        assert!(
            self.oversubscription >= 1.0,
            "oversubscription must be >= 1.0, got {}",
            self.oversubscription
        );
        assert!(self.intra.bandwidth_gbps > 0.0 && self.inter.bandwidth_gbps > 0.0);
    }

    /// Total endpoints in the cluster.
    pub fn total_devices(&self) -> usize {
        self.nodes * self.devices_per_node
    }

    /// The machine hosting device `dev` (devices are numbered node-major:
    /// node 0 holds devices `0..d`, node 1 holds `d..2d`, …).
    pub fn node_of(&self, dev: usize) -> usize {
        dev / self.devices_per_node
    }

    /// Whether two devices share a machine.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Aggregate core bandwidth in Gbps: the sum of all uplinks divided by
    /// the oversubscription factor.
    pub fn core_bandwidth_gbps(&self) -> f64 {
        self.nodes as f64 * self.inter.bandwidth_gbps / self.oversubscription
    }

    /// Seconds to push `bytes` through the shared core.
    pub fn core_serialize_time(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / (self.core_bandwidth_gbps() * 1e9)
    }
}

/// One endpoint's full-duplex NIC (intra-node speed).
#[derive(Clone, Debug, Default)]
struct DevNic {
    tx: Resource,
    rx: Resource,
}

/// One machine's full-duplex uplink (inter-node speed).
#[derive(Clone, Debug, Default)]
struct Uplink {
    tx: Resource,
    rx: Resource,
}

/// A hierarchical network instantiating a [`Topology`].
///
/// Mirrors [`crate::net::Network`]'s interface — `transfer(ready, src, dst,
/// bytes) -> done` — over the two-level resource graph, with the ledger
/// additionally counting bytes crossing the shared core.
#[derive(Clone, Debug)]
pub struct HierNetwork {
    topo: Topology,
    devs: Vec<DevNic>,
    uplinks: Vec<Uplink>,
    core: Resource,
    ledger: TrafficLedger,
}

impl HierNetwork {
    /// Builds the resource graph for `topo`.
    pub fn new(topo: Topology) -> Self {
        topo.validate();
        Self {
            topo,
            devs: vec![DevNic::default(); topo.total_devices()],
            uplinks: vec![Uplink::default(); topo.nodes],
            core: Resource::default(),
            ledger: TrafficLedger::new(topo.total_devices()),
        }
    }

    /// The topology this network instantiates.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Number of endpoints.
    pub fn devices(&self) -> usize {
        self.devs.len()
    }

    /// The traffic ledger (per-device tx/rx plus core-crossing bytes).
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (e.g. to reset between iterations).
    pub fn ledger_mut(&mut self) -> &mut TrafficLedger {
        &mut self.ledger
    }

    /// Schedules a transfer of `bytes` from device `src` to device `dst`,
    /// ready to send at `ready`. Returns the arrival time of the last byte.
    ///
    /// Same-node transfers touch only the two device NICs at intra-node
    /// speed. Cross-node transfers additionally serialise through both
    /// uplinks and the shared core. Loop-back is free and unrecorded.
    ///
    /// # Panics
    ///
    /// Panics if a device index is out of range or `ready` is negative/NaN.
    pub fn transfer(&mut self, ready: f64, src: NodeId, dst: NodeId, bytes: u64) -> f64 {
        assert!(ready >= 0.0 && !ready.is_nan(), "bad ready time {ready}");
        assert!(src.0 < self.devs.len(), "src {src} out of range");
        assert!(dst.0 < self.devs.len(), "dst {dst} out of range");
        if src == dst {
            return ready;
        }
        self.ledger.record(src.0, dst.0, bytes);
        let d_intra = self.topo.intra.serialize_time(bytes);

        if self.topo.same_node(src.0, dst.0) {
            let (start, _) = self.devs[src.0].tx.reserve(ready, d_intra);
            let (_, done) = self.devs[dst.0]
                .rx
                .reserve(start + self.topo.intra.latency_s, d_intra);
            return done;
        }

        self.ledger.record_core(bytes);
        let d_inter = self.topo.inter.serialize_time(bytes);
        let src_node = self.topo.node_of(src.0);
        let dst_node = self.topo.node_of(dst.0);
        // Two intra hops (device↔uplink at each end) plus one core traversal.
        let lat = 2.0 * self.topo.intra.latency_s + self.topo.inter.latency_s;

        // Cut-through chain: every stage starts streaming as soon as the
        // previous stage starts and its own queue frees, and each stage is
        // charged its full serialisation time (conserving per-stage
        // bandwidth under contention). The flow's last byte clears when the
        // *slowest* stage finishes, so completion is the worst stage finish
        // plus the path latency. A non-blocking core (oversubscription 1.0)
        // is at least as fast as the uplinks feeding it and never queues —
        // it is skipped as a resource but still counted in the ledger.
        let (s1, f1) = self.devs[src.0].tx.reserve(ready, d_intra);
        let (s2, f2) = self.uplinks[src_node].tx.reserve(s1, d_inter);
        let mut worst = f1.max(f2);
        let mut head = s2;
        if self.topo.oversubscription > 1.0 {
            let d_core = self.topo.core_serialize_time(bytes);
            let (s3, f3) = self.core.reserve(head, d_core);
            worst = worst.max(f3);
            head = s3;
        }
        let (s4, f4) = self.uplinks[dst_node].rx.reserve(head, d_inter);
        let (_, f5) = self.devs[dst.0].rx.reserve(s4, d_intra);
        worst.max(f4).max(f5) + lat
    }

    /// Earliest time device `dev` could begin a new outbound transfer.
    pub fn tx_free_at(&self, dev: NodeId) -> f64 {
        self.devs[dev.0].tx.busy_until()
    }

    /// Earliest time the shared core drains.
    pub fn core_free_at(&self) -> f64 {
        self.core.busy_until()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(gbps: f64, lat: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_gbps: gbps,
            latency_s: lat,
        }
    }

    /// 4 nodes × 2 devices, 100 Gbps intra / 10 Gbps inter, 2× oversubscribed.
    fn two_level() -> HierNetwork {
        HierNetwork::new(Topology::two_level(
            4,
            2,
            link(100.0, 1e-6),
            link(10.0, 50e-6),
            2.0,
        ))
    }

    #[test]
    fn node_major_device_numbering() {
        let t = Topology::two_level(3, 4, link(1.0, 0.0), link(1.0, 0.0), 1.0);
        assert_eq!(t.total_devices(), 12);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(11), 2);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn flat_matches_single_level_cost() {
        // One device per node, non-blocking core at aggregate uplink speed:
        // an uncontended flow costs latency + serialisation, like `Network`
        // (plus the free intra hops and the intra latency at each end).
        let l = link(8.0, 0.001); // 8 Gbps = 1 GB/s
        let mut n = HierNetwork::new(Topology::flat(2, l));
        let done = n.transfer(0.0, NodeId(0), NodeId(1), 1_000_000_000);
        // intra == inter here, core = 2× uplink speed: serialisation bound
        // by the 1 GB/s stages → ≈ 1 s + latencies.
        assert!((done - (1.0 + 3.0 * 0.001)).abs() < 1e-6, "got {done}");
    }

    #[test]
    fn intra_node_transfer_uses_fast_link_and_skips_core() {
        let mut n = two_level();
        // 100 Gbps = 12.5 GB/s → 1 GB in 0.08 s.
        let done = n.transfer(0.0, NodeId(0), NodeId(1), 1_000_000_000);
        assert!((done - (0.08 + 1e-6)).abs() < 1e-6, "got {done}");
        assert_eq!(n.ledger().core_bytes(), 0);
        assert_eq!(n.ledger().tx_bytes(0), 1_000_000_000);
    }

    #[test]
    fn inter_node_transfer_is_uplink_bound() {
        let mut n = two_level();
        // 10 Gbps = 1.25 GB/s → 1 GB in 0.8 s; core (4×10/2 = 20 Gbps) and
        // intra stages are faster, so the uplink serialisation dominates.
        let done = n.transfer(0.0, NodeId(0), NodeId(2), 1_000_000_000);
        assert!((done - 0.8).abs() < 0.01, "got {done}");
        assert_eq!(n.ledger().core_bytes(), 1_000_000_000);
    }

    #[test]
    fn oversubscribed_core_serialises_concurrent_flows() {
        // 4 uplinks × 10 Gbps but the core carries only 20 Gbps: four
        // simultaneous cross-node flows finish ≈ 2× slower than one.
        let mut n = two_level();
        let b = 1_000_000_000u64;
        let mut last: f64 = 0.0;
        // Distinct src/dst nodes so uplinks never contend — only the core.
        for (s, d) in [(0, 2), (2, 4), (4, 6), (6, 0)] {
            last = last.max(n.transfer(0.0, NodeId(s), NodeId(d), b));
        }
        // Each flow needs 0.4 s of core time; 4 flows serialise to 1.6 s.
        assert!(last > 1.55, "core should bind: {last}");
        assert_eq!(n.ledger().core_bytes(), 4 * b);
    }

    #[test]
    fn non_blocking_core_does_not_bind() {
        let mut n = HierNetwork::new(Topology::two_level(
            4,
            2,
            link(100.0, 1e-6),
            link(10.0, 50e-6),
            1.0,
        ));
        let b = 1_000_000_000u64;
        let mut last: f64 = 0.0;
        for (s, d) in [(0, 2), (2, 4), (4, 6), (6, 0)] {
            last = last.max(n.transfer(0.0, NodeId(s), NodeId(d), b));
        }
        // Core = 40 Gbps ≥ any single flow's 10 Gbps demand; flows overlap
        // imperfectly (single serial core resource) but far better than the
        // oversubscribed case: each needs only 0.2 s of core time.
        assert!(last < 1.0, "non-blocking core overlaps flows: {last}");
    }

    #[test]
    fn loopback_is_free_and_unrecorded() {
        let mut n = two_level();
        let done = n.transfer(3.0, NodeId(5), NodeId(5), u64::MAX);
        assert_eq!(done, 3.0);
        assert_eq!(n.ledger().total_bytes(), 0);
    }

    #[test]
    fn more_inter_bandwidth_never_slows_a_flow() {
        let b = 64_000_000u64;
        let mut prev = f64::INFINITY;
        for gbps in [1.0, 5.0, 10.0, 40.0] {
            let mut n = HierNetwork::new(Topology::two_level(
                2,
                2,
                link(100.0, 1e-6),
                link(gbps, 50e-6),
                2.0,
            ));
            let done = n.transfer(0.0, NodeId(0), NodeId(2), b);
            assert!(
                done <= prev + 1e-12,
                "{gbps} Gbps regressed: {done} > {prev}"
            );
            prev = done;
        }
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn undersubscription_rejected() {
        Topology::two_level(2, 1, link(1.0, 0.0), link(1.0, 0.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_device_panics() {
        two_level().transfer(0.0, NodeId(0), NodeId(99), 1);
    }
}
