//! The cluster network: N nodes with full-duplex NICs on a non-blocking switch.
//!
//! The model matches the paper's testbed topology — every node hangs off one
//! Ethernet switch, so the only contended resources are the per-node NICs.
//! A transfer of `S` bytes from `a` to `b`:
//!
//! * occupies `a`'s **tx** queue for `S / bandwidth`,
//! * occupies `b`'s **rx** queue for the same duration, offset by the wire
//!   latency (cut-through forwarding, so a single uncontended flow completes
//!   in `latency + S/bandwidth`, not `latency + 2·S/bandwidth`),
//! * and is recorded in the [`TrafficLedger`].
//!
//! Loop-back transfers (`a == a`) are free and unrecorded: in the real system
//! a worker colocated with a PS shard synchronises that shard through local
//! memory (the paper's Table 1 subtracts those, e.g. the `P1 + P2 − 2` term).

use crate::ledger::TrafficLedger;
use crate::resource::Resource;

/// Identifies a cluster node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Link parameters shared by every node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Full-duplex per-direction NIC bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-way message latency in seconds.
    pub latency_s: f64,
}

impl LinkConfig {
    /// A `bandwidth`-GbE link with a typical 50µs software+switch latency.
    pub fn gbe(bandwidth_gbps: f64) -> Self {
        Self {
            bandwidth_gbps,
            latency_s: 50e-6,
        }
    }

    /// Seconds needed to serialise `bytes` onto the wire at this bandwidth.
    pub fn serialize_time(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / (self.bandwidth_gbps * 1e9)
    }
}

/// One node's full-duplex NIC.
#[derive(Clone, Debug, Default)]
struct Nic {
    tx: Resource,
    rx: Resource,
}

/// A switched cluster network of `n` nodes.
#[derive(Clone, Debug)]
pub struct Network {
    nics: Vec<Nic>,
    config: LinkConfig,
    ledger: TrafficLedger,
}

impl Network {
    /// Creates a network of `nodes` nodes with the given link parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or bandwidth is not positive.
    pub fn new(nodes: usize, config: LinkConfig) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        assert!(config.bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(config.latency_s >= 0.0, "latency must be non-negative");
        Self {
            nics: vec![Nic::default(); nodes],
            config,
            ledger: TrafficLedger::new(nodes),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// The link configuration.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// The traffic ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Mutable access to the traffic ledger (e.g. to reset between iterations).
    pub fn ledger_mut(&mut self) -> &mut TrafficLedger {
        &mut self.ledger
    }

    /// Schedules a transfer of `bytes` from `src` to `dst`, becoming ready to
    /// send at time `ready`. Returns the arrival time of the last byte.
    ///
    /// Loop-back transfers complete immediately at `ready` and are not
    /// recorded as network traffic.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range or `ready` is negative/NaN.
    pub fn transfer(&mut self, ready: f64, src: NodeId, dst: NodeId, bytes: u64) -> f64 {
        assert!(ready >= 0.0 && !ready.is_nan(), "bad ready time {ready}");
        assert!(src.0 < self.nics.len(), "src {src} out of range");
        assert!(dst.0 < self.nics.len(), "dst {dst} out of range");
        if src == dst {
            return ready;
        }
        self.ledger.record(src.0, dst.0, bytes);
        let dur = self.config.serialize_time(bytes);
        let lat = self.config.latency_s;

        // The sender serialises as soon as its tx queue frees; if the
        // receiver is still busy, the message waits in the switch buffer (no
        // head-of-line blocking of the sender by a congested receiver) and
        // the rx queue drains it when free. Both NICs are charged the full
        // serialisation time, so per-direction bandwidth is conserved.
        let (start, _tx_done) = self.nics[src.0].tx.reserve(ready, dur);
        let (_, rx_done) = self.nics[dst.0].rx.reserve(start + lat, dur);
        rx_done
    }

    /// Earliest time `node` could begin a new outbound transfer.
    pub fn tx_free_at(&self, node: NodeId) -> f64 {
        self.nics[node.0].tx.busy_until()
    }

    /// Earliest time `node`'s receive queue drains.
    pub fn rx_free_at(&self, node: NodeId) -> f64 {
        self.nics[node.0].rx.busy_until()
    }

    /// Total busy time of `node`'s tx queue (for utilisation reports).
    pub fn tx_busy(&self, node: NodeId) -> f64 {
        self.nics[node.0].tx.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: usize, gbps: f64) -> Network {
        Network::new(
            nodes,
            LinkConfig {
                bandwidth_gbps: gbps,
                latency_s: 0.001,
            },
        )
    }

    #[test]
    fn single_flow_takes_latency_plus_serialization() {
        let mut n = net(2, 8.0); // 8 Gbps = 1 GB/s
        let done = n.transfer(0.0, NodeId(0), NodeId(1), 1_000_000_000);
        assert!((done - 1.001).abs() < 1e-9, "got {done}");
    }

    #[test]
    fn flows_sharing_tx_nic_serialize() {
        let mut n = net(3, 8.0);
        let d1 = n.transfer(0.0, NodeId(0), NodeId(1), 1_000_000_000);
        let d2 = n.transfer(0.0, NodeId(0), NodeId(2), 1_000_000_000);
        assert!((d1 - 1.001).abs() < 1e-9);
        assert!((d2 - 2.001).abs() < 1e-9, "second flow queues on tx: {d2}");
    }

    #[test]
    fn flows_sharing_rx_nic_serialize() {
        let mut n = net(3, 8.0);
        let d1 = n.transfer(0.0, NodeId(1), NodeId(0), 1_000_000_000);
        let d2 = n.transfer(0.0, NodeId(2), NodeId(0), 1_000_000_000);
        assert!((d1 - 1.001).abs() < 1e-9);
        assert!(d2 >= 2.0, "incast serialises at the receiver: {d2}");
    }

    #[test]
    fn full_duplex_directions_do_not_interfere() {
        let mut n = net(2, 8.0);
        let d1 = n.transfer(0.0, NodeId(0), NodeId(1), 1_000_000_000);
        let d2 = n.transfer(0.0, NodeId(1), NodeId(0), 1_000_000_000);
        assert!((d1 - 1.001).abs() < 1e-9);
        assert!(
            (d2 - 1.001).abs() < 1e-9,
            "reverse direction is independent: {d2}"
        );
    }

    #[test]
    fn loopback_is_free_and_unrecorded() {
        let mut n = net(2, 1.0);
        let done = n.transfer(5.0, NodeId(1), NodeId(1), u64::MAX);
        assert_eq!(done, 5.0);
        assert_eq!(n.ledger().total_bytes(), 0);
    }

    #[test]
    fn ledger_records_transfers() {
        let mut n = net(2, 10.0);
        n.transfer(0.0, NodeId(0), NodeId(1), 1234);
        assert_eq!(n.ledger().tx_bytes(0), 1234);
        assert_eq!(n.ledger().rx_bytes(1), 1234);
    }

    #[test]
    fn ready_time_delays_start() {
        let mut n = net(2, 8.0);
        let done = n.transfer(7.0, NodeId(0), NodeId(1), 1_000_000_000);
        assert!((done - 8.001).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scales_transfer_time() {
        let mut slow = net(2, 1.0);
        let mut fast = net(2, 40.0);
        let bytes = 500_000_000u64;
        let t_slow = slow.transfer(0.0, NodeId(0), NodeId(1), bytes);
        let t_fast = fast.transfer(0.0, NodeId(0), NodeId(1), bytes);
        let ratio = (t_slow - 0.001) / (t_fast - 0.001);
        assert!((ratio - 40.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let mut n = net(2, 1.0);
        n.transfer(0.0, NodeId(0), NodeId(5), 10);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_network_rejected() {
        let _ = Network::new(0, LinkConfig::gbe(10.0));
    }

    #[test]
    fn gbe_helper_sets_bandwidth() {
        let cfg = LinkConfig::gbe(10.0);
        assert_eq!(cfg.bandwidth_gbps, 10.0);
        // 10 Gbps → 1.25 GB/s: 1.25e9 bytes serialise in 1 second.
        assert!((cfg.serialize_time(1_250_000_000) - 1.0).abs() < 1e-9);
    }
}
