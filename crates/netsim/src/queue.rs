//! A deterministic discrete-event queue.
//!
//! Events are ordered by timestamp; ties are broken by insertion sequence so
//! a run is a pure function of the schedule calls — the property tests assert
//! both monotonicity and determinism.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped event with a tie-breaking sequence number.
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue with a simulated clock.
///
/// # Examples
///
/// ```
/// let mut q = poseidon_netsim::EventQueue::new();
/// q.schedule_at(2.0, "late");
/// q.schedule_at(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.now(), 1.0);
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: f64,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time.
    pub fn schedule_at(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` after a non-negative `delay` from the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Peeks at the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, 'c');
        q.schedule_at(1.0, 'a');
        q.schedule_at(2.0, 'b');
        assert_eq!(q.pop(), Some((1.0, 'a')));
        assert_eq!(q.pop(), Some((2.0, 'b')));
        assert_eq!(q.pop(), Some((3.0, 'c')));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 3.0);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(1.0, 2);
        q.schedule_at(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_only_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, ());
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.peek_time(), Some(5.0));
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, 'x');
        q.pop();
        q.schedule_in(1.5, 'y');
        assert_eq!(q.pop(), Some((3.5, 'y')));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, ());
        q.pop();
        q.schedule_at(1.0, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_in(-0.1, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(f64::NAN, ());
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1.0, ());
        q.schedule_at(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
