//! Microbenchmarks for the tensor kernels used on the hot paths of the
//! threaded runtime: dense GEMM (FC forward/backward), rank-1 reconstruction
//! (the SFB receive path) and 1-bit quantization (the CNTK baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poseidon_tensor::quantize::OneBitQuantizer;
use poseidon_tensor::{Matrix, SfBatch, SufficientFactor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    poseidon_tensor::init::gaussian(&mut m, 0.0, 1.0, &mut StdRng::seed_from_u64(seed));
    m
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let a = random(n, n, 1);
        let b = random(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_sf_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("sf_reconstruct");
    for &(m, n, k) in &[(256usize, 256usize, 32usize), (1024, 1024, 32)] {
        let batch = SfBatch::from_factors(
            (0..k)
                .map(|i| {
                    SufficientFactor::new(
                        random(1, m, i as u64).as_slice().to_vec(),
                        random(1, n, 100 + i as u64).as_slice().to_vec(),
                    )
                })
                .collect(),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}xK{k}")),
            &batch,
            |bench, batch| {
                bench.iter(|| std::hint::black_box(batch.reconstruct()));
            },
        );
    }
    g.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let grad = random(512, 512, 3);
    c.bench_function("one_bit_quantize_512x512", |b| {
        let mut q = OneBitQuantizer::new(512, 512);
        b.iter(|| std::hint::black_box(q.quantize(&grad)));
    });
}

criterion_group!(benches, bench_gemm, bench_sf_reconstruct, bench_quantize);
criterion_main!(benches);
