//! Byte-level serialisation of matrices and sufficient factors.
//!
//! The threaded runtime moves every synchronisation payload through this
//! module so that the measured number of bytes on the in-process transport is
//! exactly the number that would cross a real network — the integration tests
//! compare those measurements against the analytic cost model of Table 1.
//!
//! The format is little-endian and self-describing:
//!
//! ```text
//! Matrix:  u32 rows | u32 cols | rows*cols * f32
//! SfBatch: u32 count | u32 m | u32 n | count * (m*f32 ++ n*f32)
//! ```

use crate::{Matrix, SfBatch, SufficientFactor};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced while decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the declared payload was complete.
    Truncated,
    /// A declared dimension was zero or implausibly large.
    BadDimension(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadDimension(d) => write!(f, "bad dimension {d}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on any single declared dimension; guards against corrupt
/// headers causing huge allocations. VGG19-22K's largest axis is 25,088.
const MAX_DIM: u64 = 1 << 27;

/// Serialised size in bytes of a `rows × cols` matrix.
pub fn matrix_wire_bytes(rows: usize, cols: usize) -> usize {
    8 + rows * cols * 4
}

/// Serialised size in bytes of `count` sufficient-factor pairs of shape `(m, n)`.
pub fn sf_batch_wire_bytes(count: usize, m: usize, n: usize) -> usize {
    12 + count * (m + n) * 4
}

/// Encodes a matrix.
pub fn encode_matrix(m: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(matrix_wire_bytes(m.rows(), m.cols()));
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a matrix previously produced by [`encode_matrix`].
pub fn decode_matrix(mut buf: &[u8]) -> Result<Matrix, DecodeError> {
    let (rows, cols) = decode_header(&mut buf)?;
    let n = rows * cols;
    if buf.remaining() < n * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Encodes a batch of sufficient factors.
///
/// # Panics
///
/// Panics if the batch is empty (an empty batch has no shape to declare).
pub fn encode_sf_batch(batch: &SfBatch) -> Bytes {
    let (m, n) = batch.shape().expect("cannot encode an empty SfBatch");
    let mut buf = BytesMut::with_capacity(sf_batch_wire_bytes(batch.len(), m, n));
    buf.put_u32_le(batch.len() as u32);
    buf.put_u32_le(m as u32);
    buf.put_u32_le(n as u32);
    for sf in batch.factors() {
        for &v in &sf.u {
            buf.put_f32_le(v);
        }
        for &v in &sf.v {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a sufficient-factor batch previously produced by [`encode_sf_batch`].
pub fn decode_sf_batch(mut buf: &[u8]) -> Result<SfBatch, DecodeError> {
    if buf.remaining() < 12 {
        return Err(DecodeError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    let m = check_dim(buf.get_u32_le() as u64)?;
    let n = check_dim(buf.get_u32_le() as u64)?;
    if buf.remaining() < count * (m + n) * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut factors = Vec::with_capacity(count);
    for _ in 0..count {
        let mut u = Vec::with_capacity(m);
        for _ in 0..m {
            u.push(buf.get_f32_le());
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(buf.get_f32_le());
        }
        factors.push(SufficientFactor::new(u, v));
    }
    Ok(SfBatch::from_factors(factors))
}

fn decode_header(buf: &mut &[u8]) -> Result<(usize, usize), DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let rows = check_dim(buf.get_u32_le() as u64)?;
    let cols = check_dim(buf.get_u32_le() as u64)?;
    Ok((rows, cols))
}

fn check_dim(d: u64) -> Result<usize, DecodeError> {
    if d == 0 || d > MAX_DIM {
        return Err(DecodeError::BadDimension(d));
    }
    Ok(d as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_roundtrip_is_exact() {
        let mut m = Matrix::zeros(7, 5);
        crate::init::gaussian(&mut m, 0.0, 3.0, &mut StdRng::seed_from_u64(9));
        let bytes = encode_matrix(&m);
        assert_eq!(bytes.len(), matrix_wire_bytes(7, 5));
        let back = decode_matrix(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn sf_batch_roundtrip_is_exact() {
        let batch = SfBatch::from_factors(vec![
            SufficientFactor::new(vec![1.0, 2.0], vec![3.0]),
            SufficientFactor::new(vec![-1.5, 0.25], vec![4.0]),
        ]);
        let bytes = encode_sf_batch(&batch);
        assert_eq!(bytes.len(), sf_batch_wire_bytes(2, 2, 1));
        let back = decode_sf_batch(&bytes).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn truncated_matrix_is_rejected() {
        let bytes = encode_matrix(&Matrix::filled(3, 3, 1.0));
        assert_eq!(
            decode_matrix(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode_matrix(&bytes[..4]), Err(DecodeError::Truncated));
    }

    #[test]
    fn zero_dimension_is_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(0);
        raw.put_u32_le(5);
        assert!(matches!(
            decode_matrix(&raw),
            Err(DecodeError::BadDimension(0))
        ));
    }

    #[test]
    fn truncated_sf_batch_is_rejected() {
        let batch = SfBatch::from_factors(vec![SufficientFactor::new(vec![1.0; 4], vec![2.0; 4])]);
        let bytes = encode_sf_batch(&batch);
        assert_eq!(
            decode_sf_batch(&bytes[..bytes.len() - 2]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn wire_byte_formulas_match_paper_units() {
        // A 4096x4096 FC gradient: 2MN floats for a PS round trip means the
        // one-way dense message is MN floats = MN*4 bytes (+8 header).
        assert_eq!(matrix_wire_bytes(4096, 4096), 4096 * 4096 * 4 + 8);
        // K=32 SF pairs: K(M+N) floats one way.
        assert_eq!(
            sf_batch_wire_bytes(32, 4096, 4096),
            32 * (4096 + 4096) * 4 + 12
        );
    }
}
