//! Deterministic random initialisation for parameters and synthetic data.
//!
//! All initialisers take an explicit [`rand::Rng`] so every experiment in the
//! repository is reproducible from a seed. The Xavier/Glorot scheme matches
//! what Caffe used for the networks in the paper's evaluation.

use crate::Matrix;
use rand::Rng;

/// Fills `m` with samples from `U(-limit, limit)`.
pub fn uniform(m: &mut Matrix, limit: f32, rng: &mut impl Rng) {
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-limit..limit);
    }
}

/// Fills `m` with samples from `N(mean, std²)` using Box–Muller.
pub fn gaussian(m: &mut Matrix, mean: f32, std: f32, rng: &mut impl Rng) {
    for v in m.as_mut_slice() {
        *v = mean + std * standard_normal(rng);
    }
}

/// Xavier/Glorot uniform initialisation for a layer with the given fan-in and
/// fan-out: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier(m: &mut Matrix, fan_in: usize, fan_out: usize, rng: &mut impl Rng) {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(m, limit, rng);
}

/// Draws one standard normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // Re-draw until u1 is non-zero so ln(u1) is finite.
    let mut u1: f32 = rng.gen();
    while u1 <= f32::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Matrix::zeros(16, 16);
        uniform(&mut m, 0.25, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x.abs() < 0.25));
        assert!(m.norm() > 0.0, "initialisation should not be all-zero");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Matrix::zeros(100, 100);
        gaussian(&mut m, 1.0, 2.0, &mut rng);
        let n = m.len() as f32;
        let mean = m.sum() / n;
        let var = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n;
        assert!(
            (mean - 1.0).abs() < 0.1,
            "sample mean {mean} too far from 1.0"
        );
        assert!(
            (var - 4.0).abs() < 0.3,
            "sample variance {var} too far from 4.0"
        );
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut big = Matrix::zeros(8, 8);
        xavier(&mut big, 10_000, 10_000, &mut rng);
        let limit = (6.0f32 / 20_000.0).sqrt();
        assert!(big.max_abs() < limit);
    }

    #[test]
    fn seeded_init_is_reproducible() {
        let mut a = Matrix::zeros(4, 4);
        let mut b = Matrix::zeros(4, 4);
        xavier(&mut a, 4, 4, &mut StdRng::seed_from_u64(42));
        xavier(&mut b, 4, 4, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = standard_normal(&mut rng);
            assert!(x.is_finite());
        }
    }
}
