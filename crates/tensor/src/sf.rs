//! Sufficient factors: the rank-1 decomposition of FC-layer gradients.
//!
//! For a fully-connected layer trained with SGD, the gradient contributed by a
//! single training sample is a rank-1 matrix `∇W = u · vᵀ` (Section 2.1 of the
//! paper), where `u` is the back-propagated error at the layer output and `v`
//! is the layer input activation. Sufficient-factor broadcasting (SFB, Xie et
//! al.) transmits the `(u, v)` pairs instead of the `M×N` dense gradient and
//! reconstructs the gradient at the receiver.
//!
//! Unlike dense gradients, sufficient factors are *not additive over samples*:
//! a batch of `K` samples needs `K` pairs on the wire, so the wire cost is
//! `K(M+N)` floats versus `M·N` for the dense matrix — the trade-off the
//! HybComm cost model (Table 1) arbitrates.

use crate::Matrix;

/// One sufficient-factor pair `(u, v)` with `∇W = u · vᵀ`.
#[derive(Clone, Debug, PartialEq)]
pub struct SufficientFactor {
    /// Output-side factor; length equals the gradient's row count `M`.
    pub u: Vec<f32>,
    /// Input-side factor; length equals the gradient's column count `N`.
    pub v: Vec<f32>,
}

impl SufficientFactor {
    /// Creates a pair from the two factor vectors.
    ///
    /// # Panics
    ///
    /// Panics if either vector is empty.
    pub fn new(u: Vec<f32>, v: Vec<f32>) -> Self {
        assert!(
            !u.is_empty() && !v.is_empty(),
            "sufficient factors must be non-empty"
        );
        Self { u, v }
    }

    /// Shape `(M, N)` of the gradient this pair reconstructs.
    pub fn shape(&self) -> (usize, usize) {
        (self.u.len(), self.v.len())
    }

    /// Number of f32 values this pair puts on the wire (`M + N`).
    pub fn wire_floats(&self) -> usize {
        self.u.len() + self.v.len()
    }

    /// Accumulates `alpha · u · vᵀ` into `grad`.
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not have shape `(M, N)`.
    pub fn accumulate_into(&self, grad: &mut Matrix, alpha: f32) {
        grad.rank1_update(alpha, &self.u, &self.v);
    }

    /// Reconstructs the dense rank-1 gradient `u · vᵀ`.
    pub fn to_dense(&self) -> Matrix {
        let (m, n) = self.shape();
        let mut g = Matrix::zeros(m, n);
        self.accumulate_into(&mut g, 1.0);
        g
    }
}

/// A batch of sufficient factors (one per training sample), all sharing the
/// same gradient shape.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SfBatch {
    factors: Vec<SufficientFactor>,
}

impl SfBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from existing pairs.
    ///
    /// # Panics
    ///
    /// Panics if the pairs disagree on shape.
    pub fn from_factors(factors: Vec<SufficientFactor>) -> Self {
        if let Some(first) = factors.first() {
            let shape = first.shape();
            assert!(
                factors.iter().all(|f| f.shape() == shape),
                "all sufficient factors in a batch must share one shape"
            );
        }
        Self { factors }
    }

    /// Appends a pair.
    ///
    /// # Panics
    ///
    /// Panics if `sf`'s shape differs from the pairs already in the batch.
    pub fn push(&mut self, sf: SufficientFactor) {
        if let Some(first) = self.factors.first() {
            assert_eq!(first.shape(), sf.shape(), "shape mismatch within SfBatch");
        }
        self.factors.push(sf);
    }

    /// Number of pairs (i.e. samples) in the batch.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// `true` iff the batch holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The pairs in sample order.
    pub fn factors(&self) -> &[SufficientFactor] {
        &self.factors
    }

    /// Gradient shape `(M, N)`, or `None` for an empty batch.
    pub fn shape(&self) -> Option<(usize, usize)> {
        self.factors.first().map(SufficientFactor::shape)
    }

    /// Total f32 values on the wire: `K(M+N)`.
    pub fn wire_floats(&self) -> usize {
        self.factors.iter().map(SufficientFactor::wire_floats).sum()
    }

    /// Reconstructs the dense batch gradient `Σₖ uₖ·vₖᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty.
    pub fn reconstruct(&self) -> Matrix {
        let (m, n) = self
            .shape()
            .expect("cannot reconstruct from an empty SfBatch");
        let mut g = Matrix::zeros(m, n);
        self.accumulate_into(&mut g, 1.0);
        g
    }

    /// Accumulates `alpha · Σₖ uₖ·vₖᵀ` into `grad`.
    pub fn accumulate_into(&self, grad: &mut Matrix, alpha: f32) {
        for f in &self.factors {
            f.accumulate_into(grad, alpha);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pair_reconstructs_outer_product() {
        let sf = SufficientFactor::new(vec![1.0, 2.0], vec![3.0, 4.0, 5.0]);
        let g = sf.to_dense();
        assert_eq!(g.shape(), (2, 3));
        assert_eq!(g.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert_eq!(sf.wire_floats(), 5);
    }

    #[test]
    fn batch_reconstruction_is_sum_of_rank1_terms() {
        let a = SufficientFactor::new(vec![1.0, 0.0], vec![1.0, 1.0]);
        let b = SufficientFactor::new(vec![0.0, 1.0], vec![2.0, -1.0]);
        let batch = SfBatch::from_factors(vec![a.clone(), b.clone()]);
        let dense = batch.reconstruct();
        let mut expect = a.to_dense();
        expect.add_assign(&b.to_dense());
        assert_eq!(dense, expect);
        assert_eq!(batch.wire_floats(), 8);
        assert_eq!(batch.shape(), Some((2, 2)));
    }

    #[test]
    fn accumulate_with_alpha_scales() {
        let sf = SufficientFactor::new(vec![2.0], vec![3.0]);
        let mut g = Matrix::zeros(1, 1);
        SfBatch::from_factors(vec![sf]).accumulate_into(&mut g, 0.5);
        assert_eq!(g[(0, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn push_rejects_mixed_shapes() {
        let mut batch = SfBatch::new();
        batch.push(SufficientFactor::new(vec![1.0], vec![1.0, 2.0]));
        batch.push(SufficientFactor::new(vec![1.0, 2.0], vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "must share one shape")]
    fn from_factors_rejects_mixed_shapes() {
        let _ = SfBatch::from_factors(vec![
            SufficientFactor::new(vec![1.0], vec![1.0]),
            SufficientFactor::new(vec![1.0, 2.0], vec![1.0]),
        ]);
    }

    #[test]
    #[should_panic(expected = "empty SfBatch")]
    fn reconstruct_empty_batch_panics() {
        let _ = SfBatch::new().reconstruct();
    }

    #[test]
    fn empty_batch_reports_empty() {
        let batch = SfBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.wire_floats(), 0);
        assert_eq!(batch.shape(), None);
    }
}
