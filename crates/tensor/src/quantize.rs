//! 1-bit gradient quantization with error-residual feedback.
//!
//! This is the communication-reduction baseline the paper compares against in
//! Section 5.3 (the strategy used by CNTK, Seide et al. 2014). Each gradient
//! element is quantized to its sign; the magnitude information is carried by
//! two per-matrix scales (the mean of the positive and of the negative
//! elements), and the quantization error is added back into the *next*
//! iteration's gradient ("residual feedback"), so the error behaves like a
//! delayed update rather than a lost one.
//!
//! Wire cost: 1 bit per element plus two f32 scales, i.e. a 32× reduction on
//! large matrices — but statistically lossy, which Figure 11 of the paper
//! (and our reproduction of it) shows as slower convergence.

use crate::Matrix;

/// Dense bit-packed 1-bit encoding of a gradient matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedGrad {
    rows: usize,
    cols: usize,
    /// Mean magnitude assigned to elements quantized as positive.
    pos_scale: f32,
    /// Mean magnitude assigned to elements quantized as negative (≤ 0).
    neg_scale: f32,
    /// Bit-packed signs, row-major, 1 = positive.
    bits: Vec<u64>,
}

impl QuantizedGrad {
    /// Shape of the encoded gradient.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of bytes this encoding puts on the wire.
    ///
    /// Two dimension words, two scales and the packed bit vector. This is the
    /// figure the traffic accounting uses.
    pub fn wire_bytes(&self) -> usize {
        4 + 4 + 4 + 4 + self.bits.len() * 8
    }

    /// Serialises to the wire format counted by [`Self::wire_bytes`].
    pub fn to_bytes(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::with_capacity(self.wire_bytes());
        buf.put_u32_le(self.rows as u32);
        buf.put_u32_le(self.cols as u32);
        buf.put_f32_le(self.pos_scale);
        buf.put_f32_le(self.neg_scale);
        for &w in &self.bits {
            buf.put_u64_le(w);
        }
        buf.freeze()
    }

    /// Decodes a buffer produced by [`Self::to_bytes`].
    ///
    /// Returns `None` if the buffer is truncated or declares a zero dimension.
    pub fn from_bytes(mut buf: &[u8]) -> Option<Self> {
        use bytes::Buf;
        if buf.remaining() < 16 {
            return None;
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        if rows == 0 || cols == 0 {
            return None;
        }
        let pos_scale = buf.get_f32_le();
        let neg_scale = buf.get_f32_le();
        let words = (rows * cols).div_ceil(64);
        if buf.remaining() < words * 8 {
            return None;
        }
        let bits = (0..words).map(|_| buf.get_u64_le()).collect();
        Some(Self {
            rows,
            cols,
            pos_scale,
            neg_scale,
            bits,
        })
    }

    /// Decodes into a dense gradient matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            let word = self.bits[i / 64];
            let bit = (word >> (i % 64)) & 1;
            *v = if bit == 1 {
                self.pos_scale
            } else {
                self.neg_scale
            };
        }
        out
    }
}

/// Stateful 1-bit quantizer for one parameter matrix.
///
/// Keeps the error residual between calls; the residual is added to the next
/// gradient before quantization, as in Seide et al.
#[derive(Clone, Debug)]
pub struct OneBitQuantizer {
    residual: Matrix,
}

impl OneBitQuantizer {
    /// Creates a quantizer for gradients of shape `rows × cols` with a zero
    /// initial residual.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            residual: Matrix::zeros(rows, cols),
        }
    }

    /// Current error residual (what has been "owed" to the model so far).
    pub fn residual(&self) -> &Matrix {
        &self.residual
    }

    /// Restores a residual exported earlier (checkpoint/handoff restore).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the shape given at construction.
    pub fn set_residual(&mut self, residual: Matrix) {
        assert_eq!(
            residual.shape(),
            self.residual.shape(),
            "residual shape mismatch"
        );
        self.residual = residual;
    }

    /// Quantizes `grad + residual` to one bit per element and updates the
    /// residual to the new quantization error.
    ///
    /// # Panics
    ///
    /// Panics if `grad`'s shape differs from the shape given at construction.
    pub fn quantize(&mut self, grad: &Matrix) -> QuantizedGrad {
        assert_eq!(
            grad.shape(),
            self.residual.shape(),
            "gradient shape changed between quantize calls"
        );
        let (rows, cols) = grad.shape();
        let n = rows * cols;

        // Effective gradient = fresh gradient + carried error.
        let mut eff = grad.clone();
        eff.add_assign(&self.residual);

        // Split by sign; scales are the per-group means so the reconstruction
        // is unbiased within each group.
        let mut pos_sum = 0.0f64;
        let mut pos_cnt = 0usize;
        let mut neg_sum = 0.0f64;
        let mut neg_cnt = 0usize;
        for &v in eff.as_slice() {
            if v > 0.0 {
                pos_sum += v as f64;
                pos_cnt += 1;
            } else {
                neg_sum += v as f64;
                neg_cnt += 1;
            }
        }
        let pos_scale = if pos_cnt > 0 {
            (pos_sum / pos_cnt as f64) as f32
        } else {
            0.0
        };
        let neg_scale = if neg_cnt > 0 {
            (neg_sum / neg_cnt as f64) as f32
        } else {
            0.0
        };

        let mut bits = vec![0u64; n.div_ceil(64)];
        for (i, &v) in eff.as_slice().iter().enumerate() {
            if v > 0.0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }

        let q = QuantizedGrad {
            rows,
            cols,
            pos_scale,
            neg_scale,
            bits,
        };

        // New residual = effective gradient - what the receiver will decode.
        let decoded = q.dequantize();
        self.residual = eff;
        self.residual.sub_assign(&decoded);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_grad(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        crate::init::gaussian(&mut m, 0.0, 1.0, &mut StdRng::seed_from_u64(seed));
        m
    }

    #[test]
    fn decode_uses_group_means() {
        let g = Matrix::from_vec(1, 4, vec![1.0, 3.0, -2.0, -4.0]);
        let mut q = OneBitQuantizer::new(1, 4);
        let enc = q.quantize(&g);
        let dec = enc.dequantize();
        assert_eq!(dec.as_slice(), &[2.0, 2.0, -3.0, -3.0]);
    }

    #[test]
    fn residual_carries_exact_error() {
        let g = random_grad(8, 8, 7);
        let mut q = OneBitQuantizer::new(8, 8);
        let enc = q.quantize(&g);
        let dec = enc.dequantize();
        // residual == g - dec exactly.
        let mut expect = g.clone();
        expect.sub_assign(&dec);
        assert!(q.residual().max_abs_diff(&expect) == 0.0);
    }

    #[test]
    fn repeated_quantization_transmits_mass_eventually() {
        // A constant gradient fed repeatedly: the decoded sum should approach
        // the true cumulative gradient because the residual is fed back.
        let g = Matrix::filled(4, 4, 0.1);
        let mut q = OneBitQuantizer::new(4, 4);
        let mut decoded_sum = Matrix::zeros(4, 4);
        let steps = 50;
        for _ in 0..steps {
            decoded_sum.add_assign(&q.quantize(&g).dequantize());
        }
        let true_sum = 0.1 * steps as f32;
        for &v in decoded_sum.as_slice() {
            assert!(
                (v - true_sum).abs() <= 0.2,
                "decoded cumulative {v} drifted from {true_sum}"
            );
        }
    }

    #[test]
    fn wire_bytes_is_roughly_32x_smaller() {
        let enc = OneBitQuantizer::new(256, 256).quantize(&random_grad(256, 256, 1));
        let dense_bytes = 256 * 256 * 4;
        assert!(enc.wire_bytes() < dense_bytes / 30);
        assert!(enc.wire_bytes() >= 256 * 256 / 8);
    }

    #[test]
    fn all_zero_gradient_is_stable() {
        let g = Matrix::zeros(3, 3);
        let mut q = OneBitQuantizer::new(3, 3);
        let dec = q.quantize(&g).dequantize();
        assert_eq!(dec.max_abs(), 0.0);
        assert_eq!(q.residual().max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn shape_change_panics() {
        let mut q = OneBitQuantizer::new(2, 2);
        let _ = q.quantize(&Matrix::zeros(3, 3));
    }

    #[test]
    fn wire_codec_roundtrips() {
        let g = random_grad(13, 9, 42);
        let enc = OneBitQuantizer::new(13, 9).quantize(&g);
        let bytes = enc.to_bytes();
        assert_eq!(bytes.len(), enc.wire_bytes());
        let back = QuantizedGrad::from_bytes(&bytes).unwrap();
        assert_eq!(back, enc);
        assert_eq!(back.dequantize(), enc.dequantize());
    }

    #[test]
    fn wire_codec_rejects_truncation() {
        let enc = OneBitQuantizer::new(4, 4).quantize(&random_grad(4, 4, 1));
        let bytes = enc.to_bytes();
        assert!(QuantizedGrad::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(QuantizedGrad::from_bytes(&bytes[..8]).is_none());
    }

    #[test]
    fn bit_packing_roundtrip_signs() {
        let g = Matrix::from_vec(
            1,
            70,
            (0..70)
                .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
                .collect(),
        );
        let mut q = OneBitQuantizer::new(1, 70);
        let dec = q.quantize(&g).dequantize();
        for (i, &v) in dec.as_slice().iter().enumerate() {
            if i % 3 == 0 {
                assert!(v > 0.0, "element {i} lost its sign");
            } else {
                assert!(v < 0.0, "element {i} lost its sign");
            }
        }
    }
}
