//! Cache-blocked, panel-packed f32 GEMM kernel.
//!
//! One generic routine computes `C += A·B` over *strided* views of row-major
//! storage, so the three public multiply flavours (`A·B`, `Aᵀ·B`, `A·Bᵀ`)
//! are a single kernel with swapped strides — no transpose is ever
//! materialised.
//!
//! Layout follows the classic BLIS/GotoBLAS decomposition: the shared
//! dimension is split into `KC`-deep slabs, `B` slabs are packed into
//! `NR`-wide column panels and `A` slabs into `MR`-tall row panels, and a
//! fixed-size, branch-free microkernel accumulates an `MR × NR` register
//! tile. The microkernel contains only ordinary `*`/`+` arithmetic on
//! fixed-size arrays; it is compiled three times — baseline, AVX2 and
//! AVX-512 — and the widest version the CPU supports is selected at runtime.
//! The `#[target_feature]` copies merely give the autovectorizer wider
//! registers: there are no intrinsics, and no FMA contraction, so all three
//! produce bitwise identical results.
//!
//! # Determinism and float semantics
//!
//! The microkernel seeds its accumulator tile from `C` and writes the tile
//! back, and the shared dimension advances in the middle loop, so each
//! output element accumulates its `k` products **strictly in ascending-k
//! order**, one multiply and one add per product — exactly the fold order
//! of the naive triple loop. The blocked kernel is therefore bitwise
//! identical to the naive reference on every shape (the tests assert
//! this), and NaN/Inf propagate like plain IEEE arithmetic: there is no
//! zero-skipping fast path.

/// Depth of one packed slab of the shared dimension.
const KC: usize = 256;
/// Rows of `A` packed per pass (one `A` block stays L2-resident).
const MC: usize = 96;
/// Columns of `B` packed per pass (one `B` slab stays cache-resident).
const NC: usize = 1024;

/// A microkernel: multiplies one packed `A` row panel by one packed `B`
/// column panel, accumulating into the `C` tile at the head of the third
/// argument (`ldc` row stride).
///
/// # Safety
///
/// Implementations compiled with `#[target_feature]` must only be invoked
/// after the corresponding CPU feature has been detected at runtime.
type MicroKernel = unsafe fn(&[f32], &[f32], &mut [f32], usize);

/// `C += A·B` for strided views.
///
/// * `A` is `m × k`: element `(i, p)` lives at `a[i*a_rs + p*a_cs]`.
/// * `B` is `k × n`: element `(p, j)` lives at `b[p*b_rs + j*b_cs]`.
/// * `C` is `m × n`, row-major and contiguous (`c.len() == m*n`).
///
/// Passing `(a_rs, a_cs) = (1, lda)` reads `A` transposed in place; the same
/// trick on `B` yields `A·Bᵀ`.
///
/// # Panics
///
/// Panics (via slice indexing) if a stride/dimension combination addresses
/// past the end of `a` or `b`, or if `c.len() != m*n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    assert_eq!(
        c.len(),
        m * n,
        "gemm: C buffer is {} elements, want {m}x{n}",
        c.len()
    );
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let view_a = View {
        data: a,
        rs: a_rs,
        cs: a_cs,
    };
    let view_b = View {
        data: b,
        rs: b_rs,
        cs: b_cs,
    };
    match detect_isa() {
        // Safety: `detect_isa` returned a variant only if the matching CPU
        // feature is present, which is the contract of each microkernel.
        Isa::Avx512 => gemm_blocked::<8, 32>(m, n, k, view_a, view_b, c, mk_avx512),
        Isa::Avx2 => gemm_blocked::<4, 16>(m, n, k, view_a, view_b, c, mk_avx2),
        Isa::Baseline => gemm_blocked::<4, 16>(m, n, k, view_a, view_b, c, mk_baseline),
    }
}

/// Instruction-set tier the runtime dispatch selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Isa {
    Baseline,
    Avx2,
    Avx512,
}

#[cfg(target_arch = "x86_64")]
fn detect_isa() -> Isa {
    if is_x86_feature_detected!("avx512f") {
        Isa::Avx512
    } else if is_x86_feature_detected!("avx2") {
        Isa::Avx2
    } else {
        Isa::Baseline
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_isa() -> Isa {
    Isa::Baseline
}

/// A strided read-only 2-D view into row-major storage.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl View<'_> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// The blocked driver, generic over the microkernel tile shape.
fn gemm_blocked<const MR: usize, const NR: usize>(
    m: usize,
    n: usize,
    k: usize,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f32],
    mk: MicroKernel,
) {
    let kc_max = k.min(KC);
    let mc_max = pad_to(m.min(MC), MR);
    let nc_max = pad_to(n.min(NC), NR);
    let mut apack = vec![0.0f32; mc_max * kc_max];
    let mut bpack = vec![0.0f32; nc_max * kc_max];

    let mut jc = 0;
    while jc < n {
        let nc = (n - jc).min(NC);
        // The shared dimension advances in the *middle* loop so every C tile
        // sees its k-slabs in ascending order — the determinism contract.
        let mut pc = 0;
        while pc < k {
            let kc = (k - pc).min(KC);
            pack_b::<NR>(&mut bpack, b, pc, kc, jc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = (m - ic).min(MC);
                pack_a::<MR>(&mut apack, a, ic, mc, pc, kc);
                run_tiles::<MR, NR>(&apack, &bpack, c, n, ic, mc, jc, nc, kc, mk);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Rounds `x` up to a multiple of `to`.
fn pad_to(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Packs the `mc × kc` block of `A` at `(ic, pc)` into `MR`-tall row panels,
/// k-major within each panel (`[p][r]`), zero-padding the ragged last panel.
fn pack_a<const MR: usize>(
    apack: &mut [f32],
    a: View<'_>,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let mut idx = 0;
    let mut r0 = 0;
    while r0 < mc {
        let rows = (mc - r0).min(MR);
        for p in 0..kc {
            for r in 0..MR {
                apack[idx] = if r < rows {
                    a.at(ic + r0 + r, pc + p)
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        r0 += MR;
    }
}

/// Packs the `kc × nc` block of `B` at `(pc, jc)` into `NR`-wide column
/// panels, k-major within each panel (`[p][j]`), zero-padding the ragged
/// last panel.
fn pack_b<const NR: usize>(
    bpack: &mut [f32],
    b: View<'_>,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let mut idx = 0;
    let mut j0 = 0;
    while j0 < nc {
        let cols = (nc - j0).min(NR);
        for p in 0..kc {
            for j in 0..NR {
                bpack[idx] = if j < cols {
                    b.at(pc + p, jc + j0 + j)
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        j0 += NR;
    }
}

/// Sweeps the microkernel over every `MR × NR` tile of the packed block.
#[allow(clippy::too_many_arguments)]
fn run_tiles<const MR: usize, const NR: usize>(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
    mk: MicroKernel,
) {
    let mut r0 = 0;
    let mut apanel_idx = 0;
    while r0 < mc {
        let mr = (mc - r0).min(MR);
        let apanel = &apack[apanel_idx * kc * MR..(apanel_idx + 1) * kc * MR];
        let mut j0 = 0;
        let mut bpanel_idx = 0;
        while j0 < nc {
            let nr = (nc - j0).min(NR);
            let bpanel = &bpack[bpanel_idx * kc * NR..(bpanel_idx + 1) * kc * NR];
            let coff = (ic + r0) * ldc + jc + j0;
            if mr == MR && nr == NR {
                // Safety: `mk` matches the ISA verified by `detect_isa`.
                unsafe { mk(apanel, bpanel, &mut c[coff..], ldc) };
            } else {
                microkernel_edge::<MR, NR>(apanel, bpanel, &mut c[coff..], ldc, mr, nr);
            }
            j0 += NR;
            bpanel_idx += 1;
        }
        r0 += MR;
        apanel_idx += 1;
    }
}

/// The register-tiled inner loop on a full `MR × NR` tile. The accumulator
/// is seeded from `C` and written back whole, so the per-element fold order
/// is ascending k with one mul and one add per product.
#[inline(always)]
fn microkernel_body<const MR: usize, const NR: usize>(
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
    }
    for (ak, bk) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (r, row) in acc.iter_mut().enumerate() {
            let a = ak[r];
            for (j, x) in row.iter_mut().enumerate() {
                *x += a * bk[j];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Baseline microkernel (no feature requirements; `unsafe fn` only to share
/// the [`MicroKernel`] signature).
unsafe fn mk_baseline(apanel: &[f32], bpanel: &[f32], c: &mut [f32], ldc: usize) {
    microkernel_body::<4, 16>(apanel, bpanel, c, ldc);
}

/// AVX2 compilation of the identical arithmetic (wider autovectorization,
/// same operations in the same order — bitwise identical results).
///
/// # Safety
///
/// Caller must have verified `avx2` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mk_avx2(apanel: &[f32], bpanel: &[f32], c: &mut [f32], ldc: usize) {
    microkernel_body::<4, 16>(apanel, bpanel, c, ldc);
}

/// AVX-512 compilation of the identical arithmetic.
///
/// # Safety
///
/// Caller must have verified `avx512f` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mk_avx512(apanel: &[f32], bpanel: &[f32], c: &mut [f32], ldc: usize) {
    microkernel_body::<8, 32>(apanel, bpanel, c, ldc);
}

/// Ragged edge tiles: same arithmetic through a local tile, touching only
/// the `mr × nr` valid region of `C`. Zero-padded packing lanes multiply
/// into accumulator lanes that are never written back (a padding zero times
/// a NaN stays in a dead lane, so padding cannot leak into results).
fn microkernel_edge<const MR: usize, const NR: usize>(
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
    }
    for (ak, bk) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (r, row) in acc.iter_mut().enumerate() {
            let a = ak[r];
            for (j, x) in row.iter_mut().enumerate() {
                *x += a * bk[j];
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        c[r * ldc..r * ldc + nr].copy_from_slice(&row[..nr]);
    }
}
