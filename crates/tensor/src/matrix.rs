//! Row-major dense `f32` matrices and the kernels used by the NN engine.
//!
//! The multiply family (`matmul`, `matmul_tn`, `matmul_nt`) routes through
//! the blocked GEMM in [`crate::kernel`], which folds each output element in
//! ascending-`k` order — the same order as the retained `*_naive` reference
//! kernels — so blocked and naive results are bitwise identical. The
//! `*_rows_into` variants compute a contiguous range of output rows into a
//! caller-provided slice; they are the building block of the batch-parallel
//! layer kernels, which partition output rows across threads without
//! changing any per-element fold order.

use crate::kernel;
use std::fmt;
use std::ops::{Index, IndexMut, Range};

/// A dense, row-major `f32` matrix.
///
/// Vectors are represented as `1×n` or `n×1` matrices; the neural-network
/// engine stores parameters, activations and gradients in this type. All
/// kernels are deterministic: given identical inputs they produce bitwise
/// identical outputs, which the distributed-equals-serial tests rely on.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a zero-filled matrix of shape `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a `1 × n` row vector from a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Creates an `n × 1` column vector from a slice.
    pub fn col_vector(v: &[f32]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the matrix has no elements (never true for a constructed matrix).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Sets every element to zero.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Element-wise addition: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise subtraction: `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// AXPY: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns the transpose as a new matrix (cache-blocked copy).
    pub fn transposed(&self) -> Matrix {
        const TB: usize = 32;
        let mut t = Matrix::zeros(self.cols, self.rows);
        let mut rb = 0;
        while rb < self.rows {
            let re = (rb + TB).min(self.rows);
            let mut cb = 0;
            while cb < self.cols {
                let ce = (cb + TB).min(self.cols);
                for r in rb..re {
                    for c in cb..ce {
                        t.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
                cb = ce;
            }
            rb = re;
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_rows_into(other, 0..self.rows, out.as_mut_slice());
        out
    }

    /// Accumulates rows `rows` of `self * other` into `out`, which must hold
    /// exactly `rows.len() * other.cols()` elements (the corresponding output
    /// rows). An empty range is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, an out-of-bounds range, or a wrong-sized
    /// `out`.
    pub fn matmul_rows_into(&self, other: &Matrix, rows: Range<usize>, out: &mut [f32]) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(rows.end <= self.rows, "matmul_rows_into: row range OOB");
        let m = rows.len();
        kernel::gemm(
            m,
            other.cols,
            self.cols,
            &self.data[rows.start * self.cols..],
            self.cols,
            1,
            &other.data,
            other.cols,
            1,
            out,
        );
    }

    /// Matrix product `selfᵀ * other` without materialising the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_rows_into(other, 0..self.cols, out.as_mut_slice());
        out
    }

    /// Accumulates rows `rows` of `selfᵀ * other` into `out` (output rows
    /// correspond to *columns* of `self`). `out` must hold exactly
    /// `rows.len() * other.cols()` elements; an empty range is a no-op.
    pub fn matmul_tn_rows_into(&self, other: &Matrix, rows: Range<usize>, out: &mut [f32]) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(rows.end <= self.cols, "matmul_tn_rows_into: row range OOB");
        let m = rows.len();
        if m == 0 {
            return;
        }
        // Row `i` of the transposed view starts at element `i` with the
        // original column stride, so offsetting the data by `rows.start`
        // shifts the view down without copying.
        kernel::gemm(
            m,
            other.cols,
            self.rows,
            &self.data[rows.start..],
            1,
            self.cols,
            &other.data,
            other.cols,
            1,
            out,
        );
    }

    /// Matrix product `self * otherᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_rows_into(other, 0..self.rows, out.as_mut_slice());
        out
    }

    /// Accumulates rows `rows` of `self * otherᵀ` into `out`, which must
    /// hold exactly `rows.len() * other.rows()` elements; an empty range is
    /// a no-op.
    pub fn matmul_nt_rows_into(&self, other: &Matrix, rows: Range<usize>, out: &mut [f32]) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(rows.end <= self.rows, "matmul_nt_rows_into: row range OOB");
        let m = rows.len();
        kernel::gemm(
            m,
            other.rows,
            self.cols,
            &self.data[rows.start * self.cols..],
            self.cols,
            1,
            &other.data,
            1,
            other.cols,
            out,
        );
    }

    /// Naive `self * other` reference: plain triple loop, ascending-`k`
    /// fold, no fast paths. Retained as the differential-test oracle for the
    /// blocked kernel — the blocked result must match it bitwise.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[k * other.cols + j];
                }
                out.data[i * other.cols + j] = acc;
            }
        }
        out
    }

    /// Naive `selfᵀ * other` reference (see [`Matrix::matmul_naive`]).
    pub fn matmul_tn_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.cols {
            for j in 0..other.cols {
                let mut acc = 0.0f32;
                for k in 0..self.rows {
                    acc += self.data[k * self.cols + i] * other.data[k * other.cols + j];
                }
                out.data[i * other.cols + j] = acc;
            }
        }
        out
    }

    /// Naive `self * otherᵀ` reference (see [`Matrix::matmul_naive`]).
    pub fn matmul_nt_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[j * other.cols + k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Rank-1 update: `self += alpha * u * vᵀ`.
    ///
    /// `u` must have `self.rows()` elements and `v` must have `self.cols()`.
    /// This is the reconstruction kernel of sufficient-factor broadcasting.
    /// The loop body is branch-free: a zero in `u` still multiplies through,
    /// so NaN/Inf in `v` propagate per IEEE semantics.
    pub fn rank1_update(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows, "rank1_update: u length mismatch");
        assert_eq!(v.len(), self.cols, "rank1_update: v length mismatch");
        for (r, &uu) in u.iter().enumerate() {
            let s = alpha * uu;
            let row = self.row_mut(r);
            for (o, &vv) in row.iter_mut().zip(v) {
                *o += s * vv;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Maximum absolute element value (0 for an all-zero matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Index of the maximum element in row `r` (ties resolve to the first).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = Matrix::zeros(0, 4);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_checked() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn indexing_is_row_major() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(0, 2)], 3.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a[(1, 2)], 6.0);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let fast = a.matmul_tn(&b);
        let slow = a.transposed().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 2.0, 3.0, 1.0, 1.0, 0.0, 2.0, 5.0, 1.0, 1.0, 1.0],
        );
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transposed());
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn rank1_update_is_outer_product() {
        let mut g = Matrix::zeros(2, 3);
        g.rank1_update(1.0, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(g.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        g.rank1_update(-1.0, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0, 18.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0, 36.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let orig = a.clone();
        a.add_assign(&b);
        a.sub_assign(&b);
        assert_eq!(a, orig);
    }

    #[test]
    fn norms_and_argmax() {
        let a = m(2, 2, &[3.0, -4.0, 0.0, 0.0]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.argmax_row(0), 0);
        let b = m(1, 4, &[0.1, 0.9, 0.5, 0.9]);
        assert_eq!(b.argmax_row(0), 1, "ties resolve to first occurrence");
    }

    #[test]
    fn transpose_is_involutive() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn max_abs_diff_detects_deviation() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[1.0, 2.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut a = m(1, 3, &[-1.0, 0.0, 2.0]);
        a.map_inplace(|x| x.max(0.0));
        assert_eq!(a.as_slice(), &[0.0, 0.0, 2.0]);
    }
}
