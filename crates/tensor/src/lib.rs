//! Dense numeric kernels for the Poseidon reproduction.
//!
//! This crate is the lowest layer of the workspace: it provides the row-major
//! [`Matrix`] type with the linear-algebra kernels the neural-network engine
//! needs (GEMM variants, AXPY, outer products), deterministic random
//! initialisation, [`sf::SufficientFactor`] pairs used by sufficient-factor
//! broadcasting, the [`quantize::OneBitQuantizer`] gradient compressor used by
//! the CNTK-style baseline, and byte-level serialisation used by the
//! in-process transport to account for every byte that would cross the
//! network.
//!
//! The kernels are deliberately straightforward (no SIMD intrinsics, no
//! unsafe): the reproduction's performance claims come from the communication
//! architecture and the cluster simulator, not from raw FLOPs, and
//! deterministic, easily-audited math makes the distributed-equals-serial
//! equivalence tests meaningful.

pub mod bytesio;
pub mod init;
pub mod matrix;
pub mod quantize;
pub mod sf;

pub use matrix::Matrix;
pub use sf::{SfBatch, SufficientFactor};
