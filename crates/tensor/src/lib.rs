//! Dense numeric kernels for the Poseidon reproduction.
//!
//! This crate is the lowest layer of the workspace: it provides the row-major
//! [`Matrix`] type with the linear-algebra kernels the neural-network engine
//! needs (GEMM variants, AXPY, outer products), deterministic random
//! initialisation, [`sf::SufficientFactor`] pairs used by sufficient-factor
//! broadcasting, the [`quantize::OneBitQuantizer`] gradient compressor used by
//! the CNTK-style baseline, and byte-level serialisation used by the
//! in-process transport to account for every byte that would cross the
//! network.
//!
//! The GEMM family is backed by the cache-blocked, panel-packed kernel in
//! [`kernel`]. It contains no SIMD intrinsics — only fixed-size safe
//! arithmetic compiled per ISA tier and selected at runtime — and it
//! preserves the naive ascending-`k` fold order, so results stay bitwise
//! deterministic and the distributed-equals-serial equivalence tests remain
//! meaningful. The naive reference kernels are retained on [`Matrix`]
//! (`*_naive`) as differential-test oracles.

pub mod bytesio;
pub mod compress;
pub mod init;
pub mod kernel;
pub mod matrix;
pub mod quantize;
pub mod sf;

pub use matrix::Matrix;
pub use sf::{SfBatch, SufficientFactor};
