//! Pluggable gradient-compression codecs.
//!
//! Poseidon's bandwidth story is about shrinking bytes on the wire per layer:
//! SFB does it structurally, and the system paper (Zhang et al. 2015) layers
//! quantization on top. Following "RPC Considered Harmful", the codec decision
//! lives in the transfer plane rather than at application call sites: every
//! gradient-bearing frame carries a [`Codec`] id, senders compress through the
//! [`Compressor`] trait (which owns any per-tensor error-feedback state), and
//! receivers decode with the stateless [`decompress`] entry point.
//!
//! Four codecs ship today:
//!
//! | codec      | bytes per element | lossy | state                 |
//! |------------|-------------------|-------|-----------------------|
//! | `identity` | 4                 | no    | none                  |
//! | `onebit`   | ~1/8 (+16 B hdr)  | yes   | error residual        |
//! | `f16`/`bf16` | 2               | yes   | none                  |
//! | `topk:N`   | 8·k (+8 B hdr)    | yes   | residual accumulation |
//!
//! Every decode validates framing and rejects truncated or malformed
//! payloads with a [`CodecError`] instead of panicking — a corrupt frame must
//! be diagnosable, not a process abort.

use crate::quantize::{OneBitQuantizer, QuantizedGrad};
use crate::Matrix;
use bytes::{BufMut, Bytes, BytesMut};

/// Default top-k density: transmit the largest 10% of (residual-corrected)
/// coordinates per call. At 8 bytes per entry that is a 5× wire reduction.
pub const TOPK_DEFAULT_PERMILLE: u16 = 100;

/// Identifies the payload encoding of a gradient-bearing frame.
///
/// The wire carries only [`Codec::wire_id`] (one byte); parameters such as
/// the top-k density affect the encoder only — every payload is
/// self-describing enough to decode without them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Raw little-endian f32s — bitwise identical to the historical path.
    Identity,
    /// 1-bit sign quantization with group-mean scales and error feedback
    /// (Seide et al. 2014, the CNTK baseline of paper §5.3).
    OneBit,
    /// IEEE 754 binary16 cast, round-to-nearest-even.
    F16,
    /// bfloat16 cast (top 16 bits of the f32, round-to-nearest-even).
    Bf16,
    /// Sparse top-k by residual-corrected magnitude; `permille` of the
    /// coordinates (at least one) are transmitted per call.
    TopK { permille: u16 },
}

impl Codec {
    /// One-byte id carried in the frame header.
    pub fn wire_id(self) -> u8 {
        match self {
            Codec::Identity => 0,
            Codec::OneBit => 1,
            Codec::F16 => 2,
            Codec::Bf16 => 3,
            Codec::TopK { .. } => 4,
        }
    }

    /// Inverse of [`Self::wire_id`]. Encoder-side parameters (top-k density)
    /// are not on the wire, so the decoded `TopK` carries the default; only
    /// the discriminant matters for decoding.
    pub fn from_wire_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => Codec::Identity,
            1 => Codec::OneBit,
            2 => Codec::F16,
            3 => Codec::Bf16,
            4 => Codec::TopK {
                permille: TOPK_DEFAULT_PERMILLE,
            },
            _ => return None,
        })
    }

    /// Whether decode(encode(x)) == x for every input.
    pub fn is_lossless(self) -> bool {
        matches!(self, Codec::Identity)
    }

    /// Payload bytes this codec puts on the wire for `elems` f32 values.
    /// This is the figure the cost model and the network simulator price.
    pub fn payload_bytes(self, elems: usize) -> usize {
        match self {
            Codec::Identity => 4 * elems,
            // rows/cols/scales header + 1 bit per element in u64 words.
            Codec::OneBit => 16 + elems.div_ceil(64) * 8,
            Codec::F16 | Codec::Bf16 => 2 * elems,
            Codec::TopK { permille } => 8 + 8 * topk_k(elems, permille),
        }
    }

    /// Wire bytes relative to the dense f32 payload (`payload_bytes / 4n`).
    pub fn wire_ratio(self, elems: usize) -> f64 {
        if elems == 0 {
            return 1.0;
        }
        self.payload_bytes(elems) as f64 / (4 * elems) as f64
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Codec::Identity => write!(f, "identity"),
            Codec::OneBit => write!(f, "onebit"),
            Codec::F16 => write!(f, "f16"),
            Codec::Bf16 => write!(f, "bf16"),
            Codec::TopK { permille } => write!(f, "topk:{permille}"),
        }
    }
}

impl std::str::FromStr for Codec {
    type Err = String;

    /// Parses the CLI spelling: `identity|onebit|f16|bf16|topk[:permille]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "identity" | "f32" | "none" => Ok(Codec::Identity),
            "onebit" | "1bit" => Ok(Codec::OneBit),
            "f16" | "fp16" => Ok(Codec::F16),
            "bf16" => Ok(Codec::Bf16),
            "topk" => Ok(Codec::TopK {
                permille: TOPK_DEFAULT_PERMILLE,
            }),
            other => {
                if let Some(p) = other.strip_prefix("topk:") {
                    let permille: u16 = p.parse().map_err(|e| format!("bad topk density: {e}"))?;
                    if permille == 0 || permille > 1000 {
                        return Err(format!(
                            "topk density must be 1..=1000 permille, got {permille}"
                        ));
                    }
                    Ok(Codec::TopK { permille })
                } else {
                    Err(format!(
                        "unknown codec {other:?} (expected identity|onebit|f16|bf16|topk[:permille])"
                    ))
                }
            }
        }
    }
}

/// Why a payload failed to decode. Surfaced, counted, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame named a codec id this build does not know.
    UnknownCodec(u8),
    /// The payload is shorter than its own framing claims.
    Truncated,
    /// The payload decodes to a different element count than the receiver
    /// expects for this (layer, chunk).
    LengthMismatch { expect: usize, got: usize },
    /// Internal framing is inconsistent (bad index order, out-of-range
    /// coordinate, impossible dimension).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::LengthMismatch { expect, got } => {
                write!(f, "payload decodes {got} values, receiver expects {expect}")
            }
            CodecError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A stateful per-tensor gradient encoder.
///
/// One compressor instance is owned per (layer, chunk) endpoint so lossy
/// codecs can carry error-feedback state across iterations; `compress` must
/// be called with the same element count every time. Decoding is stateless —
/// use [`decompress`] (or the trait's forwarding default) with the codec id
/// recovered from the frame header.
pub trait Compressor: Send + std::fmt::Debug {
    /// The codec this compressor emits, stamped into the frame header.
    fn codec(&self) -> Codec;

    /// Encodes `vals`, updating any residual state.
    fn compress(&mut self, vals: &[f32]) -> Bytes;

    /// Decodes a payload produced by a compressor of the same codec.
    fn decompress(&self, buf: &[u8], elems: usize) -> Result<Vec<f32>, CodecError> {
        decompress(self.codec(), buf, elems)
    }

    /// The error-feedback residual carried between calls, flattened. Empty
    /// for stateless codecs. Checkpoint/handoff paths persist this so a
    /// restored endpoint compresses bitwise-identically to one that never
    /// stopped.
    fn residual(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restores error-feedback state exported by [`Self::residual`]. No-op
    /// for stateless codecs.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match this compressor's element count.
    fn set_residual(&mut self, residual: &[f32]) {
        assert!(
            residual.is_empty(),
            "stateless codec {} cannot restore a residual",
            self.codec()
        );
    }
}

/// Builds the compressor for `codec` over tensors of `elems` values.
pub fn make_compressor(codec: Codec, elems: usize) -> Box<dyn Compressor> {
    match codec {
        Codec::Identity => Box::new(IdentityCompressor),
        Codec::OneBit => Box::new(OneBitCompressor::new(elems)),
        Codec::F16 => Box::new(CastCompressor { bf16: false }),
        Codec::Bf16 => Box::new(CastCompressor { bf16: true }),
        Codec::TopK { permille } => Box::new(TopKCompressor::new(elems, permille)),
    }
}

/// Stateless decode dispatch: the single entry point receivers use once the
/// frame header told them the codec.
pub fn decompress(codec: Codec, buf: &[u8], elems: usize) -> Result<Vec<f32>, CodecError> {
    match codec {
        Codec::Identity => decode_identity(buf, elems),
        Codec::OneBit => decode_onebit(buf, elems),
        Codec::F16 => decode_cast(buf, elems, false),
        Codec::Bf16 => decode_cast(buf, elems, true),
        Codec::TopK { .. } => decode_topk(buf, elems),
    }
}

// ---------------------------------------------------------------------------
// Identity

/// Raw little-endian f32s. The live runtime keeps using the pooled encoder in
/// `poseidon::wire` for this codec (bitwise and allocation-wise identical);
/// this impl exists so the registry is total.
#[derive(Debug)]
pub struct IdentityCompressor;

impl Compressor for IdentityCompressor {
    fn codec(&self) -> Codec {
        Codec::Identity
    }

    fn compress(&mut self, vals: &[f32]) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 * vals.len());
        for &v in vals {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }
}

fn decode_identity(buf: &[u8], elems: usize) -> Result<Vec<f32>, CodecError> {
    if !buf.len().is_multiple_of(4) {
        return Err(CodecError::Truncated);
    }
    if buf.len() / 4 != elems {
        return Err(CodecError::LengthMismatch {
            expect: elems,
            got: buf.len() / 4,
        });
    }
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

// ---------------------------------------------------------------------------
// 1-bit

/// Wraps [`OneBitQuantizer`] over a `1 × n` view of the flat chunk, carrying
/// the Seide-style error residual between calls.
#[derive(Debug)]
pub struct OneBitCompressor {
    elems: usize,
    quant: OneBitQuantizer,
}

impl OneBitCompressor {
    pub fn new(elems: usize) -> Self {
        Self {
            elems,
            quant: OneBitQuantizer::new(1, elems.max(1)),
        }
    }
}

impl Compressor for OneBitCompressor {
    fn codec(&self) -> Codec {
        Codec::OneBit
    }

    fn compress(&mut self, vals: &[f32]) -> Bytes {
        assert_eq!(vals.len(), self.elems, "chunk size changed between calls");
        let m = Matrix::from_vec(1, vals.len().max(1), {
            let mut v = vals.to_vec();
            if v.is_empty() {
                v.push(0.0);
            }
            v
        });
        self.quant.quantize(&m).to_bytes()
    }

    fn residual(&self) -> Vec<f32> {
        let mut out = self.quant.residual().as_slice().to_vec();
        out.truncate(self.elems);
        out
    }

    fn set_residual(&mut self, residual: &[f32]) {
        assert_eq!(residual.len(), self.elems, "residual length mismatch");
        let mut v = residual.to_vec();
        if v.is_empty() {
            v.push(0.0);
        }
        let len = v.len();
        self.quant.set_residual(Matrix::from_vec(1, len, v));
    }
}

fn decode_onebit(buf: &[u8], elems: usize) -> Result<Vec<f32>, CodecError> {
    let q = QuantizedGrad::from_bytes(buf).ok_or(CodecError::Truncated)?;
    let (rows, cols) = q.shape();
    let got = rows * cols;
    if got != elems.max(1) {
        return Err(CodecError::LengthMismatch { expect: elems, got });
    }
    let mut out = q.dequantize().as_slice().to_vec();
    out.truncate(elems);
    Ok(out)
}

// ---------------------------------------------------------------------------
// f16 / bf16 casts

/// Stateless half-precision casts, 2 bytes per element little-endian.
#[derive(Debug)]
pub struct CastCompressor {
    bf16: bool,
}

impl Compressor for CastCompressor {
    fn codec(&self) -> Codec {
        if self.bf16 {
            Codec::Bf16
        } else {
            Codec::F16
        }
    }

    fn compress(&mut self, vals: &[f32]) -> Bytes {
        let mut buf = BytesMut::with_capacity(2 * vals.len());
        for &v in vals {
            let h = if self.bf16 {
                f32_to_bf16_bits(v)
            } else {
                f32_to_f16_bits(v)
            };
            buf.put_u16_le(h);
        }
        buf.freeze()
    }
}

fn decode_cast(buf: &[u8], elems: usize, bf16: bool) -> Result<Vec<f32>, CodecError> {
    if !buf.len().is_multiple_of(2) {
        return Err(CodecError::Truncated);
    }
    if buf.len() / 2 != elems {
        return Err(CodecError::LengthMismatch {
            expect: elems,
            got: buf.len() / 2,
        });
    }
    Ok(buf
        .chunks_exact(2)
        .map(|c| {
            let h = u16::from_le_bytes([c[0], c[1]]);
            if bf16 {
                bf16_bits_to_f32(h)
            } else {
                f16_bits_to_f32(h)
            }
        })
        .collect())
}

/// f32 → IEEE 754 binary16 with round-to-nearest-even (no stable `f16` in
/// the toolchain, so the conversion is spelled out on the bit patterns).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN; keep NaNs quiet so a payload round-trip stays NaN.
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflow → ±0
        }
        // Subnormal half: shift the full 24-bit significand right.
        let man = man | 0x0080_0000;
        let shift = (1 - e) as u32 + 13;
        let half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let midpoint = 1u32 << (shift - 1);
        let half = if rem > midpoint || (rem == midpoint && half & 1 == 1) {
            half + 1
        } else {
            half
        };
        return sign | half as u16;
    }
    let mut out = (sign as u32) | ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    // Rounding up may carry into the exponent; that correctly rounds the
    // largest finite halves to infinity.
    if rem > 0x1000 || (rem == 0x1000 && out & 1 == 1) {
        out += 1;
    }
    out as u16
}

/// IEEE 754 binary16 → f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x3ff) as u32;
    let bits = if exp == 0 {
        if man == 0 {
            sign
        } else {
            // Subnormal half: renormalize into an f32 exponent.
            let mut e: i32 = 127 - 15 + 1;
            let mut m = man;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x3ff) << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (man << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// f32 → bfloat16 (top 16 bits) with round-to-nearest-even.
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Truncation could turn a NaN into inf; force a quiet NaN instead.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7fff + ((bits >> 16) & 1);
    ((bits + round) >> 16) as u16
}

/// bfloat16 → f32 (exact: pad with zero mantissa bits).
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

// ---------------------------------------------------------------------------
// Top-k with residual accumulation

/// Sparse top-k by residual-corrected magnitude.
///
/// Every call adds the fresh gradient into the residual, transmits the `k`
/// largest coordinates by |residual| (ties broken by ascending index so the
/// selection is a total order — bitwise deterministic across runs), and
/// zeroes the transmitted slots. Untransmitted mass stays in the residual
/// and drains on later calls, the same delayed-update behaviour as the
/// 1-bit error feedback.
///
/// Payload: `u32 n ++ u32 k ++ k × (u32 index, f32 value)` with indices
/// strictly ascending — violations are rejected as corruption.
#[derive(Debug)]
pub struct TopKCompressor {
    permille: u16,
    residual: Vec<f32>,
}

fn topk_k(elems: usize, permille: u16) -> usize {
    ((elems * permille as usize) / 1000)
        .max(1)
        .min(elems.max(1))
}

impl TopKCompressor {
    pub fn new(elems: usize, permille: u16) -> Self {
        Self {
            permille,
            residual: vec![0.0; elems],
        }
    }
}

impl Compressor for TopKCompressor {
    fn codec(&self) -> Codec {
        Codec::TopK {
            permille: self.permille,
        }
    }

    fn compress(&mut self, vals: &[f32]) -> Bytes {
        assert_eq!(vals.len(), self.residual.len(), "chunk size changed");
        for (r, &v) in self.residual.iter_mut().zip(vals) {
            *r += v;
        }
        let n = self.residual.len();
        let k = topk_k(n, self.permille).min(n);
        // Total order: |value| descending (on the bit pattern so NaN-free
        // data sorts identically everywhere), index ascending on ties.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let ka = self.residual[a as usize].abs().to_bits();
            let kb = self.residual[b as usize].abs().to_bits();
            kb.cmp(&ka).then(a.cmp(&b))
        });
        let mut picked: Vec<u32> = order[..k].to_vec();
        picked.sort_unstable();

        let mut buf = BytesMut::with_capacity(8 + 8 * k);
        buf.put_u32_le(n as u32);
        buf.put_u32_le(k as u32);
        for &i in &picked {
            buf.put_u32_le(i);
            buf.put_f32_le(self.residual[i as usize]);
            self.residual[i as usize] = 0.0;
        }
        buf.freeze()
    }

    fn residual(&self) -> Vec<f32> {
        self.residual.clone()
    }

    fn set_residual(&mut self, residual: &[f32]) {
        assert_eq!(
            residual.len(),
            self.residual.len(),
            "residual length mismatch"
        );
        self.residual.copy_from_slice(residual);
    }
}

fn decode_topk(buf: &[u8], elems: usize) -> Result<Vec<f32>, CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let k = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if n != elems {
        return Err(CodecError::LengthMismatch {
            expect: elems,
            got: n,
        });
    }
    if k > n.max(1) {
        return Err(CodecError::Malformed("k exceeds element count"));
    }
    if buf.len() != 8 + 8 * k {
        return Err(CodecError::Truncated);
    }
    let mut out = vec![0.0f32; elems];
    let mut prev: Option<u32> = None;
    for e in 0..k {
        let at = 8 + 8 * e;
        let idx = u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        let val = f32::from_le_bytes([buf[at + 4], buf[at + 5], buf[at + 6], buf[at + 7]]);
        if idx as usize >= elems {
            return Err(CodecError::Malformed("index out of range"));
        }
        if prev.is_some_and(|p| idx <= p) {
            return Err(CodecError::Malformed("indices not strictly ascending"));
        }
        prev = Some(idx);
        out[idx as usize] = val;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<f32> {
        // Deterministic pseudo-random values without pulling in rand here.
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as i32 as f32) / (1 << 20) as f32
            })
            .collect()
    }

    #[test]
    fn wire_ids_roundtrip() {
        for codec in [
            Codec::Identity,
            Codec::OneBit,
            Codec::F16,
            Codec::Bf16,
            Codec::TopK { permille: 100 },
        ] {
            let back = Codec::from_wire_id(codec.wire_id()).unwrap();
            assert_eq!(back.wire_id(), codec.wire_id());
        }
        assert_eq!(Codec::from_wire_id(200), None);
    }

    #[test]
    fn codec_parse_spellings() {
        assert_eq!("identity".parse::<Codec>().unwrap(), Codec::Identity);
        assert_eq!("onebit".parse::<Codec>().unwrap(), Codec::OneBit);
        assert_eq!("fp16".parse::<Codec>().unwrap(), Codec::F16);
        assert_eq!("bf16".parse::<Codec>().unwrap(), Codec::Bf16);
        assert_eq!(
            "topk:50".parse::<Codec>().unwrap(),
            Codec::TopK { permille: 50 }
        );
        assert!("zstd".parse::<Codec>().is_err());
        assert!("topk:0".parse::<Codec>().is_err());
    }

    #[test]
    fn identity_is_bitwise() {
        let vals = sample(257, 3);
        let mut c = IdentityCompressor;
        let buf = c.compress(&vals);
        let back = decompress(Codec::Identity, &buf, vals.len()).unwrap();
        assert_eq!(
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f16_known_values_and_roundtrip() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // max finite half
        assert_eq!(f32_to_f16_bits(1e6), 0x7c00); // overflow → inf
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Every exactly-representable half round-trips bit-exactly.
        for h in 0..=0xffffu16 {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                continue;
            }
            assert_eq!(f32_to_f16_bits(f), h, "half {h:#06x} did not roundtrip");
        }
    }

    #[test]
    fn bf16_roundtrips_exact_values() {
        for h in [0x0000u16, 0x8000, 0x3f80, 0xc000, 0x7f7f] {
            let f = bf16_bits_to_f32(h);
            assert_eq!(f32_to_bf16_bits(f), h);
        }
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
        // RNE: 1.0 + one-below-half-ulp rounds down, above rounds up.
        let ulp = bf16_bits_to_f32(0x3f81) - 1.0;
        assert_eq!(f32_to_bf16_bits(1.0 + 0.49 * ulp), 0x3f80);
        assert_eq!(f32_to_bf16_bits(1.0 + 0.51 * ulp), 0x3f81);
    }

    #[test]
    fn cast_codecs_bound_error() {
        let vals = sample(300, 9);
        for codec in [Codec::F16, Codec::Bf16] {
            let mut c = make_compressor(codec, vals.len());
            let buf = c.compress(&vals);
            assert_eq!(buf.len(), codec.payload_bytes(vals.len()));
            let back = decompress(codec, &buf, vals.len()).unwrap();
            for (a, b) in vals.iter().zip(&back) {
                let tol = a.abs() * 0.01 + 1e-3;
                assert!((a - b).abs() <= tol, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn onebit_matches_quantizer_and_checks_len() {
        let vals = sample(100, 5);
        let mut c = make_compressor(Codec::OneBit, vals.len());
        let buf = c.compress(&vals);
        let back = decompress(Codec::OneBit, &buf, vals.len()).unwrap();
        assert_eq!(back.len(), vals.len());
        // Group-mean property: decoded values take exactly two magnitudes.
        let mut mags: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        mags.sort_unstable();
        mags.dedup();
        assert!(mags.len() <= 2);
        assert!(matches!(
            decompress(Codec::OneBit, &buf, vals.len() + 1),
            Err(CodecError::LengthMismatch { .. })
        ));
        assert!(matches!(
            decompress(Codec::OneBit, &buf[..buf.len() - 3], vals.len()),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn topk_transmits_largest_and_accumulates_residual() {
        let mut c = TopKCompressor::new(10, 100); // k = 1
        let vals = vec![0.1, -5.0, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.3];
        let buf = c.compress(&vals);
        let back = decompress(c.codec(), &buf, 10).unwrap();
        assert_eq!(back[1], -5.0);
        assert_eq!(back.iter().filter(|v| **v != 0.0).count(), 1);
        // Second call with zero input drains the next-largest residual.
        let buf = c.compress(&[0.0; 10]);
        let back = decompress(c.codec(), &buf, 10).unwrap();
        assert_eq!(back[9], 0.3);
    }

    #[test]
    fn topk_rejects_corruption() {
        let mut c = TopKCompressor::new(16, 500);
        let buf = c.compress(&sample(16, 2));
        assert!(decompress(c.codec(), &buf, 16).is_ok());
        assert!(matches!(
            decompress(c.codec(), &buf[..buf.len() - 1], 16),
            Err(CodecError::Truncated)
        ));
        assert!(matches!(
            decompress(c.codec(), &buf, 17),
            Err(CodecError::LengthMismatch { .. })
        ));
        // Swap two index words so ascending order breaks.
        let mut bad = buf.to_vec();
        let (a, b) = (8, 16);
        for i in 0..4 {
            bad.swap(a + i, b + i);
        }
        assert!(matches!(
            decompress(c.codec(), &bad, 16),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn compressors_are_deterministic_across_instances() {
        for codec in [
            Codec::OneBit,
            Codec::F16,
            Codec::Bf16,
            Codec::TopK { permille: 250 },
        ] {
            let mut a = make_compressor(codec, 64);
            let mut b = make_compressor(codec, 64);
            for round in 0..5 {
                let vals = sample(64, round);
                assert_eq!(
                    a.compress(&vals),
                    b.compress(&vals),
                    "{codec} diverged at round {round}"
                );
            }
        }
    }

    #[test]
    fn payload_bytes_matches_encoding() {
        for codec in [
            Codec::Identity,
            Codec::OneBit,
            Codec::F16,
            Codec::Bf16,
            Codec::TopK { permille: 125 },
        ] {
            for n in [1usize, 63, 64, 65, 1000] {
                let mut c = make_compressor(codec, n);
                let buf = c.compress(&sample(n, n as u64));
                assert_eq!(buf.len(), codec.payload_bytes(n), "{codec} n={n}");
            }
        }
    }
}
