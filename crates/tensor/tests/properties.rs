//! Property-based tests for the tensor substrate.

use poseidon_tensor::bytesio;
use poseidon_tensor::quantize::OneBitQuantizer;
use poseidon_tensor::{Matrix, SfBatch, SufficientFactor};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn sf_strategy(max_dim: usize, max_k: usize) -> impl Strategy<Value = SfBatch> {
    (1..=max_dim, 1..=max_dim, 1..=max_k).prop_flat_map(|(m, n, k)| {
        proptest::collection::vec(
            (
                proptest::collection::vec(-10.0f32..10.0, m),
                proptest::collection::vec(-10.0f32..10.0, n),
            ),
            k,
        )
        .prop_map(|pairs| {
            SfBatch::from_factors(
                pairs
                    .into_iter()
                    .map(|(u, v)| SufficientFactor::new(u, v))
                    .collect(),
            )
        })
    })
}

/// Bitwise equality — `==` would treat `-0.0 == 0.0` and `NaN != NaN`.
fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Naive reference matmul used to validate the optimised loop orders.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

proptest! {
    #[test]
    fn matmul_matches_reference(
        a in matrix_strategy(12),
        bcols in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Matrix::zeros(a.cols(), bcols);
        for v in b.as_mut_slice() { *v = rng.gen_range(-5.0..5.0); }
        let fast = a.matmul(&b);
        let slow = reference_matmul(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) <= 1e-3 * (1.0 + slow.max_abs()));
    }

    #[test]
    fn transpose_products_agree(a in matrix_strategy(10), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Matrix::zeros(a.rows(), 7);
        for v in b.as_mut_slice() { *v = rng.gen_range(-5.0..5.0); }
        let tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        prop_assert!(tn.max_abs_diff(&explicit) <= 1e-3 * (1.0 + explicit.max_abs()));
    }

    #[test]
    fn sf_reconstruction_equals_sum_of_outer_products(batch in sf_strategy(10, 6)) {
        let dense = batch.reconstruct();
        let (m, n) = batch.shape().unwrap();
        let mut expect = Matrix::zeros(m, n);
        for sf in batch.factors() {
            for r in 0..m {
                for c in 0..n {
                    expect[(r, c)] += sf.u[r] * sf.v[c];
                }
            }
        }
        prop_assert!(dense.max_abs_diff(&expect) <= 1e-3 * (1.0 + expect.max_abs()));
    }

    #[test]
    fn matrix_codec_roundtrips(m in matrix_strategy(16)) {
        let bytes = bytesio::encode_matrix(&m);
        prop_assert_eq!(bytes.len(), bytesio::matrix_wire_bytes(m.rows(), m.cols()));
        let back = bytesio::decode_matrix(&bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn sf_codec_roundtrips(batch in sf_strategy(8, 5)) {
        let bytes = bytesio::encode_sf_batch(&batch);
        let (m, n) = batch.shape().unwrap();
        prop_assert_eq!(bytes.len(), bytesio::sf_batch_wire_bytes(batch.len(), m, n));
        let back = bytesio::decode_sf_batch(&bytes).unwrap();
        prop_assert_eq!(back, batch);
    }

    /// Decoders never panic on arbitrary bytes — they return an error (or
    /// `None`) instead. This is the transport's safety boundary.
    #[test]
    fn decoders_survive_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = bytesio::decode_matrix(&bytes);
        let _ = bytesio::decode_sf_batch(&bytes);
        let _ = poseidon_tensor::quantize::QuantizedGrad::from_bytes(&bytes);
    }

    /// Truncating a valid encoding at any point is detected, never mis-decoded
    /// into a wrong-but-plausible value of the same length.
    #[test]
    fn truncated_matrix_never_decodes(m in matrix_strategy(8), cut in 0usize..10) {
        let bytes = bytesio::encode_matrix(&m);
        if cut > 0 && cut <= bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            prop_assert!(bytesio::decode_matrix(truncated).is_err());
        }
    }

    #[test]
    fn quantizer_residual_is_exact_error(m in matrix_strategy(8)) {
        let mut q = OneBitQuantizer::new(m.rows(), m.cols());
        let decoded = q.quantize(&m).dequantize();
        // After one step, residual must equal input - decoded exactly.
        let mut expect = m.clone();
        expect.sub_assign(&decoded);
        prop_assert_eq!(q.residual().clone(), expect);
    }

    /// The blocked kernel must be *bitwise* identical to the naive jik
    /// reference on arbitrary shapes — including dimensions straddling the
    /// KC/MC tile boundaries exercised separately below. This is the
    /// determinism contract the distributed runtime builds on.
    #[test]
    fn blocked_matmul_is_bitwise_naive(
        a in matrix_strategy(40),
        bcols in 1usize..40,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Matrix::zeros(a.cols(), bcols);
        for v in b.as_mut_slice() { *v = rng.gen_range(-5.0..5.0); }
        prop_assert!(bits_equal(&a.matmul(&b), &a.matmul_naive(&b)));
        let at = a.transposed();
        prop_assert!(bits_equal(&b.matmul_tn(&at), &b.matmul_tn_naive(&at)));
        let bt = b.transposed();
        prop_assert!(bits_equal(&a.matmul_nt(&bt), &a.matmul_nt_naive(&bt)));
    }

    /// Accumulating a product row-range by row-range must compose to the
    /// whole product bitwise, for any split point — this is what makes the
    /// batch-parallel layer kernels thread-count independent.
    #[test]
    fn row_range_products_compose_bitwise(
        a in matrix_strategy(24),
        bcols in 1usize..16,
        split_num in 0usize..1000,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Matrix::zeros(a.cols(), bcols);
        for v in b.as_mut_slice() { *v = rng.gen_range(-5.0..5.0); }
        let whole = a.matmul(&b);
        let split = split_num % (a.rows() + 1);
        let mut pieced = Matrix::zeros(a.rows(), bcols);
        let w = bcols;
        // Empty ranges (split == 0 or == rows) must be harmless no-ops.
        a.matmul_rows_into(&b, 0..split, &mut pieced.as_mut_slice()[..split * w]);
        a.matmul_rows_into(&b, split..a.rows(), &mut pieced.as_mut_slice()[split * w..]);
        prop_assert!(bits_equal(&pieced, &whole));
    }

    #[test]
    fn quantizer_conserves_cumulative_mass(
        m in matrix_strategy(6),
        steps in 1usize..8,
    ) {
        // Invariant of error feedback: sum of decoded msgs + final residual
        // == sum of inputs (up to f32 accumulation error).
        let mut q = OneBitQuantizer::new(m.rows(), m.cols());
        let mut decoded_sum = Matrix::zeros(m.rows(), m.cols());
        for _ in 0..steps {
            decoded_sum.add_assign(&q.quantize(&m).dequantize());
        }
        decoded_sum.add_assign(q.residual());
        let mut input_sum = Matrix::zeros(m.rows(), m.cols());
        for _ in 0..steps {
            input_sum.add_assign(&m);
        }
        prop_assert!(decoded_sum.max_abs_diff(&input_sum) <= 1e-2 * (1.0 + input_sum.max_abs()));
    }
}

/// Fixed adversarial shapes around the blocked kernel's tile boundaries
/// (KC=256, MC=96, NC=1024, MR/NR register tiles) — the exact dimensions a
/// random strategy is unlikely to hit.
#[test]
fn blocked_matmul_bitwise_on_tile_boundary_shapes() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 300),
        (300, 1, 7),
        (4, 16, 256),
        (5, 17, 257),
        (96, 1024, 256),
        (97, 1025, 300),
        (130, 70, 513),
    ];
    for &(m, n, k) in shapes {
        let mut a = Matrix::zeros(m, k);
        let mut b = Matrix::zeros(k, n);
        let mut state = 0x1234_5678_u64 ^ ((m * 31 + n * 7 + k) as u64);
        for v in a.as_mut_slice().iter_mut().chain(b.as_mut_slice()) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 40) as f32) / (1u64 << 24) as f32 - 0.5;
        }
        let fast = a.matmul(&b);
        let slow = a.matmul_naive(&b);
        assert!(
            fast.as_slice()
                .iter()
                .zip(slow.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "blocked != naive at shape {m}x{k}x{n}"
        );
    }
}

/// NaN and infinity must flow through the kernels — the seed's zero-skip
/// fast path silently swallowed `0 * NaN`.
#[test]
fn non_finite_values_propagate_through_kernels() {
    let mut a = Matrix::zeros(3, 3);
    a[(1, 1)] = f32::NAN;
    let b = Matrix::filled(3, 3, 1.0);
    assert!(a.matmul(&b)[(1, 0)].is_nan(), "matmul must propagate NaN");
    assert!(
        a.matmul_tn(&b)[(1, 0)].is_nan(),
        "matmul_tn must propagate NaN"
    );
    assert!(
        b.matmul_nt(&a)[(0, 1)].is_nan(),
        "matmul_nt must propagate NaN"
    );

    let mut m = Matrix::zeros(2, 2);
    m.rank1_update(1.0, &[0.0, 1.0], &[f32::INFINITY, 2.0]);
    assert!(
        m[(0, 0)].is_nan(),
        "rank1_update: 0 * inf must produce NaN, not skip"
    );
    assert_eq!(m[(1, 0)], f32::INFINITY);
}
