//! Property-based tests for the tensor substrate.

use poseidon_tensor::bytesio;
use poseidon_tensor::quantize::OneBitQuantizer;
use poseidon_tensor::{Matrix, SfBatch, SufficientFactor};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn sf_strategy(max_dim: usize, max_k: usize) -> impl Strategy<Value = SfBatch> {
    (1..=max_dim, 1..=max_dim, 1..=max_k).prop_flat_map(|(m, n, k)| {
        proptest::collection::vec(
            (
                proptest::collection::vec(-10.0f32..10.0, m),
                proptest::collection::vec(-10.0f32..10.0, n),
            ),
            k,
        )
        .prop_map(|pairs| {
            SfBatch::from_factors(
                pairs
                    .into_iter()
                    .map(|(u, v)| SufficientFactor::new(u, v))
                    .collect(),
            )
        })
    })
}

/// Naive reference matmul used to validate the optimised loop orders.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

proptest! {
    #[test]
    fn matmul_matches_reference(
        a in matrix_strategy(12),
        bcols in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Matrix::zeros(a.cols(), bcols);
        for v in b.as_mut_slice() { *v = rng.gen_range(-5.0..5.0); }
        let fast = a.matmul(&b);
        let slow = reference_matmul(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) <= 1e-3 * (1.0 + slow.max_abs()));
    }

    #[test]
    fn transpose_products_agree(a in matrix_strategy(10), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Matrix::zeros(a.rows(), 7);
        for v in b.as_mut_slice() { *v = rng.gen_range(-5.0..5.0); }
        let tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        prop_assert!(tn.max_abs_diff(&explicit) <= 1e-3 * (1.0 + explicit.max_abs()));
    }

    #[test]
    fn sf_reconstruction_equals_sum_of_outer_products(batch in sf_strategy(10, 6)) {
        let dense = batch.reconstruct();
        let (m, n) = batch.shape().unwrap();
        let mut expect = Matrix::zeros(m, n);
        for sf in batch.factors() {
            for r in 0..m {
                for c in 0..n {
                    expect[(r, c)] += sf.u[r] * sf.v[c];
                }
            }
        }
        prop_assert!(dense.max_abs_diff(&expect) <= 1e-3 * (1.0 + expect.max_abs()));
    }

    #[test]
    fn matrix_codec_roundtrips(m in matrix_strategy(16)) {
        let bytes = bytesio::encode_matrix(&m);
        prop_assert_eq!(bytes.len(), bytesio::matrix_wire_bytes(m.rows(), m.cols()));
        let back = bytesio::decode_matrix(&bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn sf_codec_roundtrips(batch in sf_strategy(8, 5)) {
        let bytes = bytesio::encode_sf_batch(&batch);
        let (m, n) = batch.shape().unwrap();
        prop_assert_eq!(bytes.len(), bytesio::sf_batch_wire_bytes(batch.len(), m, n));
        let back = bytesio::decode_sf_batch(&bytes).unwrap();
        prop_assert_eq!(back, batch);
    }

    /// Decoders never panic on arbitrary bytes — they return an error (or
    /// `None`) instead. This is the transport's safety boundary.
    #[test]
    fn decoders_survive_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = bytesio::decode_matrix(&bytes);
        let _ = bytesio::decode_sf_batch(&bytes);
        let _ = poseidon_tensor::quantize::QuantizedGrad::from_bytes(&bytes);
    }

    /// Truncating a valid encoding at any point is detected, never mis-decoded
    /// into a wrong-but-plausible value of the same length.
    #[test]
    fn truncated_matrix_never_decodes(m in matrix_strategy(8), cut in 0usize..10) {
        let bytes = bytesio::encode_matrix(&m);
        if cut > 0 && cut <= bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            prop_assert!(bytesio::decode_matrix(truncated).is_err());
        }
    }

    #[test]
    fn quantizer_residual_is_exact_error(m in matrix_strategy(8)) {
        let mut q = OneBitQuantizer::new(m.rows(), m.cols());
        let decoded = q.quantize(&m).dequantize();
        // After one step, residual must equal input - decoded exactly.
        let mut expect = m.clone();
        expect.sub_assign(&decoded);
        prop_assert_eq!(q.residual().clone(), expect);
    }

    #[test]
    fn quantizer_conserves_cumulative_mass(
        m in matrix_strategy(6),
        steps in 1usize..8,
    ) {
        // Invariant of error feedback: sum of decoded msgs + final residual
        // == sum of inputs (up to f32 accumulation error).
        let mut q = OneBitQuantizer::new(m.rows(), m.cols());
        let mut decoded_sum = Matrix::zeros(m.rows(), m.cols());
        for _ in 0..steps {
            decoded_sum.add_assign(&q.quantize(&m).dequantize());
        }
        decoded_sum.add_assign(q.residual());
        let mut input_sum = Matrix::zeros(m.rows(), m.cols());
        for _ in 0..steps {
            input_sum.add_assign(&m);
        }
        prop_assert!(decoded_sum.max_abs_diff(&input_sum) <= 1e-2 * (1.0 + input_sum.max_abs()));
    }
}
