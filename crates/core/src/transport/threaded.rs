//! The blocking thread-per-peer TCP transport — the measured *baseline* the
//! event-loop core ([`super::TcpTransport`]) is benchmarked against, kept
//! fully functional (`transport_bench --transport threaded`, and
//! `poseidon-node --transport threaded`).
//!
//! Topology is the shared full mesh of unidirectional connections
//! ([`super::net`]). Each endpoint runs **one reader thread per inbound
//! stream** plus an acceptor — O(peers) threads — and every send serialises
//! the whole frame into a fresh buffer before a blocking `write_all`. Those
//! two costs (thread-per-peer scheduling, allocate-and-copy per frame) are
//! exactly what the event-loop core removes; see `BENCH_transport.json` for
//! the measured difference.
//!
//! The mesh is self-healing exactly like the evented core: a broken outbound
//! stream is redialed with capped exponential [`Backoff`] (bounded by
//! [`TcpFabricSpec::reconnect_timeout`]) and the frame is rewritten; the
//! persistent acceptor adopts re-accepted streams behind the (peer,
//! generation) [`HelloGate`](super::net::HelloGate), so a duplicate HELLO
//! from a racing redial can never install two live readers.

use super::net::{self, dial_once, validate_hello, HelloGate, TcpFabricSpec, ACCEPT_POLL};
use super::{Backoff, Envelope, Message, RecvTracker, TrafficCounters, Transport, TransportError};
use crate::telemetry;
use crate::wire::{assemble, encode_frame_stamped, parse_header, FRAME_HEADER_BYTES};
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared between the endpoint, its persistent acceptor, and every
/// reader thread — the machinery that lets readers come and go as peers
/// disconnect and reconnect.
struct ReaderHub {
    /// Endpoint id, for reader telemetry track names.
    me: usize,
    /// Inbox sender cloned into each reader; `None` once shut down so the
    /// channel can close.
    tx: Mutex<Option<Sender<Envelope>>>,
    /// First *protocol* error any reader hit (corrupt frame); surfaced by
    /// `recv_timeout` so stalls are diagnosable. Plain I/O errors and EOF
    /// are benign — the peer may be reconnecting.
    reader_err: Mutex<Option<TransportError>>,
    /// Envelopes enqueued on the inbox but not yet received — the reader
    /// queue depth sampled by the `rx.queue` telemetry counter.
    inflight: AtomicU64,
    /// Clones of every inbound stream ever adopted, kept to force readers
    /// out of blocking reads during shutdown.
    inbound: Mutex<Vec<TcpStream>>,
    /// Live (and finished) reader threads, reaped at shutdown.
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Set at shutdown; stops the acceptor and rejects new adoptions.
    down: AtomicBool,
    /// Inbound streams re-accepted after the initial mesh.
    reaccepts: AtomicU64,
    /// (peer, generation) idempotence gate for stream adoption.
    gate: HelloGate,
}

impl ReaderHub {
    /// Registers an inbound stream from `peer` and spawns its reader.
    fn adopt(self: &Arc<Self>, peer: usize, from_node: usize, stream: TcpStream) {
        if self.down.load(Ordering::SeqCst) {
            return;
        }
        let Some(tx) = self.tx.lock().expect("hub tx lock").clone() else {
            return;
        };
        let Ok(clone) = stream.try_clone() else {
            return;
        };
        self.inbound.lock().expect("inbound lock").push(clone);
        let hub = Arc::clone(self);
        let me = self.me;
        let handle = std::thread::spawn(move || {
            telemetry::set_thread_track(format!("rx e{me}<-e{peer}"));
            reader_loop(stream, from_node, &tx, &hub);
        });
        self.readers.lock().expect("readers lock").push(handle);
    }
}

/// One endpoint's attachment to a TCP fabric over the thread-per-peer core.
pub struct ThreadedTcpTransport {
    me: usize,
    node: usize,
    spec: TcpFabricSpec,
    /// Outbound write halves, indexed by peer endpoint; `None` for `me`.
    /// The stream inside is *replaced* when a send reconnects.
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// Connection generation of the next redial per peer (the initial mesh
    /// is generation 1).
    gens: Vec<AtomicU32>,
    /// Loop-back path to our own inbox (dropped at shutdown so readers'
    /// sender drops can close the channel).
    self_tx: Option<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    hub: Arc<ReaderHub>,
    acceptor: Option<JoinHandle<()>>,
    counters: Arc<TrafficCounters>,
    tracker: RecvTracker,
    /// Successful outbound reconnects (for stats lines and tests).
    reconnects: AtomicU64,
    /// Per-peer tx/rx frame+byte counters plus the reconnect counter,
    /// resolved at connect so the send path records registry-free.
    peer_metrics: crate::metrics::PeerCounters,
    m_reconnects: crate::metrics::Counter,
    down: bool,
    /// This endpoint's membership epoch: stamped on every send, fences every
    /// receive (stale data frames are dropped and counted).
    membership_epoch: AtomicU32,
}

impl ThreadedTcpTransport {
    /// Binds this endpoint's listener from the spec and joins the mesh.
    /// Blocks until connections to and from every peer are up, or until
    /// `spec.connect_timeout`.
    pub fn connect(spec: &TcpFabricSpec, me: usize) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(spec.addrs[me])
            .map_err(|e| TransportError::Handshake(format!("bind {}: {e}", spec.addrs[me])))?;
        Self::connect_with_listener(spec, me, listener, None)
    }

    /// Joins the mesh through an already-bound listener (for ephemeral-port
    /// fabrics inside one process). `shared_counters` lets colocated test
    /// endpoints write one ledger; `None` gives this endpoint its own ledger
    /// holding only frames *it* sends — the multi-process configuration,
    /// merged later via snapshots.
    pub fn connect_with_listener(
        spec: &TcpFabricSpec,
        me: usize,
        listener: TcpListener,
        shared_counters: Option<Arc<TrafficCounters>>,
    ) -> Result<Self, TransportError> {
        let n = spec.addrs.len();
        assert_eq!(n, spec.node_of_endpoint.len(), "malformed fabric spec");
        assert!(me < n, "endpoint id {me} out of range for {n} endpoints");
        let deadline = Instant::now() + spec.connect_timeout;
        let counters = shared_counters
            .unwrap_or_else(|| Arc::new(TrafficCounters::new(spec.physical_nodes())));

        let (self_tx, inbox) = channel();
        let hub = Arc::new(ReaderHub {
            me,
            tx: Mutex::new(Some(self_tx.clone())),
            reader_err: Mutex::new(None),
            inflight: AtomicU64::new(0),
            inbound: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            down: AtomicBool::new(false),
            reaccepts: AtomicU64::new(0),
            gate: HelloGate::new(n),
        });

        // The acceptor accepts the initial mesh (reported through `init_tx`)
        // and then *keeps accepting* for the life of the endpoint, adopting
        // every reconnecting peer — regardless of process start-up order at
        // boot, and regardless of socket failures afterwards.
        let (init_tx, init_rx) = channel();
        let acceptor = {
            let hub = Arc::clone(&hub);
            let spec = spec.clone();
            std::thread::spawn(move || acceptor_loop(listener, &spec, me, &hub, init_tx, deadline))
        };

        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..n).map(|_| None).collect();
        let mut dial_err = None;
        for peer in (0..n).filter(|&p| p != me) {
            match net::dial(spec, me, peer, deadline) {
                Ok(stream) => writers[peer] = Some(Mutex::new(stream)),
                Err(e) => {
                    dial_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = dial_err {
            hub.down.store(true, Ordering::SeqCst);
            let _ = acceptor.join();
            return Err(e);
        }

        let accepted = init_rx
            .recv()
            .map_err(|_| TransportError::Handshake("acceptor thread panicked".into()))??;
        for (peer, stream) in accepted {
            hub.adopt(peer, spec.node_of_endpoint[peer], stream);
        }

        Ok(Self {
            me,
            node: spec.node_of_endpoint[me],
            spec: spec.clone(),
            writers,
            gens: (0..n).map(|_| AtomicU32::new(1)).collect(),
            self_tx: Some(self_tx),
            inbox,
            hub,
            acceptor: Some(acceptor),
            counters,
            tracker: RecvTracker::default(),
            reconnects: AtomicU64::new(0),
            peer_metrics: crate::metrics::PeerCounters::new(me, n),
            m_reconnects: crate::metrics::counter(
                "poseidon_reconnects_total",
                &[("endpoint", &me.to_string())],
            ),
            down: false,
            membership_epoch: AtomicU32::new(0),
        })
    }

    /// Successful outbound reconnects so far.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Inbound streams re-accepted after the initial mesh.
    pub fn reaccept_count(&self) -> u64 {
        self.hub.reaccepts.load(Ordering::Relaxed)
    }

    /// Duplicate/stale HELLOs the (peer, generation) gate rejected.
    pub fn dup_hello_count(&self) -> u64 {
        self.hub.gate.dup_count()
    }

    /// The reader error, if any, else the fallback.
    fn pending_error(&self, fallback: TransportError) -> TransportError {
        self.hub
            .reader_err
            .lock()
            .expect("reader error lock")
            .clone()
            .unwrap_or(fallback)
    }

    /// Notes a delivered envelope: queue-depth bookkeeping plus timeout
    /// diagnostics.
    fn on_delivered(&self, env: &Envelope) {
        self.hub.inflight.fetch_sub(1, Ordering::Relaxed);
        self.tracker.note(env);
        self.peer_metrics.note_rx(env.src, env.msg.wire_bytes());
    }

    /// Epoch fence at the dequeue point: a data frame from a stale membership
    /// epoch is dropped and counted, never delivered.
    fn admit(&self, env: Envelope) -> Option<Envelope> {
        let current = self.membership_epoch.load(Ordering::Relaxed);
        if super::stale_epoch(&env, current) {
            self.hub.inflight.fetch_sub(1, Ordering::Relaxed);
            super::note_stale_epoch_frame(self.me, env.epoch, current);
            return None;
        }
        self.on_delivered(&env);
        Some(env)
    }

    /// Redials `to` after a broken send, with the fabric's capped
    /// exponential backoff, bounded by `reconnect_timeout`. Every attempt
    /// counts toward the endpoint's [`TimeoutDiag::attempts`](super::TimeoutDiag)
    /// so a dead peer's verdict states how hard we tried.
    fn redial(&self, to: usize, cause: &std::io::Error) -> Result<TcpStream, TransportError> {
        let addr = self.spec.addrs[to];
        let deadline = Instant::now() + self.spec.reconnect_timeout;
        let mut backoff = Backoff::new(self.spec.backoff_base, self.spec.backoff_cap);
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            self.tracker.note_attempt();
            let generation = self.gens[to].fetch_add(1, Ordering::Relaxed) + 1;
            match dial_once(addr, self.me, generation, Duration::from_secs(1)) {
                Ok(stream) => {
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                    self.m_reconnects.inc();
                    telemetry::instant("reconnect", to as u64, attempts);
                    return Ok(stream);
                }
                Err(_) => {
                    let delay = backoff.next_delay();
                    if Instant::now() + delay >= deadline {
                        return Err(TransportError::Io(format!(
                            "send to endpoint {to}: {cause}; \
                             reconnect gave up after {attempts} attempts"
                        )));
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

impl Transport for ThreadedTcpTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn endpoint_id(&self) -> usize {
        self.me
    }

    fn endpoints(&self) -> usize {
        self.writers.len()
    }

    fn traffic(&self) -> &Arc<TrafficCounters> {
        &self.counters
    }

    fn send_seq(&self, to: usize, msg: Message, seq: u32) -> Result<(), TransportError> {
        if to == self.me {
            let tx = self.self_tx.as_ref().ok_or(TransportError::Closed)?;
            if telemetry::is_enabled() {
                telemetry::instant("tx.frame", to as u64, msg.wire_bytes());
            }
            self.peer_metrics.note_tx(to, msg.wire_bytes());
            self.hub.inflight.fetch_add(1, Ordering::Relaxed);
            // Loop-back within one endpoint never touches the socket and, like
            // all same-node traffic, is never counted.
            return tx
                .send(Envelope {
                    from: self.node,
                    src: self.me,
                    seq,
                    epoch: self.membership_epoch.load(Ordering::Relaxed),
                    msg,
                })
                .map_err(|_| TransportError::Closed);
        }
        let writer = self
            .writers
            .get(to)
            .ok_or(TransportError::Closed)?
            .as_ref()
            .ok_or(TransportError::Closed)?;
        let frame = encode_frame_stamped(
            &msg,
            self.me as u32,
            seq,
            self.membership_epoch.load(Ordering::Relaxed),
        );
        if telemetry::is_enabled() {
            telemetry::instant("tx.frame", to as u64, frame.len() as u64);
        }
        self.peer_metrics.note_tx(to, frame.len() as u64);
        {
            let mut stream = writer.lock().expect("writer lock");
            if let Err(e) = stream.write_all(&frame) {
                // The link broke (peer restart, injected sever). Reconnect
                // and rewrite the whole frame: the peer's reader discards
                // partial frames at EOF, so frame boundaries stay intact.
                *stream = self.redial(to, &e)?;
                stream
                    .write_all(&frame)
                    .map_err(|e| TransportError::Io(format!("resend to endpoint {to}: {e}")))?;
            }
        }
        // The counted bytes are the length of the buffer just written.
        self.counters.record(
            self.node,
            self.spec.node_of_endpoint[to],
            frame.len() as u64,
        );
        Ok(())
    }

    fn sever_link(&self, to: usize) -> Result<(), TransportError> {
        if to == self.me {
            return Ok(());
        }
        if let Some(Some(writer)) = self.writers.get(to).map(|w| w.as_ref()) {
            let stream = writer.lock().expect("writer lock");
            // Best-effort: an already-dead socket is already severed.
            let _ = stream.shutdown(Shutdown::Both);
            telemetry::instant("sever", to as u64, 0);
        }
        Ok(())
    }

    fn recv(&self) -> Result<Envelope, TransportError> {
        loop {
            let env = self
                .inbox
                .recv()
                .map_err(|_| self.pending_error(TransportError::Closed))?;
            if let Some(env) = self.admit(env) {
                return Ok(env);
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Envelope>, TransportError> {
        loop {
            match self.inbox.try_recv() {
                Ok(env) => {
                    if let Some(env) = self.admit(env) {
                        return Ok(Some(env));
                    }
                }
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    return Err(self.pending_error(TransportError::Closed))
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        loop {
            match self.inbox.recv_timeout(timeout) {
                Ok(env) => {
                    if let Some(env) = self.admit(env) {
                        return Ok(env);
                    }
                }
                // A reader that hit a protocol violation explains the silence
                // better than "timeout".
                Err(RecvTimeoutError::Timeout) => {
                    return Err(self.pending_error(self.tracker.timeout(self.me, timeout)))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(self.pending_error(TransportError::Closed))
                }
            }
        }
    }

    fn set_epoch(&self, epoch: u32) {
        self.membership_epoch.store(epoch, Ordering::Relaxed);
    }

    fn current_epoch(&self) -> u32 {
        self.membership_epoch.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) -> Result<(), TransportError> {
        if self.down {
            return Ok(());
        }
        self.down = true;
        // Stop the acceptor first so no new readers appear mid-teardown.
        self.hub.down.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.self_tx = None;
        *self.hub.tx.lock().expect("hub tx lock") = None;
        // FIN every outbound stream: peers read to EOF, losing nothing.
        for writer in self.writers.iter().flatten() {
            let stream = writer.lock().expect("writer lock");
            let _ = stream.shutdown(Shutdown::Write);
        }
        // Force-close inbound streams so readers exit even if a peer never
        // half-closed its side (crash), then reap them.
        for stream in self.hub.inbound.lock().expect("inbound lock").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = self
            .hub
            .readers
            .lock()
            .expect("readers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

impl Drop for ThreadedTcpTransport {
    fn drop(&mut self) {
        if !self.down {
            // Best-effort teardown on panic paths: close the sockets so
            // acceptor and reader threads exit, but do not block joining.
            self.down = true;
            self.hub.down.store(true, Ordering::SeqCst);
            for writer in self.writers.iter().flatten() {
                if let Ok(stream) = writer.lock() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
            if let Ok(inbound) = self.hub.inbound.lock() {
                for stream in inbound.iter() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

/// Accepts `expected` distinct inbound peers, validating each HELLO through
/// the hub's idempotence gate, until `deadline`. Phase 1 of the acceptor.
fn accept_peers(
    listener: &TcpListener,
    me: usize,
    expected: usize,
    hub: &ReaderHub,
    deadline: Instant,
) -> Result<Vec<(usize, TcpStream)>, TransportError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Handshake(format!("nonblocking accept: {e}")))?;
    let mut peers: Vec<(usize, TcpStream)> = Vec::with_capacity(expected);
    while peers.len() < expected {
        if Instant::now() >= deadline {
            return Err(TransportError::Handshake(format!(
                "endpoint {me}: accepted {} of {expected} peers before timeout",
                peers.len()
            )));
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| TransportError::Handshake(format!("blocking stream: {e}")))?;
                let hello = validate_hello(&mut stream, me)?;
                // A duplicate HELLO (dial race) is dropped; a newer
                // generation replaces the stale stream.
                if !hub.gate.admit(hello) {
                    continue;
                }
                if let Some(slot) = peers.iter_mut().find(|(p, _)| *p == hello.peer) {
                    slot.1 = stream;
                } else {
                    peers.push((hello.peer, stream));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                return Err(TransportError::Handshake(format!("accept: {e}")));
            }
        }
    }
    Ok(peers)
}

/// The persistent acceptor: phase 1 collects the initial mesh and reports it
/// through `init_tx`; phase 2 re-accepts reconnecting peers until shutdown,
/// adopting each fresh stream into the hub.
fn acceptor_loop(
    listener: TcpListener,
    spec: &TcpFabricSpec,
    me: usize,
    hub: &Arc<ReaderHub>,
    init_tx: Sender<Result<Vec<(usize, TcpStream)>, TransportError>>,
    deadline: Instant,
) {
    telemetry::set_thread_track(format!("accept e{me}"));
    let initial = accept_peers(&listener, me, spec.addrs.len() - 1, hub, deadline);
    let ok = initial.is_ok();
    let _ = init_tx.send(initial);
    if !ok {
        return;
    }
    // Phase 2: the mesh is up; keep the door open for reconnects.
    while !hub.down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // A malformed reconnect HELLO is dropped, not fatal: the
                // established mesh keeps running.
                let Ok(hello) = validate_hello(&mut stream, me) else {
                    continue;
                };
                if hello.peer >= spec.node_of_endpoint.len() || !hub.gate.admit(hello) {
                    continue;
                }
                hub.reaccepts.fetch_add(1, Ordering::Relaxed);
                telemetry::instant("reconnect.accept", hello.peer as u64, 0);
                hub.adopt(hello.peer, spec.node_of_endpoint[hello.peer], stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Decodes frames off one inbound stream until EOF or an I/O error (both
/// benign: the peer may be gone for good — that surfaces as a recv timeout —
/// or reconnecting, in which case the acceptor spawns our replacement).
/// Only a wire-protocol violation poisons the endpoint.
fn reader_loop(mut stream: TcpStream, from_node: usize, tx: &Sender<Envelope>, hub: &ReaderHub) {
    loop {
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        match net::read_full(&mut stream, &mut hdr) {
            Ok(true) => {}
            // Clean EOF, or the peer died / was severed mid-frame. The
            // stream's partial tail is discarded; a reconnecting sender
            // rewrites whole frames, so no fragment survives.
            Ok(false) | Err(_) => return,
        }
        let header = match parse_header(&hdr) {
            Ok(h) => h,
            Err(e) => {
                let mut slot = hub.reader_err.lock().expect("reader error lock");
                if slot.is_none() {
                    *slot = Some(TransportError::Frame(e));
                }
                return;
            }
        };
        // Dirty lease: `read_full` overwrites every byte or the frame is
        // dropped without delivery, so zeroing first would be pure waste.
        let mut payload = crate::pool::BufPool::global().get_dirty(header.payload_len);
        match net::read_full(&mut stream, &mut payload) {
            Ok(true) => {}
            Ok(false) | Err(_) => return, // benign: died mid-frame
        }
        let msg = assemble(&header, payload.freeze());
        let queued = hub.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        if telemetry::is_enabled() {
            telemetry::instant(
                "rx.frame",
                from_node as u64,
                (FRAME_HEADER_BYTES + header.payload_len) as u64,
            );
            telemetry::counter("rx.queue", from_node as u64, queued);
        }
        if tx
            .send(Envelope {
                from: from_node,
                src: header.src as usize,
                seq: header.seq,
                epoch: header.epoch,
                msg,
            })
            .is_err()
        {
            return; // local endpoint shut down first
        }
    }
}

#[cfg(test)]
mod tests {
    use super::net::bind_ephemeral;
    use super::*;
    use crate::wire::LAYER_GRANULAR_CHUNK;
    use bytes::Bytes;
    use std::net::SocketAddr;

    fn grad(iter: u64, payload: usize) -> Message {
        Message::GradChunk {
            iter,
            layer: 1,
            chunk: LAYER_GRANULAR_CHUNK,
            codec: crate::wire::Codec::Identity,
            data: Bytes::from(vec![7u8; payload]),
        }
    }

    fn quick_spec(addrs: Vec<SocketAddr>, node_of_endpoint: Vec<usize>) -> TcpFabricSpec {
        TcpFabricSpec {
            addrs,
            node_of_endpoint,
            connect_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            reconnect_timeout: Duration::from_secs(5),
        }
    }

    /// Builds an ephemeral-port fabric and runs `f(endpoint)` on one thread
    /// per endpoint, all sharing one ledger.
    fn with_fabric(
        node_of_endpoint: &[usize],
        f: impl Fn(ThreadedTcpTransport) + Send + Sync,
    ) -> Arc<TrafficCounters> {
        let (listeners, addrs) = bind_ephemeral(node_of_endpoint.len()).expect("bind");
        let spec = quick_spec(addrs, node_of_endpoint.to_vec());
        let counters = Arc::new(TrafficCounters::new(spec.physical_nodes()));
        std::thread::scope(|s| {
            for (me, listener) in listeners.into_iter().enumerate() {
                let spec = spec.clone();
                let counters = Arc::clone(&counters);
                let f = &f;
                s.spawn(move || {
                    let ep = ThreadedTcpTransport::connect_with_listener(
                        &spec,
                        me,
                        listener,
                        Some(counters),
                    )
                    .expect("mesh");
                    f(ep);
                });
            }
        });
        counters
    }

    #[test]
    fn mesh_delivers_in_both_directions_and_counts_frames() {
        let counters = with_fabric(&[0, 1], |mut ep| {
            let other = 1 - ep.endpoint_id();
            ep.send(other, grad(ep.endpoint_id() as u64, 40)).unwrap();
            let env = ep.recv().unwrap();
            assert_eq!(env.from, other);
            assert_eq!(env.src, other, "src names the sending endpoint");
            assert_eq!(env.msg.iter(), other as u64);
            ep.shutdown().unwrap();
        });
        let frame = (FRAME_HEADER_BYTES + 40) as u64;
        assert_eq!(counters.tx_bytes(0), frame);
        assert_eq!(counters.tx_bytes(1), frame);
        assert_eq!(counters.total_bytes(), 2 * frame);
    }

    #[test]
    fn frames_keep_per_pair_order_under_load() {
        with_fabric(&[0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                for i in 0..500u64 {
                    ep.send(1, grad(i, (i % 97) as usize)).unwrap();
                }
            } else {
                for i in 0..500u64 {
                    let env = ep.recv().unwrap();
                    assert_eq!(env.msg.iter(), i, "reordered frame");
                }
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn severed_link_reconnects_and_redelivers() {
        with_fabric(&[0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                ep.send(1, grad(0, 32)).unwrap();
                // Kill our own outbound socket, then send again: the send
                // path must redial and rewrite the frame.
                ep.sever_link(1).unwrap();
                ep.send(1, grad(1, 32)).unwrap();
                assert_eq!(ep.reconnect_count(), 1, "exactly one reconnect");
            } else {
                let mut iters = Vec::new();
                while iters.len() < 2 {
                    let env = ep
                        .recv_timeout(Duration::from_secs(10))
                        .expect("both frames must arrive despite the sever");
                    iters.push(env.msg.iter());
                }
                iters.sort_unstable();
                assert_eq!(iters, vec![0, 1]);
                assert_eq!(ep.reaccept_count(), 1, "acceptor adopted the redial");
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn connect_times_out_without_peers() {
        let (listeners, addrs) = bind_ephemeral(2).expect("bind");
        let mut spec = quick_spec(addrs, vec![0, 1]);
        spec.connect_timeout = Duration::from_millis(200);
        // Endpoint 1 never shows up.
        drop(listeners);
        let l = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        spec.addrs[0] = l.local_addr().unwrap();
        let err = match ThreadedTcpTransport::connect_with_listener(&spec, 0, l, None) {
            Ok(_) => panic!("mesh connect must fail without peers"),
            Err(e) => e,
        };
        assert!(matches!(err, TransportError::Handshake(_)), "{err:?}");
    }
}
