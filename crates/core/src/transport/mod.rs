//! The transport layer: pluggable point-to-point message delivery with
//! per-node byte accounting.
//!
//! The comm plane is split into three layers (DESIGN.md §2.4):
//!
//! 1. **Messages** ([`Message`], [`Envelope`]) — what the runtime exchanges.
//! 2. **Wire format** ([`crate::wire`]) — how a message is serialised into one
//!    self-describing frame. `Message::wire_bytes()` is derived from the
//!    encoded frame, so accounting can never drift from the bytes moved.
//! 3. **Transports** (the [`Transport`] trait) — how frames travel:
//!    [`InProcTransport`] over in-process channels for the threaded runtime,
//!    [`TcpTransport`] over length-prefixed TCP sockets for the
//!    one-process-per-endpoint runtime (`poseidon-node`).
//!
//! Byte accounting is uniform across transports: every frame is counted on
//! the *send* side against the (source, destination) physical nodes, and
//! loop-back traffic — a worker talking to the KV shard colocated on its own
//! node — is delivered but *not* counted, matching Table 1's
//! `(P1 + P2 − 2)/P2` accounting and the simulator's ledger semantics.
//! Counting on the send side only means per-process counters from a TCP
//! deployment can be summed without double-counting a frame.

mod inproc;
mod net;
mod reliable;
pub(crate) mod sys;
mod tcp;
mod threaded;

pub use inproc::{fabric, fabric_with_nodes, InProcTransport};
pub use net::{bind_ephemeral, TcpFabricSpec};
pub use reliable::{ReliabilityConfig, ReliabilityStats, ReliableTransport};
pub use tcp::TcpTransport;
pub use threaded::ThreadedTcpTransport;

use crate::wire::{self, FrameError};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A message between nodes. Payloads are pre-serialised byte buffers; the
/// transport never inspects them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Gradient for one KV pair, worker → server, encoded with `codec`.
    GradChunk {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Chunk index within the layer.
        chunk: u32,
        /// Payload encoding (rides the frame header's layer word).
        codec: wire::Codec,
        /// Encoded payload.
        data: Bytes,
    },
    /// Parameters for one KV pair, server → worker. With the identity codec
    /// the payload is the fresh parameter values; with a lossy codec it is
    /// the compressed *update delta* the worker applies to its replica.
    ParamChunk {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Chunk index within the layer.
        chunk: u32,
        /// Payload encoding (rides the frame header's layer word).
        codec: wire::Codec,
        /// Encoded payload.
        data: Bytes,
    },
    /// A batch of sufficient factors, worker → peer (SFB) or worker → server
    /// (Adam).
    SfPush {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Encoded `SfBatch`.
        data: Bytes,
    },
    /// A dense parameter matrix, server → worker (Adam's pull path).
    ParamMatrix {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Encoded payload.
        data: Bytes,
    },
    /// Cumulative acknowledgement (reliable layer, DESIGN.md §2.7): every
    /// data frame with sequence number ≤ `upto` on this link was delivered.
    /// Never reaches the runtime — [`ReliableTransport`] consumes it.
    Ack {
        /// Highest contiguously delivered sequence number.
        upto: u64,
    },
    /// Retransmit request (reliable layer): the receiver is still waiting
    /// for the data frame with sequence number `expect` on this link.
    /// Never reaches the runtime — [`ReliableTransport`] consumes it.
    Nack {
        /// The sequence number the receiver expects next.
        expect: u64,
    },
    /// A collective (ring/tree allreduce) segment travelling worker → worker.
    /// `route` packs the phase, originating worker and segment index
    /// ([`crate::wire::pack_collective`]); it rides in the frame's chunk
    /// field, so the wire format is unchanged.
    Collective {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Packed `(phase, origin, seg)` route.
        route: u32,
        /// Payload encoding (rides the frame header's layer word).
        codec: wire::Codec,
        /// Encoded payload (scaled partial sums or the folded update).
        data: Bytes,
    },
    /// One KV pair's full server state (parameters, velocity, reply-codec
    /// residual) travelling old owner → new owner during an elastic
    /// re-sharding handoff (DESIGN.md §2.11). `iter` is the boundary
    /// iteration the handoff happens at; `(layer, chunk)` is the KV key.
    Handoff {
        /// The iteration boundary this handoff belongs to.
        iter: u64,
        /// Layer index of the KV pair.
        layer: u32,
        /// Chunk index of the KV pair.
        chunk: u32,
        /// Encoded pair state ([`crate::checkpoint`]'s pair-blob codec).
        data: Bytes,
    },
}

impl Message {
    /// Bytes this message occupies on the wire — the length of its encoded
    /// frame (header plus payload), not a hand-maintained formula.
    pub fn wire_bytes(&self) -> u64 {
        (wire::FRAME_HEADER_BYTES + self.payload_len()) as u64
    }

    /// The iteration stamp carried by the message (control frames: their
    /// ack/nack operand, which travels in the same header field).
    pub fn iter(&self) -> u64 {
        match self {
            Message::GradChunk { iter, .. }
            | Message::ParamChunk { iter, .. }
            | Message::SfPush { iter, .. }
            | Message::ParamMatrix { iter, .. }
            | Message::Collective { iter, .. }
            | Message::Handoff { iter, .. } => *iter,
            Message::Ack { upto } => *upto,
            Message::Nack { expect } => *expect,
        }
    }

    /// The layer index carried by the message.
    pub fn layer(&self) -> u32 {
        match self {
            Message::GradChunk { layer, .. }
            | Message::ParamChunk { layer, .. }
            | Message::SfPush { layer, .. }
            | Message::ParamMatrix { layer, .. }
            | Message::Collective { layer, .. }
            | Message::Handoff { layer, .. } => *layer,
            Message::Ack { .. } | Message::Nack { .. } => 0,
        }
    }

    /// The payload codec carried by the message (identity for variants
    /// whose payload has a fixed encoding).
    pub fn codec(&self) -> wire::Codec {
        match self {
            Message::GradChunk { codec, .. }
            | Message::ParamChunk { codec, .. }
            | Message::Collective { codec, .. } => *codec,
            _ => wire::Codec::Identity,
        }
    }

    /// The wire-tag name of the variant, for diagnostics.
    pub fn tag_name(&self) -> &'static str {
        match self {
            Message::GradChunk { .. } => "GradChunk",
            Message::ParamChunk { .. } => "ParamChunk",
            Message::SfPush { .. } => "SfPush",
            Message::ParamMatrix { .. } => "ParamMatrix",
            Message::Ack { .. } => "Ack",
            Message::Nack { .. } => "Nack",
            Message::Collective { .. } => "Collective",
            Message::Handoff { .. } => "Handoff",
        }
    }

    /// True for the reliable layer's control frames (`Ack`/`Nack`), which
    /// carry no training data and never reach the runtime.
    pub fn is_control(&self) -> bool {
        matches!(self, Message::Ack { .. } | Message::Nack { .. })
    }

    fn payload_len(&self) -> usize {
        self.payload().len()
    }

    /// The payload bytes the frame for this message carries (empty for
    /// control frames). Pairs with
    /// [`wire::encode_header_seq`](crate::wire::encode_header_seq) so the
    /// vectored write path can ship header and payload as two `IoSlice`s
    /// without materialising the frame.
    pub fn payload(&self) -> &Bytes {
        static EMPTY: Bytes = Bytes::new();
        match self {
            Message::GradChunk { data, .. }
            | Message::ParamChunk { data, .. }
            | Message::SfPush { data, .. }
            | Message::ParamMatrix { data, .. }
            | Message::Collective { data, .. }
            | Message::Handoff { data, .. } => data,
            Message::Ack { .. } | Message::Nack { .. } => &EMPTY,
        }
    }

    /// Consumes the message, returning its payload by value (a refcount
    /// move, never a copy).
    pub(crate) fn into_payload(self) -> Bytes {
        match self {
            Message::GradChunk { data, .. }
            | Message::ParamChunk { data, .. }
            | Message::SfPush { data, .. }
            | Message::ParamMatrix { data, .. }
            | Message::Collective { data, .. }
            | Message::Handoff { data, .. } => data,
            Message::Ack { .. } | Message::Nack { .. } => Bytes::new(),
        }
    }
}

/// A delivered message plus its origin.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending *physical node*.
    pub from: usize,
    /// Sending *endpoint* (several endpoints can share a node, and the
    /// reliable layer keys its sequence streams by endpoint, not node).
    pub src: usize,
    /// Per-link sequence number stamped by the sender's reliable layer
    /// (0 = unsequenced).
    pub seq: u32,
    /// The sender's membership epoch when the frame was encoded (0 under
    /// fixed membership).
    pub epoch: u32,
    /// The message.
    pub msg: Message,
}

/// Process-wide count of data frames dropped at a transport's receive path
/// because they carried a membership epoch older than the receiver's — a
/// straggler from before a reconfiguration that must never be applied.
static STALE_EPOCH_FRAMES: AtomicU64 = AtomicU64::new(0);

/// Data frames dropped for carrying a stale membership epoch, process-wide.
pub fn stale_epoch_frames() -> u64 {
    STALE_EPOCH_FRAMES.load(Ordering::Relaxed)
}

/// True when `env` must be dropped instead of delivered: a *data* frame
/// stamped with a membership epoch older than the receiver's `current`.
/// Control frames (ack/nack) are epoch-exempt — the reliability layer's
/// bookkeeping stays valid across reconfigurations — and frames from a
/// *future* epoch are delivered (the sender crossed the boundary first; BSP
/// ordering guarantees the receiver is about to).
pub(crate) fn stale_epoch(env: &Envelope, current: u32) -> bool {
    !env.msg.is_control() && env.epoch < current
}

/// Counts one dropped stale-epoch frame (global static + metrics counter).
pub(crate) fn note_stale_epoch_frame(endpoint: usize, frame_epoch: u32, current: u32) {
    STALE_EPOCH_FRAMES.fetch_add(1, Ordering::Relaxed);
    crate::metrics::counter("poseidon_stale_epoch_frames_total", &[]).add(1);
    crate::telemetry::instant(
        "transport.stale_epoch",
        endpoint as u64,
        ((current as u64) << 32) | frame_epoch as u64,
    );
}

/// The most recent frame an endpoint received before a timeout — the first
/// thing to look at when a worker starves: *who* went quiet, and at which
/// (iteration, layer) the conversation stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LastFrame {
    /// Physical node the frame came from.
    pub from_node: usize,
    /// Wire-tag name of the frame's message variant.
    pub tag: &'static str,
    /// Iteration stamp the frame carried.
    pub iter: u64,
    /// Layer index the frame carried.
    pub layer: u32,
    /// Elapsed between that frame's arrival and the timeout firing.
    pub since: Duration,
}

/// Diagnostic context attached to a receive timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutDiag {
    /// The endpoint that timed out.
    pub endpoint: usize,
    /// The `recv_timeout` budget that expired.
    pub waited: Duration,
    /// The last frame this endpoint ever received (`None` if the peer never
    /// said anything at all).
    pub last_frame: Option<LastFrame>,
    /// Recovery attempts this endpoint made before giving up: dial retries,
    /// socket reconnects, and runtime retry rounds all count here, so a
    /// dead-peer verdict states how hard the survivor tried.
    pub attempts: u64,
    /// Event-loop context at the moment of the timeout (`None` on transports
    /// without a poller, e.g. in-process channels).
    pub poller: Option<PollerDiag>,
    /// Metrics snapshot of the stalled link at the moment of the timeout
    /// (`None` on transports that don't track link state).
    pub link: Option<LinkHealth>,
}

/// A metrics snapshot of one endpoint's link state, attached to a
/// [`TimeoutDiag`] so a dead-peer verdict carries the numbers a live scrape
/// would have shown: how much is stuck in the write queues, how stale the
/// conversation is in each direction, and how much repair work the reliable
/// layer already did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkHealth {
    /// Frames queued for transmit but not yet written.
    pub queued_frames: u64,
    /// Bytes queued for transmit but not yet written.
    pub queued_bytes: u64,
    /// Elapsed since this endpoint last put a frame on the wire (`None` if
    /// it never sent).
    pub last_tx_age: Option<Duration>,
    /// Elapsed since this endpoint last received a frame (`None` if it never
    /// received).
    pub last_rx_age: Option<Duration>,
    /// Data frames this endpoint retransmitted in response to nacks.
    pub retransmits: u64,
}

impl std::fmt::Display for LinkHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link: {} frames / {} bytes queued",
            self.queued_frames, self.queued_bytes
        )?;
        match self.last_tx_age {
            Some(age) => write!(f, ", last tx {age:.1?} ago")?,
            None => write!(f, ", never sent")?,
        }
        match self.last_rx_age {
            Some(age) => write!(f, ", last rx {age:.1?} ago")?,
            None => write!(f, ", never received")?,
        }
        if self.retransmits > 0 {
            write!(f, ", {} retransmits", self.retransmits)?;
        }
        Ok(())
    }
}

/// What the event-loop core was doing when a receive timed out: is traffic
/// stuck in *our* write queues (a flush stall), or did readiness simply stop
/// arriving (the peer went quiet)?
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PollerDiag {
    /// Frames queued but not yet written across all links.
    pub pending_tx_frames: u64,
    /// Bytes queued but not yet written across all links.
    pub pending_tx_bytes: u64,
    /// `(peer, direction, age)` of the last readiness event the poller
    /// served — direction is `"rx"` or `"tx"`.
    pub last_ready: Option<(usize, &'static str, Duration)>,
}

impl std::fmt::Display for PollerDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "poller: {} frames / {} bytes pending",
            self.pending_tx_frames, self.pending_tx_bytes
        )?;
        match &self.last_ready {
            Some((peer, dir, age)) => {
                write!(f, ", last readiness {dir} on peer {peer} {age:.1?} ago")
            }
            None => write!(f, ", no readiness event ever served"),
        }
    }
}

impl std::fmt::Display for TimeoutDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "endpoint {} waited {:.1?}", self.endpoint, self.waited)?;
        match &self.last_frame {
            Some(last) => write!(
                f,
                "; last frame {:.1?} ago from node {} ({} iter {} layer {})",
                last.since, last.from_node, last.tag, last.iter, last.layer
            )?,
            None => write!(f, "; no frame ever received")?,
        }
        if self.attempts > 0 {
            write!(f, "; {} recovery attempts", self.attempts)?;
        }
        if let Some(p) = &self.poller {
            write!(f, "; {p}")?;
        }
        if let Some(l) = &self.link {
            write!(f, "; {l}")?;
        }
        Ok(())
    }
}

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// `recv_timeout` expired with no message; in the runtime this means a
    /// peer stopped talking (crash, partition) rather than a silent hang.
    /// Carries the last frame seen so the stall is diagnosable. Boxed so
    /// the error stays pointer-sized next to the hot `Ok` path (clippy's
    /// `result_large_err`).
    Timeout(Box<TimeoutDiag>),
    /// The fabric (or the destination endpoint) has shut down.
    Closed,
    /// The TCP mesh could not be established.
    Handshake(String),
    /// An I/O error on an established connection.
    Io(String),
    /// A peer sent bytes that do not parse as a frame.
    Frame(FrameError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout(d) => write!(f, "timed out waiting for a message: {d}"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Handshake(e) => write!(f, "handshake failed: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Frame(e) => write!(f, "wire protocol violation: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Tracks the most recent frame an endpoint received, so a later timeout
/// can report who went quiet and when. One per transport endpoint; the
/// `Mutex` is uncontended (only the endpoint's receive path touches it).
#[derive(Debug, Default)]
pub(crate) struct RecvTracker {
    last: Mutex<Option<LastSeen>>,
    attempts: AtomicU64,
}

/// `(from node, frame tag, iter, layer, arrival time)` of the last envelope.
type LastSeen = (usize, &'static str, u64, u32, Instant);

impl RecvTracker {
    /// Notes a delivered envelope (and emits the `rx.frame` telemetry
    /// instant for transports with no reader thread of their own).
    pub(crate) fn note(&self, env: &Envelope) {
        *self.last.lock().unwrap() = Some((
            env.from,
            env.msg.tag_name(),
            env.msg.iter(),
            env.msg.layer(),
            Instant::now(),
        ));
    }

    /// Notes one recovery attempt (dial retry, reconnect) so a later
    /// timeout diagnostic can report how hard this endpoint tried.
    pub(crate) fn note_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Builds the enriched timeout error for `endpoint` after `waited`.
    pub(crate) fn timeout(&self, endpoint: usize, waited: Duration) -> TransportError {
        crate::telemetry::instant(
            "transport.timeout",
            endpoint as u64,
            waited.as_millis() as u64,
        );
        let last_frame = self
            .last
            .lock()
            .unwrap()
            .map(|(from_node, tag, iter, layer, at)| LastFrame {
                from_node,
                tag,
                iter,
                layer,
                since: at.elapsed(),
            });
        TransportError::Timeout(Box::new(TimeoutDiag {
            endpoint,
            waited,
            last_frame,
            attempts: self.attempts.load(Ordering::Relaxed),
            poller: None,
            link: None,
        }))
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

/// Deterministic capped exponential backoff: `base, 2·base, 4·base, …`
/// clamped to `cap`. No jitter on purpose — chaos runs must replay the same
/// attempt schedule, and on a localhost mesh there is no thundering herd to
/// spread. Shared by `TcpTransport`'s initial dials and its post-sever
/// reconnect path.
#[derive(Debug, Clone)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
}

impl Backoff {
    /// A fresh schedule starting at `base` and never exceeding `cap`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Self {
            next: base.min(cap),
            cap,
        }
    }

    /// The delay to sleep before the upcoming attempt; doubles (up to the
    /// cap) for the attempt after.
    pub fn next_delay(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(self.cap);
        d
    }
}

/// Point-to-point message delivery between the fabric's endpoints.
///
/// Contract (uniform across implementations, pinned by the shared tests in
/// `crates/core/tests/loopback_accounting.rs` and
/// `tests/transport_equivalence.rs`):
///
/// - Endpoints are addressed by fabric index `0..endpoints()`; each lives on
///   a physical node (`node()`), and several endpoints may share a node.
/// - `send` is reliable and per-(sender, receiver) ordered; it records the
///   encoded frame's length against the (source, destination) nodes in the
///   shared [`TrafficCounters`], *except* when both endpoints share a node
///   (loop-back is delivered, never counted).
/// - `recv`/`recv_timeout`/`try_recv` deliver [`Envelope`]s stamped with the
///   sender's physical node.
/// - `shutdown` flushes and tears down the endpoint; after a clean shutdown
///   of all endpoints no thread is left blocked.
pub trait Transport: Send {
    /// The physical node this endpoint lives on.
    fn node(&self) -> usize;

    /// This endpoint's fabric index.
    fn endpoint_id(&self) -> usize;

    /// Number of endpoints on the fabric.
    fn endpoints(&self) -> usize;

    /// The shared traffic ledger (one slot per *physical node*).
    fn traffic(&self) -> &Arc<TrafficCounters>;

    /// Sends `msg` to endpoint `to` stamped with per-link sequence number
    /// `seq` (0 = unsequenced), recording its frame bytes against the two
    /// endpoints' physical nodes (loop-back excluded). This is the primitive
    /// the reliable layer uses; everything else calls [`Transport::send`].
    fn send_seq(&self, to: usize, msg: Message, seq: u32) -> Result<(), TransportError>;

    /// Sends `msg` to endpoint `to`, recording its frame bytes against the
    /// two endpoints' physical nodes (loop-back excluded).
    fn send(&self, to: usize, msg: Message) -> Result<(), TransportError> {
        self.send_seq(to, msg, 0)
    }

    /// Forcibly severs the underlying link to endpoint `to` as a fault
    /// injection primitive: the next send on a socket transport hits a broken
    /// pipe and must reconnect. Transports with no physical link (in-process
    /// channels) have nothing to sever and succeed as a no-op.
    fn sever_link(&self, to: usize) -> Result<(), TransportError> {
        let _ = to;
        Ok(())
    }

    /// Blocks until a message arrives.
    fn recv(&self) -> Result<Envelope, TransportError>;

    /// Non-blocking receive; `Ok(None)` when no message is queued.
    fn try_recv(&self) -> Result<Option<Envelope>, TransportError>;

    /// Blocks until a message arrives or `timeout` elapses
    /// ([`TransportError::Timeout`]).
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError>;

    /// Advances this endpoint's membership epoch (DESIGN.md §2.11). Every
    /// frame sent afterwards is stamped with the new epoch; every *data*
    /// frame received that was stamped with an older epoch is dropped and
    /// counted ([`stale_epoch_frames`]) instead of delivered. Transports
    /// that predate elastic membership ignore the call (epoch stays 0).
    fn set_epoch(&self, epoch: u32) {
        let _ = epoch;
    }

    /// This endpoint's current membership epoch (0 under fixed membership).
    fn current_epoch(&self) -> u32 {
        0
    }

    /// Gracefully tears down this endpoint. Idempotent.
    fn shutdown(&mut self) -> Result<(), TransportError>;
}

/// Thread-safe per-node traffic counters (bytes that crossed the "network").
#[derive(Debug)]
pub struct TrafficCounters {
    tx: Vec<AtomicU64>,
    rx: Vec<AtomicU64>,
}

impl TrafficCounters {
    /// A zeroed ledger with one tx/rx slot per physical node.
    pub fn new(nodes: usize) -> Self {
        Self {
            tx: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            rx: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of physical nodes in the ledger.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Bytes sent by `node` (excluding loop-back).
    pub fn tx_bytes(&self, node: usize) -> u64 {
        self.tx[node].load(Ordering::Relaxed)
    }

    /// Bytes received by `node` (excluding loop-back).
    pub fn rx_bytes(&self, node: usize) -> u64 {
        self.rx[node].load(Ordering::Relaxed)
    }

    /// Total bytes on the network.
    pub fn total_bytes(&self) -> u64 {
        self.tx.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Per-node totals (tx + rx).
    pub fn per_node_totals(&self) -> Vec<u64> {
        (0..self.tx.len())
            .map(|n| self.tx_bytes(n) + self.rx_bytes(n))
            .collect()
    }

    /// A plain-value copy for aggregation across process boundaries.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            tx: self.tx.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            rx: self.rx.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Records one frame. Counting is send-side only in the TCP runtime, so
    /// summing per-process snapshots never double-counts a frame; loop-back
    /// (src == dst) is delivered but never counted.
    pub(crate) fn record(&self, src: usize, dst: usize, bytes: u64) {
        if src == dst {
            return;
        }
        self.tx[src].fetch_add(bytes, Ordering::Relaxed);
        self.rx[dst].fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Plain-value traffic totals, mergeable across processes. Each process in a
/// TCP deployment counts only the frames *it* sent (send-side accounting), so
/// accumulating every process's snapshot reconstructs the cluster ledger
/// without double counting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Bytes sent per physical node.
    pub tx: Vec<u64>,
    /// Bytes received per physical node.
    pub rx: Vec<u64>,
}

impl TrafficSnapshot {
    /// A zeroed snapshot for `nodes` physical nodes.
    pub fn zeros(nodes: usize) -> Self {
        Self {
            tx: vec![0; nodes],
            rx: vec![0; nodes],
        }
    }

    /// Adds `other` into `self`, growing if needed.
    pub fn accumulate(&mut self, other: &TrafficSnapshot) {
        if other.tx.len() > self.tx.len() {
            self.tx.resize(other.tx.len(), 0);
            self.rx.resize(other.rx.len(), 0);
        }
        for (n, &b) in other.tx.iter().enumerate() {
            self.tx[n] += b;
        }
        for (n, &b) in other.rx.iter().enumerate() {
            self.rx[n] += b;
        }
    }

    /// Total bytes on the network.
    pub fn total_bytes(&self) -> u64 {
        self.tx.iter().sum()
    }

    /// Per-node totals (tx + rx).
    pub fn per_node_totals(&self) -> Vec<u64> {
        self.tx.iter().zip(&self.rx).map(|(t, r)| t + r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FRAME_HEADER_BYTES;

    const HDR: u64 = FRAME_HEADER_BYTES as u64;

    fn grad(iter: u64, payload: usize) -> Message {
        Message::GradChunk {
            iter,
            layer: 0,
            chunk: 0,
            codec: wire::Codec::Identity,
            data: Bytes::from(vec![0u8; payload]),
        }
    }

    #[test]
    fn wire_bytes_is_the_encoded_frame_length() {
        for payload in [0usize, 1, 17, 4096] {
            let msg = grad(3, payload);
            assert_eq!(msg.wire_bytes(), wire::encode_frame(&msg).len() as u64);
        }
        let sf = Message::SfPush {
            iter: 1,
            layer: 2,
            data: Bytes::from(vec![1u8; 31]),
        };
        assert_eq!(sf.wire_bytes(), wire::encode_frame(&sf).len() as u64);
    }

    #[test]
    fn messages_are_delivered_with_origin() {
        let (eps, _) = fabric(3);
        eps[0].send(2, grad(7, 10)).unwrap();
        let env = eps[2].recv().unwrap();
        assert_eq!(env.from, 0);
        assert_eq!(env.msg.iter(), 7);
        assert_eq!(env.msg.wire_bytes(), HDR + 10);
    }

    #[test]
    fn traffic_is_counted_per_node() {
        let (eps, counters) = fabric(3);
        eps[0].send(1, grad(0, 100)).unwrap();
        eps[0].send(2, grad(0, 50)).unwrap();
        eps[1].recv().unwrap();
        eps[2].recv().unwrap();
        assert_eq!(counters.tx_bytes(0), 2 * HDR + 150);
        assert_eq!(counters.rx_bytes(1), HDR + 100);
        assert_eq!(counters.rx_bytes(2), HDR + 50);
        assert_eq!(counters.total_bytes(), 2 * HDR + 150);
    }

    #[test]
    fn loopback_is_delivered_but_not_counted() {
        let (eps, counters) = fabric(2);
        eps[1].send(1, grad(0, 999)).unwrap();
        let env = eps[1].recv().unwrap();
        assert_eq!(env.from, 1);
        assert_eq!(counters.total_bytes(), 0);
        assert_eq!(counters.tx_bytes(1), 0);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (eps, _) = fabric(2);
        assert!(eps[0].try_recv().unwrap().is_none());
        eps[1].send(0, grad(1, 1)).unwrap();
        assert!(eps[0].try_recv().unwrap().is_some());
        assert!(eps[0].try_recv().unwrap().is_none());
    }

    #[test]
    fn recv_timeout_reports_a_dropped_peer() {
        let (eps, _) = fabric(2);
        let err = eps[0].recv_timeout(Duration::from_millis(20)).unwrap_err();
        match &err {
            TransportError::Timeout(diag) => {
                assert_eq!(diag.endpoint, 0);
                assert!(diag.waited >= Duration::from_millis(20));
                assert!(diag.last_frame.is_none(), "nothing was ever received");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        eps[1].send(0, grad(1, 1)).unwrap();
        assert!(eps[0].recv_timeout(Duration::from_millis(20)).is_ok());
    }

    #[test]
    fn timeout_diag_names_the_last_frame_seen() {
        let (eps, _) = fabric(2);
        eps[1]
            .send(
                0,
                Message::GradChunk {
                    iter: 9,
                    layer: 4,
                    chunk: 0,
                    codec: wire::Codec::Identity,
                    data: Bytes::from(vec![0u8; 8]),
                },
            )
            .unwrap();
        eps[0].recv().unwrap();
        let err = eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err();
        let TransportError::Timeout(diag) = err else {
            panic!("expected Timeout");
        };
        let last = diag
            .last_frame
            .clone()
            .expect("a frame was received before");
        assert_eq!(last.from_node, 1);
        assert_eq!(last.tag, "GradChunk");
        assert_eq!(last.iter, 9);
        assert_eq!(last.layer, 4);
        let text = format!("{}", TransportError::Timeout(diag));
        assert!(text.contains("GradChunk iter 9 layer 4"), "{text}");
    }

    #[test]
    fn endpoints_work_across_threads() {
        let (mut eps, counters) = fabric(2);
        let e1 = eps.remove(1);
        let e0 = eps.remove(0);
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                e1.send(0, grad(i, 8)).unwrap();
            }
        });
        let mut got = 0;
        for _ in 0..10 {
            let env = e0.recv().unwrap();
            assert_eq!(env.from, 1);
            got += 1;
        }
        t.join().unwrap();
        assert_eq!(got, 10);
        assert_eq!(counters.total_bytes(), 10 * (HDR + 8));
    }

    #[test]
    fn colocated_endpoints_share_a_node() {
        // Endpoints 0,1 are workers on nodes 0,1; endpoints 2,3 are shards on
        // the same nodes.
        let (eps, counters) = fabric_with_nodes(&[0, 1, 0, 1]);
        // Worker 0 → its local shard (endpoint 2, node 0): loop-back.
        eps[0].send(2, grad(0, 100)).unwrap();
        eps[2].recv().unwrap();
        assert_eq!(counters.total_bytes(), 0);
        // Worker 0 → remote shard (endpoint 3, node 1): counted.
        eps[0].send(3, grad(0, 100)).unwrap();
        eps[3].recv().unwrap();
        assert_eq!(counters.tx_bytes(0), HDR + 100);
        assert_eq!(counters.rx_bytes(1), HDR + 100);
    }

    #[test]
    fn per_node_totals_sum_tx_and_rx() {
        let (eps, counters) = fabric(2);
        eps[0].send(1, grad(0, 10)).unwrap();
        eps[1].send(0, grad(0, 20)).unwrap();
        let totals = counters.per_node_totals();
        assert_eq!(totals[0], (HDR + 10) + (HDR + 20));
        assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn backoff_doubles_to_the_cap_and_stays_there() {
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(40));
        let delays: Vec<u64> = (0..6).map(|_| b.next_delay().as_millis() as u64).collect();
        assert_eq!(delays, vec![5, 10, 20, 40, 40, 40]);
        // A base above the cap is clamped immediately.
        let mut b = Backoff::new(Duration::from_millis(90), Duration::from_millis(40));
        assert_eq!(b.next_delay(), Duration::from_millis(40));
    }

    #[test]
    fn sever_link_is_a_noop_without_a_physical_link() {
        let (eps, _) = fabric(2);
        eps[0].sever_link(1).unwrap();
        eps[0].send(1, grad(0, 4)).unwrap();
        assert_eq!(eps[1].recv().unwrap().from, 0);
    }

    #[test]
    fn envelopes_carry_src_and_seq() {
        let (eps, _) = fabric_with_nodes(&[0, 1, 0, 1]);
        // Endpoint 2 (node 0) → endpoint 1 (node 1), sequenced.
        eps[2].send_seq(1, grad(3, 4), 17).unwrap();
        let env = eps[1].recv().unwrap();
        assert_eq!(env.from, 0, "from is the physical node");
        assert_eq!(env.src, 2, "src is the endpoint");
        assert_eq!(env.seq, 17);
        // Plain send is unsequenced.
        eps[0].send(1, grad(3, 4)).unwrap();
        assert_eq!(eps[1].recv().unwrap().seq, 0);
    }

    #[test]
    fn snapshots_accumulate_without_double_counting() {
        let a = {
            let c = TrafficCounters::new(2);
            c.record(0, 1, 100);
            c.snapshot()
        };
        let b = {
            let c = TrafficCounters::new(2);
            c.record(1, 0, 40);
            c.snapshot()
        };
        let mut sum = TrafficSnapshot::zeros(2);
        sum.accumulate(&a);
        sum.accumulate(&b);
        assert_eq!(sum.total_bytes(), 140);
        assert_eq!(sum.per_node_totals(), vec![140, 140]);
    }
}
