//! Socket plumbing shared by the two TCP transports: the fabric spec, the
//! connection HELLO, and the dial/accept helpers.
//!
//! Both [`TcpTransport`](super::TcpTransport) (the event-loop core) and
//! [`ThreadedTcpTransport`](super::ThreadedTcpTransport) (the blocking
//! thread-per-peer baseline) build the same mesh: a full graph of
//! *unidirectional* connections where endpoint `a` dials `b` and uses that
//! stream exclusively for a → b frames. Every dial opens with a 16-byte
//! HELLO:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PSDN" (LE u32)
//! 4       4     wire version u32 LE
//! 8       4     dialer endpoint id u32 LE
//! 12      4     connection generation u32 LE (1 = initial dial,
//!               incremented on every redial attempt)
//! ```
//!
//! The generation makes acceptor-side registration *idempotent per
//! (peer, generation)*: a peer that redials while its old stream is still
//! draining — or whose HELLO gets duplicated by a dial race — cannot install
//! two live readers. The acceptor adopts a stream only when its generation
//! is strictly newer than the last one adopted for that peer.

use super::{Backoff, TransportError};
use crate::telemetry;
use crate::wire::FRAME_VERSION;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// First four bytes of the connection HELLO ("PSDN").
pub(crate) const HELLO_MAGIC: u32 = 0x5053_444E;
/// Size of the HELLO preamble every dial writes.
pub(crate) const HELLO_BYTES: usize = 16;

/// Poll interval of a persistent acceptor between nonblocking accepts.
pub(crate) const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Static description of a TCP fabric: where every endpoint listens and
/// which physical node it lives on. All participants must construct the
/// identical spec (same flags to every `poseidon-node` process).
#[derive(Debug, Clone)]
pub struct TcpFabricSpec {
    /// Listen address of each endpoint, indexed by endpoint id.
    pub addrs: Vec<SocketAddr>,
    /// Physical node of each endpoint (colocated endpoints share a node and
    /// their traffic is uncounted loop-back).
    pub node_of_endpoint: Vec<usize>,
    /// How long `connect` keeps retrying the initial mesh before giving up.
    pub connect_timeout: Duration,
    /// First delay of the capped exponential backoff shared by initial
    /// dials and post-sever reconnects.
    pub backoff_base: Duration,
    /// Ceiling of the dial/reconnect backoff delay.
    pub backoff_cap: Duration,
    /// How long a send keeps redialing a broken peer before declaring the
    /// link dead (bounded dead-peer verdict, never a hang).
    pub reconnect_timeout: Duration,
}

impl TcpFabricSpec {
    /// A localhost fabric on consecutive ports starting at `base_port`.
    pub fn loopback(base_port: u16, node_of_endpoint: &[usize]) -> Self {
        let addrs = (0..node_of_endpoint.len())
            .map(|i| SocketAddr::from(([127, 0, 0, 1], base_port + i as u16)))
            .collect();
        Self {
            addrs,
            node_of_endpoint: node_of_endpoint.to_vec(),
            connect_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(400),
            reconnect_timeout: Duration::from_secs(5),
        }
    }

    /// The paper's deployment on localhost: `workers` physical nodes, each
    /// hosting one worker (endpoints `0..P`) colocated with one KV-store
    /// shard (endpoints `P..2P`).
    pub fn colocated_loopback(workers: usize, base_port: u16) -> Self {
        let ids: Vec<usize> = (0..workers).chain(0..workers).collect();
        Self::loopback(base_port, &ids)
    }

    /// Number of physical nodes on the fabric.
    pub fn physical_nodes(&self) -> usize {
        self.node_of_endpoint.iter().max().map_or(0, |m| m + 1)
    }
}

/// Binds `n` listeners on OS-assigned localhost ports. Lets threaded tests
/// build a collision-free [`TcpFabricSpec`] before connecting endpoints.
pub fn bind_ephemeral(n: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// A validated inbound HELLO.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Hello {
    /// The dialing endpoint.
    pub peer: usize,
    /// The dialer's connection generation (1 = initial mesh).
    pub generation: u32,
}

/// One connect + HELLO attempt. An error anywhere (refused, reset mid-HELLO)
/// means "try again later".
pub(crate) fn dial_once(
    addr: SocketAddr,
    me: usize,
    generation: u32,
    timeout: Duration,
) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    let mut hello = [0u8; HELLO_BYTES];
    hello[0..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
    hello[4..8].copy_from_slice(&(FRAME_VERSION as u32).to_le_bytes());
    hello[8..12].copy_from_slice(&(me as u32).to_le_bytes());
    hello[12..16].copy_from_slice(&generation.to_le_bytes());
    stream.write_all(&hello)?;
    Ok(stream)
}

/// Dials `peer` for the initial mesh (generation 1) with capped exponential
/// backoff until its listener is up or `deadline` passes.
pub(crate) fn dial(
    spec: &TcpFabricSpec,
    me: usize,
    peer: usize,
    deadline: Instant,
) -> Result<TcpStream, TransportError> {
    let addr = spec.addrs[peer];
    let mut backoff = Backoff::new(spec.backoff_base, spec.backoff_cap);
    let mut attempts: u64 = 0;
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(|| {
                TransportError::Handshake(format!(
                    "endpoint {me}: timed out dialing {addr} after {attempts} attempts"
                ))
            })?;
        match dial_once(addr, me, 1, remaining.min(Duration::from_secs(1))) {
            Ok(stream) => return Ok(stream),
            Err(_) => {
                attempts += 1;
                // Cold path (a dial just failed and we are about to sleep), so
                // the registry lookup per retry is fine.
                crate::metrics::counter("poseidon_redials_total", &[]).inc();
                telemetry::instant("dial.retry", peer as u64, attempts);
                std::thread::sleep(backoff.next_delay().min(remaining));
            }
        }
    }
}

/// Validates one inbound HELLO; returns the peer endpoint id and generation.
pub(crate) fn validate_hello(stream: &mut TcpStream, me: usize) -> Result<Hello, TransportError> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| TransportError::Handshake(format!("read timeout: {e}")))?;
    let mut hello = [0u8; HELLO_BYTES];
    stream
        .read_exact(&mut hello)
        .map_err(|e| TransportError::Handshake(format!("read hello: {e}")))?;
    let magic = u32::from_le_bytes(hello[0..4].try_into().expect("4 bytes"));
    let version = u32::from_le_bytes(hello[4..8].try_into().expect("4 bytes"));
    let peer = u32::from_le_bytes(hello[8..12].try_into().expect("4 bytes")) as usize;
    let generation = u32::from_le_bytes(hello[12..16].try_into().expect("4 bytes"));
    if magic != HELLO_MAGIC {
        return Err(TransportError::Handshake(format!(
            "bad hello magic {magic:#010x}"
        )));
    }
    if version != FRAME_VERSION as u32 {
        return Err(TransportError::Handshake(format!(
            "peer speaks wire version {version}, we speak {FRAME_VERSION}"
        )));
    }
    if peer == me {
        return Err(TransportError::Handshake(format!(
            "self hello from endpoint {peer}"
        )));
    }
    stream
        .set_read_timeout(None)
        .map_err(|e| TransportError::Handshake(format!("clear timeout: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| TransportError::Handshake(format!("nodelay: {e}")))?;
    Ok(Hello { peer, generation })
}

/// Tracks the newest connection generation adopted per peer, making stream
/// registration idempotent: [`admit`](HelloGate::admit) accepts a HELLO only
/// if its generation is strictly newer than the last admitted one for that
/// peer. Duplicate HELLOs (a dial race, or a redial racing its old stream's
/// teardown) are counted and dropped.
#[derive(Debug)]
pub(crate) struct HelloGate {
    last_gen: std::sync::Mutex<Vec<u32>>,
    dups: std::sync::atomic::AtomicU64,
}

impl HelloGate {
    /// A gate for `n` peers, none yet admitted.
    pub fn new(n: usize) -> Self {
        Self {
            last_gen: std::sync::Mutex::new(vec![0; n]),
            dups: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Admits `hello` if its generation is newer than anything seen from
    /// that peer; counts and rejects it otherwise.
    pub fn admit(&self, hello: Hello) -> bool {
        let mut last = self.last_gen.lock().expect("hello gate lock");
        if hello.peer >= last.len() || hello.generation <= last[hello.peer] {
            self.dups.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return false;
        }
        last[hello.peer] = hello.generation;
        true
    }

    /// Duplicate/stale HELLOs rejected so far.
    pub fn dup_count(&self) -> u64 {
        self.dups.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Reads `buf.len()` bytes. `Ok(false)` on clean EOF at a frame boundary;
/// EOF mid-buffer is an `UnexpectedEof` error (the peer died mid-frame).
pub(crate) fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("peer closed {filled} bytes into a {}-byte read", buf.len()),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_gate_is_idempotent_per_peer_generation() {
        let gate = HelloGate::new(3);
        let h = |peer, generation| Hello { peer, generation };
        assert!(gate.admit(h(1, 1)), "first generation admitted");
        assert!(!gate.admit(h(1, 1)), "duplicate HELLO rejected");
        assert!(gate.admit(h(1, 2)), "newer generation admitted");
        assert!(!gate.admit(h(1, 1)), "stale generation rejected");
        assert!(gate.admit(h(2, 5)), "peers are independent");
        assert!(!gate.admit(h(7, 1)), "out-of-range peer rejected");
        assert_eq!(gate.dup_count(), 3);
    }
}
