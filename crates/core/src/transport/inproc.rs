//! In-process transport: the threaded runtime's stand-in for the cluster
//! network.
//!
//! Every endpoint gets one mpsc inbox; sends push an [`Envelope`] onto the
//! destination's queue after charging the message's frame bytes to the
//! traffic ledger. Messages never actually cross the wire format here — the
//! codec is exercised by `wire_bytes()` (accounting) and by the codec's own
//! tests — which keeps the threaded runtime allocation-light while still
//! counting exactly what [`super::TcpTransport`] would move.

use super::{Envelope, Message, RecvTracker, TrafficCounters, Transport, TransportError};
use crate::metrics;
use crate::telemetry;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// One endpoint's attachment to an in-process fabric.
pub struct InProcTransport {
    me: usize,
    node: usize,
    inbox: Receiver<Envelope>,
    outboxes: Vec<Option<Sender<Envelope>>>,
    /// Physical node per endpoint, shared by every endpoint of the fabric
    /// (one allocation total, not one copy per endpoint).
    dest_nodes: Arc<[usize]>,
    counters: Arc<TrafficCounters>,
    tracker: RecvTracker,
    /// Per-peer tx/rx frame+byte counters, resolved at fabric build so the
    /// send path records registry-free.
    peer_metrics: metrics::PeerCounters,
    /// This endpoint's membership epoch: stamped on every send, fences every
    /// receive (stale data frames are dropped and counted).
    membership_epoch: AtomicU32,
}

impl InProcTransport {
    /// Notes a delivered envelope for timeout diagnostics and telemetry.
    fn on_delivered(&self, env: &Envelope) {
        self.tracker.note(env);
        self.peer_metrics.note_rx(env.src, env.msg.wire_bytes());
        if telemetry::is_enabled() {
            telemetry::instant("rx.frame", env.from as u64, env.msg.wire_bytes());
        }
    }

    /// Epoch fence at the dequeue point: a data frame from a stale membership
    /// epoch is dropped and counted, never delivered.
    fn admit(&self, env: Envelope) -> Option<Envelope> {
        if super::stale_epoch(&env, self.membership_epoch.load(Ordering::Relaxed)) {
            super::note_stale_epoch_frame(
                self.me,
                env.epoch,
                self.membership_epoch.load(Ordering::Relaxed),
            );
            return None;
        }
        self.on_delivered(&env);
        Some(env)
    }
}

impl Transport for InProcTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn endpoint_id(&self) -> usize {
        self.me
    }

    fn endpoints(&self) -> usize {
        self.outboxes.len()
    }

    fn traffic(&self) -> &Arc<TrafficCounters> {
        &self.counters
    }

    fn send_seq(&self, to: usize, msg: Message, seq: u32) -> Result<(), TransportError> {
        let outbox = self
            .outboxes
            .get(to)
            .ok_or(TransportError::Closed)?
            .as_ref()
            .ok_or(TransportError::Closed)?;
        let bytes = msg.wire_bytes();
        self.peer_metrics.note_tx(to, bytes);
        if telemetry::is_enabled() {
            telemetry::instant("tx.frame", to as u64, bytes);
        }
        outbox
            .send(Envelope {
                from: self.node,
                src: self.me,
                seq,
                epoch: self.membership_epoch.load(Ordering::Relaxed),
                msg,
            })
            .map_err(|_| TransportError::Closed)?;
        self.counters.record(self.node, self.dest_nodes[to], bytes);
        Ok(())
    }

    fn recv(&self) -> Result<Envelope, TransportError> {
        loop {
            let env = self.inbox.recv().map_err(|_| TransportError::Closed)?;
            if let Some(env) = self.admit(env) {
                return Ok(env);
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Envelope>, TransportError> {
        loop {
            match self.inbox.try_recv() {
                Ok(env) => {
                    if let Some(env) = self.admit(env) {
                        return Ok(Some(env));
                    }
                }
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        // The full budget restarts after a dropped stale frame — stale frames
        // arrive only in the instants around a reconfiguration, so the
        // simplicity is worth the marginally lax bound.
        loop {
            match self.inbox.recv_timeout(timeout) {
                Ok(env) => {
                    if let Some(env) = self.admit(env) {
                        return Ok(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(self.tracker.timeout(self.me, timeout))
                }
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }

    fn set_epoch(&self, epoch: u32) {
        self.membership_epoch.store(epoch, Ordering::Relaxed);
    }

    fn current_epoch(&self) -> u32 {
        self.membership_epoch.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) -> Result<(), TransportError> {
        // Dropping our clones of the senders lets peers' `recv` observe
        // `Closed` once every endpoint has shut down.
        for slot in &mut self.outboxes {
            *slot = None;
        }
        Ok(())
    }
}

/// Creates a fabric of `nodes` endpoints plus the shared traffic counters.
/// Endpoint `i` lives on physical node `i`.
pub fn fabric(nodes: usize) -> (Vec<InProcTransport>, Arc<TrafficCounters>) {
    let ids: Vec<usize> = (0..nodes).collect();
    fabric_with_nodes(&ids)
}

/// Creates one endpoint per entry of `node_of_endpoint`, where entry `j` is
/// the *physical node* endpoint `j` lives on. Several endpoints may share a
/// node — the paper's deployment colocates a worker and a KV-store shard on
/// every machine — and traffic between co-resident endpoints is loop-back
/// (delivered, not counted).
pub fn fabric_with_nodes(
    node_of_endpoint: &[usize],
) -> (Vec<InProcTransport>, Arc<TrafficCounters>) {
    assert!(
        !node_of_endpoint.is_empty(),
        "fabric needs at least one node"
    );
    let physical_nodes = node_of_endpoint.iter().max().expect("non-empty") + 1;
    let counters = Arc::new(TrafficCounters::new(physical_nodes));
    let mut senders = Vec::with_capacity(node_of_endpoint.len());
    let mut receivers = Vec::with_capacity(node_of_endpoint.len());
    for _ in node_of_endpoint {
        let (s, r) = channel();
        senders.push(Some(s));
        receivers.push(r);
    }
    let node_ids: Arc<[usize]> = Arc::from(node_of_endpoint);
    let endpoints = receivers
        .into_iter()
        .enumerate()
        .map(|(idx, inbox)| InProcTransport {
            me: idx,
            node: node_ids[idx],
            inbox,
            outboxes: senders.clone(),
            dest_nodes: Arc::clone(&node_ids),
            counters: Arc::clone(&counters),
            tracker: RecvTracker::default(),
            peer_metrics: metrics::PeerCounters::new(idx, node_of_endpoint.len()),
            membership_epoch: AtomicU32::new(0),
        })
        .collect();
    (endpoints, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn shutdown_is_idempotent_and_closes_peers() {
        let (mut eps, _) = fabric(2);
        let mut e1 = eps.remove(1);
        let mut e0 = eps.remove(0);
        e1.shutdown().unwrap();
        e1.shutdown().unwrap();
        assert_eq!(
            e1.send(
                0,
                Message::SfPush {
                    iter: 0,
                    layer: 0,
                    data: Bytes::new()
                }
            ),
            Err(TransportError::Closed)
        );
        e0.shutdown().unwrap();
        // All senders for endpoint 0's inbox are gone now.
        assert_eq!(e0.recv().unwrap_err(), TransportError::Closed);
    }
}
