//! The reliability layer: per-link sequence numbers, cumulative acks, and
//! idempotent retransmission over any [`Transport`].
//!
//! [`ReliableTransport`] wraps an inner transport and restores exactly-once,
//! in-order delivery per (sender endpoint → receiver endpoint) link even
//! when the layer below loses, duplicates, reorders, or delays frames — the
//! failure modes scripted by [`crate::faults::FaultyTransport`] and exhibited
//! by real Ethernet clusters between socket reconnects. The protocol
//! (DESIGN.md §2.7):
//!
//! - **Sequencing.** Every outgoing data frame is stamped with the next
//!   sequence number of its link, starting at 1 (`seq` field of the wire
//!   header; 0 means unsequenced). A copy is buffered until acknowledged.
//! - **Cumulative acks.** For every data frame the receiver processes it
//!   replies `Ack{upto}`, where `upto` is the highest contiguously delivered
//!   sequence number; the sender prunes its buffer up to `upto`. One ack per
//!   received frame keeps the control-traffic ledger deterministic.
//! - **Gap detection.** A frame arriving above `expect` is stashed (sorted)
//!   and answered with `Nack{expect}` — deduplicated per gap, so a burst of
//!   out-of-order arrivals asks once. The sender retransmits everything
//!   unacknowledged from `expect` on.
//! - **Duplicate suppression.** A frame below `expect` was already
//!   delivered; it is dropped and re-acked (the ack that would have pruned
//!   it may itself be in flight).
//! - **Tail-loss probes.** A dropped *final* frame leaves no later arrival
//!   to expose the gap, so `recv`'s wait is sliced into
//!   [`ReliabilityConfig::probe_interval`] chunks; every expired slice sends
//!   `Nack{expect}` to every peer. Probes make recovery latency bounded by
//!   the probe interval rather than the runtime's whole timeout budget.
//! - **Linger.** `shutdown` keeps serving acks, nacks, and retransmissions
//!   for up to [`ReliabilityConfig::linger`] while its send buffers are
//!   non-empty, so a peer still missing a frame (e.g. a dropped final SFB
//!   push) is served before the socket FINs. In a fault-free run the
//!   buffers drain with the last acks and linger exits immediately.
//!
//! Control frames (`Ack`/`Nack`) never reach the runtime and are themselves
//! neither sequenced nor retransmitted — loss of an ack costs a duplicate
//! (suppressed), loss of a nack costs one probe interval.
//!
//! Delivery through this layer is *per-link in-order* (stronger than the
//! contract below it), and the runtime's results are bitwise independent of
//! cross-link interleaving because the KV store folds gradients in worker-id
//! order — so a chaos run that recovers every frame converges bitwise to the
//! fault-free run.

use super::{Envelope, Message, Transport, TransportError};
use crate::telemetry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables of the reliability protocol.
#[derive(Debug, Clone)]
pub struct ReliabilityConfig {
    /// Slice length of blocking receives; every expired slice sends one
    /// `Nack{expect}` probe to every peer (tail-loss recovery).
    pub probe_interval: Duration,
    /// Upper bound on how long `shutdown` keeps serving retransmissions
    /// while unacknowledged frames remain buffered.
    pub linger: Duration,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self {
            probe_interval: Duration::from_millis(25),
            linger: Duration::from_secs(2),
        }
    }
}

/// Shared counters of the reliability machinery, for chaos-test assertions
/// and the launcher's stats lines. All relaxed: they are read after the run.
#[derive(Debug, Default)]
pub struct ReliabilityStats {
    /// Data frames retransmitted in response to nacks (incl. probes).
    pub retransmits: AtomicU64,
    /// Duplicate data frames dropped before delivery.
    pub dups_dropped: AtomicU64,
    /// Gap nacks sent (deduplicated per gap).
    pub nacks_sent: AtomicU64,
    /// Cumulative acks sent (one per received data frame).
    pub acks_sent: AtomicU64,
    /// Tail-loss probe nacks sent on receive-slice expiry.
    pub probes_sent: AtomicU64,
    /// Out-of-order frames stashed for in-order delivery.
    pub reorders_stashed: AtomicU64,
}

impl ReliabilityStats {
    /// Sum of all recovery actions — non-zero iff the layer ever had to
    /// repair anything.
    pub fn recovery_actions(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
            + self.dups_dropped.load(Ordering::Relaxed)
            + self.nacks_sent.load(Ordering::Relaxed)
            + self.reorders_stashed.load(Ordering::Relaxed)
    }
}

/// Sender-side state of one outgoing link (me → dest).
#[derive(Debug, Default)]
struct LinkOut {
    /// Sequence number the next original frame will carry (−1 … it's
    /// `next_seq`, first frame carries 1).
    next_seq: u32,
    /// Sent but not yet cumulatively acknowledged frames, by sequence.
    unacked: BTreeMap<u32, Message>,
}

/// Receiver-side state of one incoming link (src → me).
#[derive(Debug)]
struct LinkIn {
    /// The sequence number we deliver next.
    expect: u32,
    /// Frames that arrived above `expect`, awaiting the gap to fill.
    stash: BTreeMap<u32, Envelope>,
    /// The `expect` value of the last nack sent, to ask once per gap.
    last_nacked: u32,
}

impl Default for LinkIn {
    fn default() -> Self {
        Self {
            expect: 1,
            stash: BTreeMap::new(),
            last_nacked: 0,
        }
    }
}

struct State {
    /// In-order envelopes ready for the runtime.
    ready: VecDeque<Envelope>,
    links_out: Vec<LinkOut>,
    links_in: Vec<LinkIn>,
}

/// A [`Transport`] adapter adding sequencing, acknowledgement, and
/// retransmission; see the module docs for the protocol.
pub struct ReliableTransport<T: Transport> {
    inner: T,
    cfg: ReliabilityConfig,
    state: Mutex<State>,
    stats: Arc<ReliabilityStats>,
    /// Metrics-plane mirrors of the recovery counters, resolved once at
    /// wrap time so repair actions record registry-free.
    m_retransmits: crate::metrics::Counter,
    m_nacks: crate::metrics::Counter,
    m_dup_drops: crate::metrics::Counter,
}

impl<T: Transport> ReliableTransport<T> {
    /// Wraps `inner` with the reliability protocol.
    pub fn new(inner: T, cfg: ReliabilityConfig) -> Self {
        let n = inner.endpoints();
        let state = State {
            ready: VecDeque::new(),
            links_out: (0..n).map(|_| LinkOut::default()).collect(),
            links_in: (0..n).map(|_| LinkIn::default()).collect(),
        };
        let ep = inner.endpoint_id().to_string();
        let labels: [(&'static str, &str); 1] = [("endpoint", &ep)];
        Self {
            m_retransmits: crate::metrics::counter("poseidon_retransmits_total", &labels),
            m_nacks: crate::metrics::counter("poseidon_nacks_total", &labels),
            m_dup_drops: crate::metrics::counter("poseidon_dup_drops_total", &labels),
            inner,
            cfg,
            state: Mutex::new(state),
            stats: Arc::new(ReliabilityStats::default()),
        }
    }

    /// Handle to the recovery counters (usable after the endpoint moved
    /// into its runtime thread).
    pub fn stats(&self) -> Arc<ReliabilityStats> {
        Arc::clone(&self.stats)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Processes one envelope from the layer below: consumes control
    /// frames, runs the sequencing state machine on data frames, and queues
    /// deliverable envelopes onto `ready`.
    fn process(&self, st: &mut State, env: Envelope) {
        let src = env.src;
        match env.msg {
            Message::Ack { upto } => {
                // Keep only frames strictly above the cumulative ack.
                let link = &mut st.links_out[src];
                link.unacked = link.unacked.split_off(&(upto as u32 + 1));
            }
            Message::Nack { expect } => {
                let link = &st.links_out[src];
                let resend: Vec<(u32, Message)> = link
                    .unacked
                    .range(expect as u32..)
                    .map(|(s, m)| (*s, m.clone()))
                    .collect();
                for (s, m) in resend {
                    self.stats.retransmits.fetch_add(1, Ordering::Relaxed);
                    self.m_retransmits.inc();
                    telemetry::instant("retransmit", src as u64, s as u64);
                    // Best-effort: a send failure here means the link is
                    // down; the peer will nack again after its next probe.
                    let _ = self.inner.send_seq(src, m, s);
                }
            }
            _ => {
                if env.seq == 0 {
                    // Unsequenced sender (no reliable layer on its side):
                    // deliver as-is.
                    st.ready.push_back(env);
                    return;
                }
                let link = &mut st.links_in[src];
                if env.seq < link.expect {
                    // Already delivered; the ack that should have stopped
                    // this duplicate may have been in flight. Re-ack.
                    self.stats.dups_dropped.fetch_add(1, Ordering::Relaxed);
                    self.m_dup_drops.inc();
                    self.ack(src, link.expect);
                    return;
                }
                if env.seq > link.expect {
                    self.stats.reorders_stashed.fetch_add(1, Ordering::Relaxed);
                    let expect = link.expect;
                    link.stash.insert(env.seq, env);
                    if link.last_nacked != expect {
                        link.last_nacked = expect;
                        self.stats.nacks_sent.fetch_add(1, Ordering::Relaxed);
                        self.m_nacks.inc();
                        let _ = self.inner.send(
                            src,
                            Message::Nack {
                                expect: expect as u64,
                            },
                        );
                    }
                    return;
                }
                // In order: deliver, then drain everything now contiguous.
                link.expect += 1;
                st.ready.push_back(env);
                while let Some(e) = link.stash.remove(&link.expect) {
                    link.expect += 1;
                    st.ready.push_back(e);
                }
                let expect = link.expect;
                self.ack(src, expect);
            }
        }
    }

    /// Sends the cumulative ack `upto = expect - 1` to `src`.
    fn ack(&self, src: usize, expect: u32) {
        self.stats.acks_sent.fetch_add(1, Ordering::Relaxed);
        let _ = self.inner.send(
            src,
            Message::Ack {
                upto: (expect - 1) as u64,
            },
        );
    }

    /// Tail-loss probe: nack every peer with its current `expect`, asking
    /// for a retransmit of anything we never saw.
    fn probe(&self, st: &mut State) {
        for peer in 0..st.links_in.len() {
            let expect = st.links_in[peer].expect;
            st.links_in[peer].last_nacked = expect;
            self.stats.probes_sent.fetch_add(1, Ordering::Relaxed);
            let _ = self.inner.send(
                peer,
                Message::Nack {
                    expect: expect as u64,
                },
            );
        }
    }

    /// True when every sent frame has been acknowledged.
    fn drained(&self) -> bool {
        let st = self.state.lock().expect("reliable state lock");
        st.links_out.iter().all(|l| l.unacked.is_empty())
    }
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn node(&self) -> usize {
        self.inner.node()
    }

    fn endpoint_id(&self) -> usize {
        self.inner.endpoint_id()
    }

    fn endpoints(&self) -> usize {
        self.inner.endpoints()
    }

    fn traffic(&self) -> &Arc<super::TrafficCounters> {
        self.inner.traffic()
    }

    fn send_seq(&self, to: usize, msg: Message, seq: u32) -> Result<(), TransportError> {
        debug_assert_eq!(seq, 0, "the reliable layer owns the sequence space");
        if msg.is_control() {
            return self.inner.send(to, msg);
        }
        let s = {
            let mut st = self.state.lock().expect("reliable state lock");
            let link = &mut st.links_out[to];
            link.next_seq += 1;
            let s = link.next_seq;
            link.unacked.insert(s, msg.clone());
            s
        };
        self.inner.send_seq(to, msg, s)
    }

    fn sever_link(&self, to: usize) -> Result<(), TransportError> {
        self.inner.sever_link(to)
    }

    fn recv(&self) -> Result<Envelope, TransportError> {
        loop {
            {
                let mut st = self.state.lock().expect("reliable state lock");
                if let Some(env) = st.ready.pop_front() {
                    return Ok(env);
                }
            }
            match self.inner.recv_timeout(self.cfg.probe_interval) {
                Ok(env) => {
                    let mut st = self.state.lock().expect("reliable state lock");
                    self.process(&mut st, env);
                }
                Err(TransportError::Timeout(_)) => {
                    let mut st = self.state.lock().expect("reliable state lock");
                    self.probe(&mut st);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Envelope>, TransportError> {
        let mut st = self.state.lock().expect("reliable state lock");
        loop {
            if let Some(env) = st.ready.pop_front() {
                return Ok(Some(env));
            }
            match self.inner.try_recv()? {
                Some(env) => self.process(&mut st, env),
                None => return Ok(None),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut st = self.state.lock().expect("reliable state lock");
                if let Some(env) = st.ready.pop_front() {
                    return Ok(env);
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let slice = remaining
                .min(self.cfg.probe_interval)
                .max(Duration::from_millis(1));
            match self.inner.recv_timeout(slice) {
                Ok(env) => {
                    let mut st = self.state.lock().expect("reliable state lock");
                    self.process(&mut st, env);
                }
                Err(TransportError::Timeout(mut diag)) => {
                    if Instant::now() >= deadline {
                        // Surface this layer's repair effort on the verdict:
                        // the inner transport cannot know its retransmit
                        // count, so fill (or create) the link snapshot here.
                        diag.link.get_or_insert_with(Default::default).retransmits =
                            self.stats.retransmits.load(Ordering::Relaxed);
                        return Err(TransportError::Timeout(diag));
                    }
                    let mut st = self.state.lock().expect("reliable state lock");
                    self.probe(&mut st);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn set_epoch(&self, epoch: u32) {
        self.inner.set_epoch(epoch);
    }

    fn current_epoch(&self) -> u32 {
        self.inner.current_epoch()
    }

    fn shutdown(&mut self) -> Result<(), TransportError> {
        // Linger: a peer may still be missing a frame only we hold. Keep
        // answering nacks (and acking the peer's own stragglers, so *its*
        // linger can finish) until our buffers drain or the bound expires.
        let deadline = Instant::now() + self.cfg.linger;
        while !self.drained() && Instant::now() < deadline {
            match self.inner.recv_timeout(Duration::from_millis(10)) {
                Ok(env) => {
                    let mut st = self.state.lock().expect("reliable state lock");
                    self.process(&mut st, env);
                }
                Err(TransportError::Timeout(_)) => {}
                Err(_) => break,
            }
        }
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::fabric;
    use bytes::Bytes;

    fn grad(iter: u64) -> Message {
        Message::GradChunk {
            iter,
            layer: 0,
            chunk: 0,
            codec: crate::wire::Codec::Identity,
            data: Bytes::from(vec![1u8; 8]),
        }
    }

    fn quick() -> ReliabilityConfig {
        ReliabilityConfig {
            probe_interval: Duration::from_millis(20),
            linger: Duration::from_millis(300),
        }
    }

    #[test]
    fn in_order_traffic_passes_through_with_acks() {
        let (mut eps, _) = fabric(2);
        let b = ReliableTransport::new(eps.remove(1), quick());
        let a = ReliableTransport::new(eps.remove(0), quick());
        for i in 0..5 {
            a.send(1, grad(i)).unwrap();
        }
        for i in 0..5 {
            let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(env.msg.iter(), i);
            assert_eq!(env.seq, i as u32 + 1);
        }
        // Pump the acks back into a's state machine.
        while a.try_recv().unwrap().is_some() {}
        assert!(a.drained(), "all five frames acknowledged");
        assert_eq!(b.stats().acks_sent.load(Ordering::Relaxed), 5);
        assert_eq!(a.stats().recovery_actions(), 0);
        assert_eq!(b.stats().recovery_actions(), 0);
    }

    #[test]
    fn reordered_frames_are_delivered_in_order() {
        let (mut eps, _) = fabric(2);
        let raw_a = eps.remove(0);
        let b = ReliableTransport::new(eps.remove(0), quick());
        // Simulate a reordering lower layer: send seqs 2, 3, then 1.
        raw_a.send_seq(1, grad(1), 2).unwrap();
        raw_a.send_seq(1, grad(2), 3).unwrap();
        raw_a.send_seq(1, grad(0), 1).unwrap();
        for i in 0..3 {
            let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(env.msg.iter(), i, "delivery must be seq-ordered");
        }
        assert_eq!(b.stats().reorders_stashed.load(Ordering::Relaxed), 2);
        assert_eq!(b.stats().nacks_sent.load(Ordering::Relaxed), 1, "one gap");
        // The raw sender received that nack asking for seq 1.
        let nack = raw_a.recv().unwrap();
        assert!(matches!(nack.msg, Message::Nack { expect: 1 }));
    }

    #[test]
    fn duplicates_are_dropped_and_reacked() {
        let (mut eps, _) = fabric(2);
        let raw_a = eps.remove(0);
        let b = ReliableTransport::new(eps.remove(0), quick());
        raw_a.send_seq(1, grad(0), 1).unwrap();
        raw_a.send_seq(1, grad(0), 1).unwrap();
        raw_a.send_seq(1, grad(1), 2).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(2)).unwrap().msg.iter(),
            0
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(2)).unwrap().msg.iter(),
            1
        );
        assert!(b.try_recv().unwrap().is_none(), "duplicate never delivered");
        assert_eq!(b.stats().dups_dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lost_tail_frame_is_recovered_by_probe() {
        let (mut eps, _) = fabric(2);
        let rb = eps.remove(1);
        let a = ReliableTransport::new(eps.remove(0), quick());
        // a sends two frames; "the network" loses the second (we just don't
        // forward it): receiver b is raw so we can play the network.
        a.send(1, grad(0)).unwrap();
        a.send(1, grad(1)).unwrap();
        let f0 = rb.recv().unwrap();
        let _lost = rb.recv().unwrap();
        // b (reliable in spirit) acks frame 1 and probes for seq 2.
        rb.send(0, Message::Ack { upto: 1 }).unwrap();
        rb.send(0, Message::Nack { expect: 2 }).unwrap();
        assert_eq!(f0.seq, 1);
        // a consumes ack + nack and retransmits seq 2.
        while a.try_recv().unwrap().is_some() {}
        assert_eq!(a.stats().retransmits.load(Ordering::Relaxed), 1);
        let again = rb.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(again.seq, 2);
        assert_eq!(again.msg.iter(), 1);
    }

    #[test]
    fn recv_timeout_still_expires_with_a_diag() {
        let (mut eps, _) = fabric(2);
        let _peer = eps.remove(1);
        let a = ReliableTransport::new(eps.remove(0), quick());
        let start = Instant::now();
        let err = a.recv_timeout(Duration::from_millis(90)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout(_)), "{err:?}");
        assert!(start.elapsed() < Duration::from_secs(2), "bounded");
        // Three-ish slices expired, each probing the peer.
        assert!(a.stats().probes_sent.load(Ordering::Relaxed) >= 2);
    }
}
