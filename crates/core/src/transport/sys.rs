//! Minimal readiness-polling layer over raw OS syscalls — `epoll(7)` on
//! Linux, `poll(2)` elsewhere — declared directly against libc symbols that
//! `std` already links, so the workspace stays dependency-free.
//!
//! The surface is deliberately tiny: register/modify/deregister a file
//! descriptor with a `u64` token and an (IN, OUT) interest pair, wait for a
//! batch of [`PollEvent`]s, and wake a sleeping waiter from another thread
//! via a [`Waker`] (an `eventfd` on Linux, a self-pipe elsewhere). The
//! event-loop transport ([`super::tcp`]) is the only consumer.

use std::io;
use std::os::fd::RawFd;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token supplied at registration ([`Poller::WAKE_TOKEN`] for the
    /// internal waker).
    pub token: u64,
    /// Readable (or peer closed its write side — a read will observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition; the fd should be serviced and retired.
    pub hangup: bool,
}

/// Wakes a [`Poller::wait`] in progress from any thread. Cloneable; holds a
/// non-owning handle (the poller owns the underlying fd).
#[derive(Debug, Clone, Copy)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Interrupts the poller's current (or next) wait. Best-effort: errors
    /// are ignored — a failed wake only delays service until the poll tick.
    pub fn wake(&self) {
        imp::waker_signal(self.fd);
    }
}

pub use imp::Poller;

impl Poller {
    /// Token reserved for the internal wake channel; [`Poller::wait`] filters
    /// it out of the reported events.
    pub const WAKE_TOKEN: u64 = u64::MAX;
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{PollEvent, Waker};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // epoll_event is packed on x86-64 (kernel ABI), naturally aligned
    // elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    pub(super) fn waker_signal(fd: RawFd) {
        let one = 1u64.to_ne_bytes();
        // An EAGAIN here means the counter is already nonzero — the poller
        // will wake anyway.
        unsafe { write(fd, one.as_ptr(), one.len()) };
    }

    /// A readiness poller backed by `epoll(7)`.
    pub struct Poller {
        epfd: RawFd,
        wake_fd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let wake_fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if wake_fd < 0 {
                let e = io::Error::last_os_error();
                unsafe { close(epfd) };
                return Err(e);
            }
            let poller = Poller { epfd, wake_fd };
            poller.register(wake_fd, super::Poller::WAKE_TOKEN, true, false)?;
            Ok(poller)
        }

        pub fn waker(&self) -> Waker {
            Waker { fd: self.wake_fd }
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest,
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn interest(readable: bool, writable: bool) -> u32 {
            let mut events = EPOLLRDHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            events
        }

        pub fn register(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, Self::interest(readable, writable))
        }

        pub fn modify(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, Self::interest(readable, writable))
        }

        pub fn deregister(&self, fd: RawFd) {
            // Best-effort: the fd may already be gone.
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Waits for readiness, appending reports to `out` (which is cleared
        /// first). `None` blocks indefinitely. Wake-channel events are
        /// drained and filtered out; a `true` return means the wait was
        /// interrupted by a [`Waker`].
        pub fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<bool> {
            out.clear();
            let timeout_ms = match timeout {
                // Zero means "report what is ready right now, never sleep".
                Some(t) if t.is_zero() => 0,
                // Round up so a 100µs deadline does not spin at timeout 0.
                Some(t) => i32::try_from(t.as_millis().max(1).min(i32::MAX as u128)).unwrap(),
                None => -1,
            };
            let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                let n = unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            let mut woken = false;
            for ev in &raw[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (events, token) = (ev.events, ev.data);
                if token == super::Poller::WAKE_TOKEN {
                    woken = true;
                    let mut buf = [0u8; 8];
                    unsafe { read(self.wake_fd, buf.as_mut_ptr(), buf.len()) };
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(woken)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
                close(self.wake_fd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{PollEvent, Waker};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0x0004; // BSD/macOS value; this module is non-Linux only.

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout_ms: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    pub(super) fn waker_signal(fd: RawFd) {
        let one = [1u8];
        unsafe { write(fd, one.as_ptr(), 1) };
    }

    /// A readiness poller backed by `poll(2)` and a self-pipe. Functional
    /// fallback for non-Linux hosts; the Linux `epoll` backend is the tuned
    /// path.
    pub struct Poller {
        registry: Mutex<HashMap<RawFd, (u64, bool, bool)>>,
        pipe_r: RawFd,
        pipe_w: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                let flags = unsafe { fcntl(fd, F_GETFL, 0) };
                unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) };
            }
            Ok(Poller {
                registry: Mutex::new(HashMap::new()),
                pipe_r: fds[0],
                pipe_w: fds[1],
            })
        }

        pub fn waker(&self) -> Waker {
            Waker { fd: self.pipe_w }
        }

        pub fn register(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.registry
                .lock()
                .expect("poller registry poisoned")
                .insert(fd, (token, readable, writable));
            Ok(())
        }

        pub fn modify(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.register(fd, token, readable, writable)
        }

        pub fn deregister(&self, fd: RawFd) {
            self.registry
                .lock()
                .expect("poller registry poisoned")
                .remove(&fd);
        }

        pub fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<bool> {
            out.clear();
            let mut fds = vec![PollFd {
                fd: self.pipe_r,
                events: POLLIN,
                revents: 0,
            }];
            let mut tokens = vec![super::Poller::WAKE_TOKEN];
            {
                let reg = self.registry.lock().expect("poller registry poisoned");
                for (&fd, &(token, readable, writable)) in reg.iter() {
                    let mut events = 0i16;
                    if readable {
                        events |= POLLIN;
                    }
                    if writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                    tokens.push(token);
                }
            }
            let timeout_ms = match timeout {
                Some(t) if t.is_zero() => 0,
                Some(t) => i32::try_from(t.as_millis().max(1).min(i32::MAX as u128)).unwrap(),
                None => -1,
            };
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(false);
            }
            let mut woken = false;
            for (pfd, &token) in fds.iter().zip(&tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                if token == super::Poller::WAKE_TOKEN {
                    woken = true;
                    let mut buf = [0u8; 64];
                    while unsafe { read(self.pipe_r, buf.as_mut_ptr(), buf.len()) } > 0 {}
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(woken)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_r);
                close(self.pipe_w);
            }
        }
    }
}

/// Half-closes the write side of a raw socket fd (`shutdown(fd, SHUT_RDWR)`)
/// without taking ownership — the synchronous core of
/// [`Transport::sever_link`](super::Transport::sever_link), callable while
/// the poller thread owns the `TcpStream` itself.
pub fn shutdown_fd(fd: RawFd) -> io::Result<()> {
    const SHUT_RDWR: i32 = 2;
    extern "C" {
        fn shutdown(fd: i32, how: i32) -> i32;
    }
    if unsafe { shutdown(fd, SHUT_RDWR) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Vectored write on a raw socket fd without taking ownership — the inline
/// fast path of `send_seq` writes from the sender thread while the poller
/// owns the `TcpStream` itself. `IoSlice` is guaranteed ABI-compatible with
/// `struct iovec` on Unix, so the slice passes straight through.
pub fn writev_fd(fd: RawFd, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
    extern "C" {
        fn writev(fd: i32, iov: *const std::ffi::c_void, iovcnt: i32) -> isize;
    }
    let n = unsafe { writev(fd, bufs.as_ptr().cast(), bufs.len() as i32) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n as usize)
}

/// Duplicates a raw fd (`dup(2)`). The duplicate pins the underlying socket
/// object: even if the original is closed by another thread, the dup stays
/// a valid handle to the same (possibly dead) socket rather than a recycled
/// descriptor number. Callers own the result and must [`close_fd`] it.
pub fn dup_fd(fd: RawFd) -> io::Result<RawFd> {
    extern "C" {
        fn dup(fd: i32) -> i32;
    }
    let n = unsafe { dup(fd) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n)
}

/// Closes a raw fd owned by the caller (one obtained from [`dup_fd`]).
pub fn close_fd(fd: RawFd) {
    extern "C" {
        fn close(fd: i32) -> i32;
    }
    unsafe { close(fd) };
}

/// Sets or clears `O_NONBLOCK` on the open file description behind `fd`.
/// Best-effort (errors ignored — the caller's next I/O call surfaces any
/// problem). NOTE: the flag lives on the file *description*, so it also
/// flips every dup of the socket; callers must hold exclusive write access
/// (the inline-write claim) across a blocking window.
pub fn set_nonblocking_fd(fd: RawFd, nonblocking: bool) {
    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0x800;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x4;
    extern "C" {
        fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    }
    unsafe {
        let flags = fcntl(fd, F_GETFL);
        if flags < 0 {
            return;
        }
        let want = if nonblocking {
            flags | O_NONBLOCK
        } else {
            flags & !O_NONBLOCK
        };
        if want != flags {
            fcntl(fd, F_SETFL, want);
        }
    }
}

/// Sleeps until `fd` is writable (or in error), capped at `timeout` — a
/// single-fd `poll(2)`. Best-effort: the caller's next write surfaces
/// whatever condition ended the wait, so the result is advisory only.
pub fn poll_out_fd(fd: RawFd, timeout: std::time::Duration) {
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }
    const POLLOUT: i16 = 0x4;
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }
    let mut pfd = PollFd {
        fd,
        events: POLLOUT,
        revents: 0,
    };
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    unsafe { poll(&mut pfd, 1, ms) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn reports_readable_when_data_arrives() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 42, true, false)
            .unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "no data yet");

        client.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        let mut buf = [0u8; 2];
        let mut s = &server;
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let woken = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(woken, "wait must report the wake");
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.is_empty(), "wake channel is filtered out");
        t.join().unwrap();
    }

    #[test]
    fn writable_interest_is_dynamic() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Read-only interest: an idle writable socket reports nothing.
        poller.register(client.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.iter().all(|e| !e.writable));
        // Add write interest: an empty socket buffer reports writable.
        poller.modify(client.as_raw_fd(), 7, true, true).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.writable));
    }
}
