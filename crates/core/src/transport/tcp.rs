//! TCP transport: the comm plane over real sockets, one OS process (or
//! thread) per endpoint.
//!
//! Topology is a full mesh of *unidirectional* connections: for every ordered
//! pair (a, b) endpoint `a` dials `b` and uses that stream exclusively for
//! a → b frames, so per-pair ordering is the stream's own ordering. Each
//! endpoint runs one reader thread per inbound stream; readers decode
//! length-prefixed frames ([`crate::wire`]) and push [`Envelope`]s onto the
//! endpoint's inbox.
//!
//! Connection establishment is symmetric and retry-based: every endpoint
//! binds its listener, then concurrently accepts inbound peers (background
//! thread) and dials outbound peers, retrying `connect` with capped
//! exponential [`Backoff`] until [`TcpFabricSpec::connect_timeout`] so
//! start-up order does not matter. Each dialer opens with a 12-byte HELLO
//! (magic, wire version, endpoint id) so the acceptor can attribute the
//! stream.
//!
//! The mesh is *self-healing* (DESIGN.md §2.7): a broken outbound stream is
//! not terminal. When a send hits an I/O error — the peer crashed and came
//! back, or a chaos test called [`Transport::sever_link`] — the sender
//! redials with the same capped exponential backoff (bounded by
//! [`TcpFabricSpec::reconnect_timeout`]), replaces the stream, and rewrites
//! the whole frame, emitting a `reconnect` telemetry instant. On the other
//! side the acceptor thread outlives the initial mesh: it keeps accepting
//! HELLOs for the life of the endpoint and spawns a fresh reader for every
//! re-accepted stream (`reconnect.accept` instant). Reader-side EOF and I/O
//! errors are therefore *benign* — the peer may simply be reconnecting — and
//! only wire-protocol violations poison the endpoint. A peer that never
//! comes back surfaces as a plain `recv_timeout` whose [`TimeoutDiag`]
//! (see [`super::TimeoutDiag`]) carries the reconnect attempt count.
//!
//! Graceful shutdown: `shutdown()` stops the acceptor, half-closes every
//! outbound stream (FIN), letting peers read all in-flight frames to EOF,
//! then force-closes the inbound streams so the local readers exit and can
//! be joined even if a peer dies without saying goodbye.
//!
//! Accounting is send-side only: the sender charges the exact buffer it
//! writes against (source node, destination node) in its ledger — a frame
//! rewritten after a reconnect is charged again, because it crossed the wire
//! again — and nothing is recorded at the receiver, so summing per-process
//! [`TrafficSnapshot`](super::TrafficSnapshot)s reconstructs the cluster
//! ledger without double counting. Loop-back (same physical node) frames
//! still cross the socket but are never counted, exactly like
//! [`InProcTransport`](super::InProcTransport).

use super::{Backoff, Envelope, Message, RecvTracker, TrafficCounters, Transport, TransportError};
use crate::telemetry;
use crate::wire::{assemble, encode_frame_seq, parse_header, FRAME_HEADER_BYTES, FRAME_VERSION};
use bytes::Bytes;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// First four bytes of the connection HELLO ("PSDN").
const HELLO_MAGIC: u32 = 0x5053_444E;
const HELLO_BYTES: usize = 12;

/// Poll interval of the persistent acceptor between nonblocking accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Static description of a TCP fabric: where every endpoint listens and
/// which physical node it lives on. All participants must construct the
/// identical spec (same flags to every `poseidon-node` process).
#[derive(Debug, Clone)]
pub struct TcpFabricSpec {
    /// Listen address of each endpoint, indexed by endpoint id.
    pub addrs: Vec<SocketAddr>,
    /// Physical node of each endpoint (colocated endpoints share a node and
    /// their traffic is uncounted loop-back).
    pub node_of_endpoint: Vec<usize>,
    /// How long `connect` keeps retrying the initial mesh before giving up.
    pub connect_timeout: Duration,
    /// First delay of the capped exponential backoff shared by initial
    /// dials and post-sever reconnects.
    pub backoff_base: Duration,
    /// Ceiling of the dial/reconnect backoff delay.
    pub backoff_cap: Duration,
    /// How long a send keeps redialing a broken peer before declaring the
    /// link dead (bounded dead-peer verdict, never a hang).
    pub reconnect_timeout: Duration,
}

impl TcpFabricSpec {
    /// A localhost fabric on consecutive ports starting at `base_port`.
    pub fn loopback(base_port: u16, node_of_endpoint: &[usize]) -> Self {
        let addrs = (0..node_of_endpoint.len())
            .map(|i| SocketAddr::from(([127, 0, 0, 1], base_port + i as u16)))
            .collect();
        Self {
            addrs,
            node_of_endpoint: node_of_endpoint.to_vec(),
            connect_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(400),
            reconnect_timeout: Duration::from_secs(5),
        }
    }

    /// The paper's deployment on localhost: `workers` physical nodes, each
    /// hosting one worker (endpoints `0..P`) colocated with one KV-store
    /// shard (endpoints `P..2P`).
    pub fn colocated_loopback(workers: usize, base_port: u16) -> Self {
        let ids: Vec<usize> = (0..workers).chain(0..workers).collect();
        Self::loopback(base_port, &ids)
    }

    /// Number of physical nodes on the fabric.
    pub fn physical_nodes(&self) -> usize {
        self.node_of_endpoint.iter().max().map_or(0, |m| m + 1)
    }
}

/// Binds `n` listeners on OS-assigned localhost ports. Lets threaded tests
/// build a collision-free [`TcpFabricSpec`] before connecting endpoints.
pub fn bind_ephemeral(n: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// State shared between the endpoint, its persistent acceptor, and every
/// reader thread — the machinery that lets readers come and go as peers
/// disconnect and reconnect.
struct ReaderHub {
    /// Endpoint id, for reader telemetry track names.
    me: usize,
    /// Inbox sender cloned into each reader; `None` once shut down so the
    /// channel can close.
    tx: Mutex<Option<Sender<Envelope>>>,
    /// First *protocol* error any reader hit (corrupt frame); surfaced by
    /// `recv_timeout` so stalls are diagnosable. Plain I/O errors and EOF
    /// are benign — the peer may be reconnecting.
    reader_err: Mutex<Option<TransportError>>,
    /// Envelopes enqueued on the inbox but not yet received — the reader
    /// queue depth sampled by the `rx.queue` telemetry counter.
    inflight: AtomicU64,
    /// Clones of every inbound stream ever adopted, kept to force readers
    /// out of blocking reads during shutdown.
    inbound: Mutex<Vec<TcpStream>>,
    /// Live (and finished) reader threads, reaped at shutdown.
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Set at shutdown; stops the acceptor and rejects new adoptions.
    down: AtomicBool,
    /// Inbound streams re-accepted after the initial mesh.
    reaccepts: AtomicU64,
}

impl ReaderHub {
    /// Registers an inbound stream from `peer` and spawns its reader.
    fn adopt(self: &Arc<Self>, peer: usize, from_node: usize, stream: TcpStream) {
        if self.down.load(Ordering::SeqCst) {
            return;
        }
        let Some(tx) = self.tx.lock().expect("hub tx lock").clone() else {
            return;
        };
        let Ok(clone) = stream.try_clone() else {
            return;
        };
        self.inbound.lock().expect("inbound lock").push(clone);
        let hub = Arc::clone(self);
        let me = self.me;
        let handle = std::thread::spawn(move || {
            telemetry::set_thread_track(format!("rx e{me}<-e{peer}"));
            reader_loop(stream, from_node, &tx, &hub);
        });
        self.readers.lock().expect("readers lock").push(handle);
    }
}

/// One endpoint's attachment to a TCP fabric.
pub struct TcpTransport {
    me: usize,
    node: usize,
    spec: TcpFabricSpec,
    /// Outbound write halves, indexed by peer endpoint; `None` for `me`.
    /// The stream inside is *replaced* when a send reconnects.
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// Loop-back path to our own inbox (dropped at shutdown so readers'
    /// sender drops can close the channel).
    self_tx: Option<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    hub: Arc<ReaderHub>,
    acceptor: Option<JoinHandle<()>>,
    counters: Arc<TrafficCounters>,
    tracker: RecvTracker,
    /// Successful outbound reconnects (for stats lines and tests).
    reconnects: AtomicU64,
    down: bool,
}

impl TcpTransport {
    /// Binds this endpoint's listener from the spec and joins the mesh.
    /// Blocks until connections to and from every peer are up, or until
    /// `spec.connect_timeout`.
    pub fn connect(spec: &TcpFabricSpec, me: usize) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(spec.addrs[me])
            .map_err(|e| TransportError::Handshake(format!("bind {}: {e}", spec.addrs[me])))?;
        Self::connect_with_listener(spec, me, listener, None)
    }

    /// Joins the mesh through an already-bound listener (for ephemeral-port
    /// fabrics inside one process). `shared_counters` lets colocated test
    /// endpoints write one ledger; `None` gives this endpoint its own ledger
    /// holding only frames *it* sends — the multi-process configuration,
    /// merged later via snapshots.
    pub fn connect_with_listener(
        spec: &TcpFabricSpec,
        me: usize,
        listener: TcpListener,
        shared_counters: Option<Arc<TrafficCounters>>,
    ) -> Result<Self, TransportError> {
        let n = spec.addrs.len();
        assert_eq!(n, spec.node_of_endpoint.len(), "malformed fabric spec");
        assert!(me < n, "endpoint id {me} out of range for {n} endpoints");
        let deadline = Instant::now() + spec.connect_timeout;
        let counters = shared_counters
            .unwrap_or_else(|| Arc::new(TrafficCounters::new(spec.physical_nodes())));

        let (self_tx, inbox) = channel();
        let hub = Arc::new(ReaderHub {
            me,
            tx: Mutex::new(Some(self_tx.clone())),
            reader_err: Mutex::new(None),
            inflight: AtomicU64::new(0),
            inbound: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            down: AtomicBool::new(false),
            reaccepts: AtomicU64::new(0),
        });

        // The acceptor accepts the initial mesh (reported through `init_tx`)
        // and then *keeps accepting* for the life of the endpoint, adopting
        // every reconnecting peer — regardless of process start-up order at
        // boot, and regardless of socket failures afterwards.
        let (init_tx, init_rx) = channel();
        let acceptor = {
            let hub = Arc::clone(&hub);
            let spec = spec.clone();
            std::thread::spawn(move || acceptor_loop(listener, &spec, me, &hub, init_tx, deadline))
        };

        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..n).map(|_| None).collect();
        let mut dial_err = None;
        for peer in (0..n).filter(|&p| p != me) {
            match dial(spec, me, peer, deadline) {
                Ok(stream) => writers[peer] = Some(Mutex::new(stream)),
                Err(e) => {
                    dial_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = dial_err {
            hub.down.store(true, Ordering::SeqCst);
            let _ = acceptor.join();
            return Err(e);
        }

        let accepted = init_rx
            .recv()
            .map_err(|_| TransportError::Handshake("acceptor thread panicked".into()))??;
        for (peer, stream) in accepted {
            hub.adopt(peer, spec.node_of_endpoint[peer], stream);
        }

        Ok(Self {
            me,
            node: spec.node_of_endpoint[me],
            spec: spec.clone(),
            writers,
            self_tx: Some(self_tx),
            inbox,
            hub,
            acceptor: Some(acceptor),
            counters,
            tracker: RecvTracker::default(),
            reconnects: AtomicU64::new(0),
            down: false,
        })
    }

    /// Successful outbound reconnects so far.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Inbound streams re-accepted after the initial mesh.
    pub fn reaccept_count(&self) -> u64 {
        self.hub.reaccepts.load(Ordering::Relaxed)
    }

    /// The reader error, if any, else the fallback.
    fn pending_error(&self, fallback: TransportError) -> TransportError {
        self.hub
            .reader_err
            .lock()
            .expect("reader error lock")
            .clone()
            .unwrap_or(fallback)
    }

    /// Notes a delivered envelope: queue-depth bookkeeping plus timeout
    /// diagnostics.
    fn on_delivered(&self, env: &Envelope) {
        self.hub.inflight.fetch_sub(1, Ordering::Relaxed);
        self.tracker.note(env);
    }

    /// Redials `to` after a broken send, with the fabric's capped
    /// exponential backoff, bounded by `reconnect_timeout`. Every attempt
    /// counts toward the endpoint's [`TimeoutDiag::attempts`] so a dead
    /// peer's verdict states how hard we tried.
    fn redial(&self, to: usize, cause: &std::io::Error) -> Result<TcpStream, TransportError> {
        let addr = self.spec.addrs[to];
        let deadline = Instant::now() + self.spec.reconnect_timeout;
        let mut backoff = Backoff::new(self.spec.backoff_base, self.spec.backoff_cap);
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            self.tracker.note_attempt();
            match dial_once(addr, self.me, Duration::from_secs(1)) {
                Ok(stream) => {
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                    telemetry::instant("reconnect", to as u64, attempts);
                    return Ok(stream);
                }
                Err(_) => {
                    let delay = backoff.next_delay();
                    if Instant::now() + delay >= deadline {
                        return Err(TransportError::Io(format!(
                            "send to endpoint {to}: {cause}; \
                             reconnect gave up after {attempts} attempts"
                        )));
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn endpoint_id(&self) -> usize {
        self.me
    }

    fn endpoints(&self) -> usize {
        self.writers.len()
    }

    fn traffic(&self) -> &Arc<TrafficCounters> {
        &self.counters
    }

    fn send_seq(&self, to: usize, msg: Message, seq: u32) -> Result<(), TransportError> {
        if to == self.me {
            let tx = self.self_tx.as_ref().ok_or(TransportError::Closed)?;
            if telemetry::is_enabled() {
                telemetry::instant("tx.frame", to as u64, msg.wire_bytes());
            }
            self.hub.inflight.fetch_add(1, Ordering::Relaxed);
            // Loop-back within one endpoint never touches the socket and, like
            // all same-node traffic, is never counted.
            return tx
                .send(Envelope {
                    from: self.node,
                    src: self.me,
                    seq,
                    msg,
                })
                .map_err(|_| TransportError::Closed);
        }
        let writer = self
            .writers
            .get(to)
            .ok_or(TransportError::Closed)?
            .as_ref()
            .ok_or(TransportError::Closed)?;
        let frame = encode_frame_seq(&msg, self.me as u32, seq);
        if telemetry::is_enabled() {
            telemetry::instant("tx.frame", to as u64, frame.len() as u64);
        }
        {
            let mut stream = writer.lock().expect("writer lock");
            if let Err(e) = stream.write_all(&frame) {
                // The link broke (peer restart, injected sever). Reconnect
                // and rewrite the whole frame: the peer's reader discards
                // partial frames at EOF, so frame boundaries stay intact.
                *stream = self.redial(to, &e)?;
                stream
                    .write_all(&frame)
                    .map_err(|e| TransportError::Io(format!("resend to endpoint {to}: {e}")))?;
            }
        }
        // The counted bytes are the length of the buffer just written.
        self.counters.record(
            self.node,
            self.spec.node_of_endpoint[to],
            frame.len() as u64,
        );
        Ok(())
    }

    fn sever_link(&self, to: usize) -> Result<(), TransportError> {
        if to == self.me {
            return Ok(());
        }
        if let Some(Some(writer)) = self.writers.get(to).map(|w| w.as_ref()) {
            let stream = writer.lock().expect("writer lock");
            // Best-effort: an already-dead socket is already severed.
            let _ = stream.shutdown(Shutdown::Both);
            telemetry::instant("sever", to as u64, 0);
        }
        Ok(())
    }

    fn recv(&self) -> Result<Envelope, TransportError> {
        let env = self
            .inbox
            .recv()
            .map_err(|_| self.pending_error(TransportError::Closed))?;
        self.on_delivered(&env);
        Ok(env)
    }

    fn try_recv(&self) -> Result<Option<Envelope>, TransportError> {
        match self.inbox.try_recv() {
            Ok(env) => {
                self.on_delivered(&env);
                Ok(Some(env))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.pending_error(TransportError::Closed)),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => {
                self.on_delivered(&env);
                Ok(env)
            }
            // A reader that hit a protocol violation explains the silence
            // better than "timeout".
            Err(RecvTimeoutError::Timeout) => {
                Err(self.pending_error(self.tracker.timeout(self.me, timeout)))
            }
            Err(RecvTimeoutError::Disconnected) => Err(self.pending_error(TransportError::Closed)),
        }
    }

    fn shutdown(&mut self) -> Result<(), TransportError> {
        if self.down {
            return Ok(());
        }
        self.down = true;
        // Stop the acceptor first so no new readers appear mid-teardown.
        self.hub.down.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.self_tx = None;
        *self.hub.tx.lock().expect("hub tx lock") = None;
        // FIN every outbound stream: peers read to EOF, losing nothing.
        for writer in self.writers.iter().flatten() {
            let stream = writer.lock().expect("writer lock");
            let _ = stream.shutdown(Shutdown::Write);
        }
        // Force-close inbound streams so readers exit even if a peer never
        // half-closed its side (crash), then reap them.
        for stream in self.hub.inbound.lock().expect("inbound lock").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = self
            .hub
            .readers
            .lock()
            .expect("readers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if !self.down {
            // Best-effort teardown on panic paths: close the sockets so
            // acceptor and reader threads exit, but do not block joining.
            self.down = true;
            self.hub.down.store(true, Ordering::SeqCst);
            for writer in self.writers.iter().flatten() {
                if let Ok(stream) = writer.lock() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
            if let Ok(inbound) = self.hub.inbound.lock() {
                for stream in inbound.iter() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

/// One connect + HELLO attempt. An error anywhere (refused, reset mid-HELLO)
/// means "try again later".
fn dial_once(addr: SocketAddr, me: usize, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    let mut hello = [0u8; HELLO_BYTES];
    hello[0..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
    hello[4..8].copy_from_slice(&(FRAME_VERSION as u32).to_le_bytes());
    hello[8..12].copy_from_slice(&(me as u32).to_le_bytes());
    stream.write_all(&hello)?;
    Ok(stream)
}

/// Dials `peer` with capped exponential backoff until its listener is up or
/// `deadline` passes.
fn dial(
    spec: &TcpFabricSpec,
    me: usize,
    peer: usize,
    deadline: Instant,
) -> Result<TcpStream, TransportError> {
    let addr = spec.addrs[peer];
    let mut backoff = Backoff::new(spec.backoff_base, spec.backoff_cap);
    let mut attempts: u64 = 0;
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(|| {
                TransportError::Handshake(format!(
                    "endpoint {me}: timed out dialing {addr} after {attempts} attempts"
                ))
            })?;
        match dial_once(addr, me, remaining.min(Duration::from_secs(1))) {
            Ok(stream) => return Ok(stream),
            Err(_) => {
                attempts += 1;
                telemetry::instant("dial.retry", peer as u64, attempts);
                std::thread::sleep(backoff.next_delay().min(remaining));
            }
        }
    }
}

/// Validates one inbound HELLO; returns the peer endpoint id.
fn validate_hello(stream: &mut TcpStream, me: usize) -> Result<usize, TransportError> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| TransportError::Handshake(format!("read timeout: {e}")))?;
    let mut hello = [0u8; HELLO_BYTES];
    stream
        .read_exact(&mut hello)
        .map_err(|e| TransportError::Handshake(format!("read hello: {e}")))?;
    let magic = u32::from_le_bytes(hello[0..4].try_into().expect("4 bytes"));
    let version = u32::from_le_bytes(hello[4..8].try_into().expect("4 bytes"));
    let peer = u32::from_le_bytes(hello[8..12].try_into().expect("4 bytes")) as usize;
    if magic != HELLO_MAGIC {
        return Err(TransportError::Handshake(format!(
            "bad hello magic {magic:#010x}"
        )));
    }
    if version != FRAME_VERSION as u32 {
        return Err(TransportError::Handshake(format!(
            "peer speaks wire version {version}, we speak {FRAME_VERSION}"
        )));
    }
    if peer == me {
        return Err(TransportError::Handshake(format!(
            "self hello from endpoint {peer}"
        )));
    }
    stream
        .set_read_timeout(None)
        .map_err(|e| TransportError::Handshake(format!("clear timeout: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| TransportError::Handshake(format!("nodelay: {e}")))?;
    Ok(peer)
}

/// Accepts `expected` distinct inbound peers, validating each HELLO, until
/// `deadline`. Phase 1 of the acceptor.
fn accept_peers(
    listener: &TcpListener,
    me: usize,
    expected: usize,
    deadline: Instant,
) -> Result<Vec<(usize, TcpStream)>, TransportError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Handshake(format!("nonblocking accept: {e}")))?;
    let mut peers: Vec<(usize, TcpStream)> = Vec::with_capacity(expected);
    while peers.len() < expected {
        if Instant::now() >= deadline {
            return Err(TransportError::Handshake(format!(
                "endpoint {me}: accepted {} of {expected} peers before timeout",
                peers.len()
            )));
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| TransportError::Handshake(format!("blocking stream: {e}")))?;
                let peer = validate_hello(&mut stream, me)?;
                if peers.iter().any(|(p, _)| *p == peer) {
                    return Err(TransportError::Handshake(format!(
                        "duplicate hello from endpoint {peer}"
                    )));
                }
                peers.push((peer, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                return Err(TransportError::Handshake(format!("accept: {e}")));
            }
        }
    }
    Ok(peers)
}

/// The persistent acceptor: phase 1 collects the initial mesh and reports it
/// through `init_tx`; phase 2 re-accepts reconnecting peers until shutdown,
/// adopting each fresh stream into the hub.
fn acceptor_loop(
    listener: TcpListener,
    spec: &TcpFabricSpec,
    me: usize,
    hub: &Arc<ReaderHub>,
    init_tx: Sender<Result<Vec<(usize, TcpStream)>, TransportError>>,
    deadline: Instant,
) {
    telemetry::set_thread_track(format!("accept e{me}"));
    let initial = accept_peers(&listener, me, spec.addrs.len() - 1, deadline);
    let ok = initial.is_ok();
    let _ = init_tx.send(initial);
    if !ok {
        return;
    }
    // Phase 2: the mesh is up; keep the door open for reconnects.
    while !hub.down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // A malformed reconnect HELLO is dropped, not fatal: the
                // established mesh keeps running.
                let Ok(peer) = validate_hello(&mut stream, me) else {
                    continue;
                };
                if peer >= spec.node_of_endpoint.len() {
                    continue;
                }
                hub.reaccepts.fetch_add(1, Ordering::Relaxed);
                telemetry::instant("reconnect.accept", peer as u64, 0);
                hub.adopt(peer, spec.node_of_endpoint[peer], stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Reads `buf.len()` bytes. `Ok(false)` on clean EOF at a frame boundary;
/// EOF mid-buffer is an `UnexpectedEof` error (the peer died mid-frame).
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("peer closed {filled} bytes into a {}-byte read", buf.len()),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Decodes frames off one inbound stream until EOF or an I/O error (both
/// benign: the peer may be gone for good — that surfaces as a recv timeout —
/// or reconnecting, in which case the acceptor spawns our replacement).
/// Only a wire-protocol violation poisons the endpoint.
fn reader_loop(mut stream: TcpStream, from_node: usize, tx: &Sender<Envelope>, hub: &ReaderHub) {
    loop {
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        match read_full(&mut stream, &mut hdr) {
            Ok(true) => {}
            // Clean EOF, or the peer died / was severed mid-frame. The
            // stream's partial tail is discarded; a reconnecting sender
            // rewrites whole frames, so no fragment survives.
            Ok(false) | Err(_) => return,
        }
        let header = match parse_header(&hdr) {
            Ok(h) => h,
            Err(e) => {
                let mut slot = hub.reader_err.lock().expect("reader error lock");
                if slot.is_none() {
                    *slot = Some(TransportError::Frame(e));
                }
                return;
            }
        };
        let mut payload = vec![0u8; header.payload_len];
        match read_full(&mut stream, &mut payload) {
            Ok(true) => {}
            Ok(false) | Err(_) => return, // benign: died mid-frame
        }
        let msg = assemble(&header, Bytes::from(payload));
        let queued = hub.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        if telemetry::is_enabled() {
            telemetry::instant(
                "rx.frame",
                from_node as u64,
                (FRAME_HEADER_BYTES + header.payload_len) as u64,
            );
            telemetry::counter("rx.queue", from_node as u64, queued);
        }
        if tx
            .send(Envelope {
                from: from_node,
                src: header.src as usize,
                seq: header.seq,
                msg,
            })
            .is_err()
        {
            return; // local endpoint shut down first
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::LAYER_GRANULAR_CHUNK;

    fn grad(iter: u64, payload: usize) -> Message {
        Message::GradChunk {
            iter,
            layer: 1,
            chunk: LAYER_GRANULAR_CHUNK,
            data: Bytes::from(vec![7u8; payload]),
        }
    }

    fn quick_spec(addrs: Vec<SocketAddr>, node_of_endpoint: Vec<usize>) -> TcpFabricSpec {
        TcpFabricSpec {
            addrs,
            node_of_endpoint,
            connect_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            reconnect_timeout: Duration::from_secs(5),
        }
    }

    /// Builds an ephemeral-port fabric and runs `f(endpoint)` on one thread
    /// per endpoint, all sharing one ledger.
    fn with_fabric(
        node_of_endpoint: &[usize],
        f: impl Fn(TcpTransport) + Send + Sync,
    ) -> Arc<TrafficCounters> {
        let (listeners, addrs) = bind_ephemeral(node_of_endpoint.len()).expect("bind");
        let spec = quick_spec(addrs, node_of_endpoint.to_vec());
        let counters = Arc::new(TrafficCounters::new(spec.physical_nodes()));
        std::thread::scope(|s| {
            for (me, listener) in listeners.into_iter().enumerate() {
                let spec = spec.clone();
                let counters = Arc::clone(&counters);
                let f = &f;
                s.spawn(move || {
                    let ep =
                        TcpTransport::connect_with_listener(&spec, me, listener, Some(counters))
                            .expect("mesh");
                    f(ep);
                });
            }
        });
        counters
    }

    #[test]
    fn mesh_delivers_in_both_directions_and_counts_frames() {
        let counters = with_fabric(&[0, 1], |mut ep| {
            let other = 1 - ep.endpoint_id();
            ep.send(other, grad(ep.endpoint_id() as u64, 40)).unwrap();
            let env = ep.recv().unwrap();
            assert_eq!(env.from, other);
            assert_eq!(env.src, other, "src names the sending endpoint");
            assert_eq!(env.msg.iter(), other as u64);
            ep.shutdown().unwrap();
        });
        let frame = (FRAME_HEADER_BYTES + 40) as u64;
        assert_eq!(counters.tx_bytes(0), frame);
        assert_eq!(counters.tx_bytes(1), frame);
        assert_eq!(counters.total_bytes(), 2 * frame);
    }

    #[test]
    fn colocated_tcp_endpoints_are_loopback() {
        let counters = with_fabric(&[0, 0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                // Same-node peer and self: delivered, never counted.
                ep.send(1, grad(1, 64)).unwrap();
                ep.send(0, grad(2, 64)).unwrap();
                assert_eq!(ep.recv().unwrap().from, 0);
                // Cross-node: counted.
                ep.send(2, grad(3, 64)).unwrap();
            }
            if ep.endpoint_id() == 1 {
                assert_eq!(ep.recv().unwrap().from, 0);
            }
            if ep.endpoint_id() == 2 {
                assert_eq!(ep.recv().unwrap().msg.iter(), 3);
            }
            ep.shutdown().unwrap();
        });
        assert_eq!(counters.total_bytes(), (FRAME_HEADER_BYTES + 64) as u64);
        assert_eq!(counters.rx_bytes(1), (FRAME_HEADER_BYTES + 64) as u64);
    }

    #[test]
    fn frames_keep_per_pair_order_under_load() {
        with_fabric(&[0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                for i in 0..500u64 {
                    ep.send(1, grad(i, (i % 97) as usize)).unwrap();
                }
            } else {
                for i in 0..500u64 {
                    let env = ep.recv().unwrap();
                    assert_eq!(env.msg.iter(), i, "reordered frame");
                }
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn severed_link_reconnects_and_redelivers() {
        with_fabric(&[0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                ep.send(1, grad(0, 32)).unwrap();
                // Kill our own outbound socket, then send again: the send
                // path must redial and rewrite the frame.
                ep.sever_link(1).unwrap();
                ep.send(1, grad(1, 32)).unwrap();
                assert_eq!(ep.reconnect_count(), 1, "exactly one reconnect");
            } else {
                let mut iters = Vec::new();
                while iters.len() < 2 {
                    let env = ep
                        .recv_timeout(Duration::from_secs(10))
                        .expect("both frames must arrive despite the sever");
                    iters.push(env.msg.iter());
                }
                iters.sort_unstable();
                assert_eq!(iters, vec![0, 1]);
                assert_eq!(ep.reaccept_count(), 1, "acceptor adopted the redial");
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn recv_timeout_expires_when_no_peer_talks() {
        with_fabric(&[0, 1], |mut ep| {
            let me = ep.endpoint_id();
            let err = ep.recv_timeout(Duration::from_millis(30)).unwrap_err();
            match err {
                TransportError::Timeout(diag) => {
                    assert_eq!(diag.endpoint, me);
                    assert!(diag.last_frame.is_none());
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn connect_times_out_without_peers() {
        let (listeners, addrs) = bind_ephemeral(2).expect("bind");
        let mut spec = quick_spec(addrs, vec![0, 1]);
        spec.connect_timeout = Duration::from_millis(200);
        // Endpoint 1 never shows up.
        drop(listeners);
        let l = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        spec.addrs[0] = l.local_addr().unwrap();
        let err = match TcpTransport::connect_with_listener(&spec, 0, l, None) {
            Ok(_) => panic!("mesh connect must fail without peers"),
            Err(e) => e,
        };
        assert!(matches!(err, TransportError::Handshake(_)), "{err:?}");
    }
}
