//! TCP transport: the comm plane over real sockets, one OS process (or
//! thread) per endpoint.
//!
//! Topology is a full mesh of *unidirectional* connections: for every ordered
//! pair (a, b) endpoint `a` dials `b` and uses that stream exclusively for
//! a → b frames, so per-pair ordering is the stream's own ordering. Each
//! endpoint runs one reader thread per inbound peer; readers decode
//! length-prefixed frames ([`crate::wire`]) and push [`Envelope`]s onto the
//! endpoint's inbox.
//!
//! Connection establishment is symmetric and retry-based: every endpoint
//! binds its listener, then concurrently accepts inbound peers (background
//! thread) and dials outbound peers, retrying `connect` until
//! [`TcpFabricSpec::connect_timeout`] so start-up order does not matter. Each
//! dialer opens with a 12-byte HELLO (magic, wire version, endpoint id) so
//! the acceptor can attribute the stream.
//!
//! Graceful shutdown: `shutdown()` half-closes every outbound stream (FIN),
//! letting peers read all in-flight frames to EOF, then force-closes the
//! inbound streams so the local readers exit and can be joined even if a
//! peer dies without saying goodbye.
//!
//! Accounting is send-side only: the sender charges the exact buffer it
//! writes against (source node, destination node) in its ledger, and nothing
//! is recorded at the receiver — so summing per-process
//! [`TrafficSnapshot`](super::TrafficSnapshot)s reconstructs the cluster
//! ledger without double counting. Loop-back (same physical node) frames
//! still cross the socket but are never counted, exactly like
//! [`InProcTransport`](super::InProcTransport).

use super::{Envelope, Message, RecvTracker, TrafficCounters, Transport, TransportError};
use crate::telemetry;
use crate::wire::{assemble, encode_frame, parse_header, FRAME_HEADER_BYTES, FRAME_VERSION};
use bytes::Bytes;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// First four bytes of the connection HELLO ("PSDN").
const HELLO_MAGIC: u32 = 0x5053_444E;
const HELLO_BYTES: usize = 12;

/// Static description of a TCP fabric: where every endpoint listens and
/// which physical node it lives on. All participants must construct the
/// identical spec (same flags to every `poseidon-node` process).
#[derive(Debug, Clone)]
pub struct TcpFabricSpec {
    /// Listen address of each endpoint, indexed by endpoint id.
    pub addrs: Vec<SocketAddr>,
    /// Physical node of each endpoint (colocated endpoints share a node and
    /// their traffic is uncounted loop-back).
    pub node_of_endpoint: Vec<usize>,
    /// How long `connect` keeps retrying the mesh before giving up.
    pub connect_timeout: Duration,
    /// Pause between dial attempts while a peer's listener is not up yet.
    pub retry_interval: Duration,
}

impl TcpFabricSpec {
    /// A localhost fabric on consecutive ports starting at `base_port`.
    pub fn loopback(base_port: u16, node_of_endpoint: &[usize]) -> Self {
        let addrs = (0..node_of_endpoint.len())
            .map(|i| SocketAddr::from(([127, 0, 0, 1], base_port + i as u16)))
            .collect();
        Self {
            addrs,
            node_of_endpoint: node_of_endpoint.to_vec(),
            connect_timeout: Duration::from_secs(10),
            retry_interval: Duration::from_millis(25),
        }
    }

    /// The paper's deployment on localhost: `workers` physical nodes, each
    /// hosting one worker (endpoints `0..P`) colocated with one KV-store
    /// shard (endpoints `P..2P`).
    pub fn colocated_loopback(workers: usize, base_port: u16) -> Self {
        let ids: Vec<usize> = (0..workers).chain(0..workers).collect();
        Self::loopback(base_port, &ids)
    }

    /// Number of physical nodes on the fabric.
    pub fn physical_nodes(&self) -> usize {
        self.node_of_endpoint.iter().max().map_or(0, |m| m + 1)
    }
}

/// Binds `n` listeners on OS-assigned localhost ports. Lets threaded tests
/// build a collision-free [`TcpFabricSpec`] before connecting endpoints.
pub fn bind_ephemeral(n: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// One endpoint's attachment to a TCP fabric.
pub struct TcpTransport {
    me: usize,
    node: usize,
    dest_nodes: Vec<usize>,
    /// Outbound write halves, indexed by peer endpoint; `None` for `me`.
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// Loop-back path to our own inbox (dropped at shutdown so readers'
    /// sender drops can close the channel).
    self_tx: Option<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Clones of the inbound streams, kept to force readers out of blocking
    /// reads during shutdown.
    inbound: Vec<TcpStream>,
    readers: Vec<JoinHandle<()>>,
    /// First hard error any reader hit (corrupt frame, I/O failure);
    /// surfaced by `recv_timeout` so stalls are diagnosable.
    reader_err: Arc<Mutex<Option<TransportError>>>,
    counters: Arc<TrafficCounters>,
    /// Envelopes enqueued on the inbox but not yet received — the reader
    /// queue depth sampled by the `rx.queue` telemetry counter.
    inflight: Arc<AtomicU64>,
    tracker: RecvTracker,
    down: bool,
}

impl TcpTransport {
    /// Binds this endpoint's listener from the spec and joins the mesh.
    /// Blocks until connections to and from every peer are up, or until
    /// `spec.connect_timeout`.
    pub fn connect(spec: &TcpFabricSpec, me: usize) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(spec.addrs[me])
            .map_err(|e| TransportError::Handshake(format!("bind {}: {e}", spec.addrs[me])))?;
        Self::connect_with_listener(spec, me, listener, None)
    }

    /// Joins the mesh through an already-bound listener (for ephemeral-port
    /// fabrics inside one process). `shared_counters` lets colocated test
    /// endpoints write one ledger; `None` gives this endpoint its own ledger
    /// holding only frames *it* sends — the multi-process configuration,
    /// merged later via snapshots.
    pub fn connect_with_listener(
        spec: &TcpFabricSpec,
        me: usize,
        listener: TcpListener,
        shared_counters: Option<Arc<TrafficCounters>>,
    ) -> Result<Self, TransportError> {
        let n = spec.addrs.len();
        assert_eq!(n, spec.node_of_endpoint.len(), "malformed fabric spec");
        assert!(me < n, "endpoint id {me} out of range for {n} endpoints");
        let deadline = Instant::now() + spec.connect_timeout;
        let counters = shared_counters
            .unwrap_or_else(|| Arc::new(TrafficCounters::new(spec.physical_nodes())));

        // Accept inbound peers in the background while we dial outbound, so
        // the mesh forms regardless of process start-up order.
        let acceptor = std::thread::spawn(move || accept_peers(&listener, me, n - 1, deadline));

        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..n).map(|_| None).collect();
        for peer in (0..n).filter(|&p| p != me) {
            let stream = dial(spec, me, peer, deadline)?;
            writers[peer] = Some(Mutex::new(stream));
        }

        let accepted = acceptor
            .join()
            .map_err(|_| TransportError::Handshake("acceptor thread panicked".into()))??;

        let (self_tx, inbox) = channel();
        let reader_err = Arc::new(Mutex::new(None));
        let inflight = Arc::new(AtomicU64::new(0));
        let mut inbound = Vec::with_capacity(accepted.len());
        let mut readers = Vec::with_capacity(accepted.len());
        for (peer, stream) in accepted {
            let clone = stream
                .try_clone()
                .map_err(|e| TransportError::Handshake(format!("clone inbound stream: {e}")))?;
            inbound.push(clone);
            let tx = self_tx.clone();
            let err = Arc::clone(&reader_err);
            let depth = Arc::clone(&inflight);
            let from_node = spec.node_of_endpoint[peer];
            readers.push(std::thread::spawn(move || {
                telemetry::set_thread_track(format!("rx e{me}<-n{from_node}"));
                reader_loop(stream, from_node, &tx, &err, &depth)
            }));
        }

        Ok(Self {
            me,
            node: spec.node_of_endpoint[me],
            dest_nodes: spec.node_of_endpoint.clone(),
            writers,
            self_tx: Some(self_tx),
            inbox,
            inbound,
            readers,
            reader_err,
            counters,
            inflight,
            tracker: RecvTracker::default(),
            down: false,
        })
    }

    /// The reader error, if any, else the fallback.
    fn pending_error(&self, fallback: TransportError) -> TransportError {
        self.reader_err
            .lock()
            .expect("reader error lock")
            .clone()
            .unwrap_or(fallback)
    }

    /// Notes a delivered envelope: queue-depth bookkeeping plus timeout
    /// diagnostics.
    fn on_delivered(&self, env: &Envelope) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.tracker.note(env);
    }
}

impl Transport for TcpTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn endpoint_id(&self) -> usize {
        self.me
    }

    fn endpoints(&self) -> usize {
        self.writers.len()
    }

    fn traffic(&self) -> &Arc<TrafficCounters> {
        &self.counters
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), TransportError> {
        if to == self.me {
            let tx = self.self_tx.as_ref().ok_or(TransportError::Closed)?;
            if telemetry::is_enabled() {
                telemetry::instant("tx.frame", to as u64, msg.wire_bytes());
            }
            self.inflight.fetch_add(1, Ordering::Relaxed);
            // Loop-back within one endpoint never touches the socket and, like
            // all same-node traffic, is never counted.
            return tx
                .send(Envelope {
                    from: self.node,
                    msg,
                })
                .map_err(|_| TransportError::Closed);
        }
        let writer = self
            .writers
            .get(to)
            .ok_or(TransportError::Closed)?
            .as_ref()
            .ok_or(TransportError::Closed)?;
        let frame = encode_frame(&msg);
        if telemetry::is_enabled() {
            telemetry::instant("tx.frame", to as u64, frame.len() as u64);
        }
        {
            let mut stream = writer.lock().expect("writer lock");
            stream
                .write_all(&frame)
                .map_err(|e| TransportError::Io(format!("send to endpoint {to}: {e}")))?;
        }
        // The counted bytes are the length of the buffer just written.
        self.counters
            .record(self.node, self.dest_nodes[to], frame.len() as u64);
        Ok(())
    }

    fn recv(&self) -> Result<Envelope, TransportError> {
        let env = self
            .inbox
            .recv()
            .map_err(|_| self.pending_error(TransportError::Closed))?;
        self.on_delivered(&env);
        Ok(env)
    }

    fn try_recv(&self) -> Result<Option<Envelope>, TransportError> {
        match self.inbox.try_recv() {
            Ok(env) => {
                self.on_delivered(&env);
                Ok(Some(env))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.pending_error(TransportError::Closed)),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => {
                self.on_delivered(&env);
                Ok(env)
            }
            // A reader that died explains the silence better than "timeout".
            Err(RecvTimeoutError::Timeout) => {
                Err(self.pending_error(self.tracker.timeout(self.me, timeout)))
            }
            Err(RecvTimeoutError::Disconnected) => Err(self.pending_error(TransportError::Closed)),
        }
    }

    fn shutdown(&mut self) -> Result<(), TransportError> {
        if self.down {
            return Ok(());
        }
        self.down = true;
        self.self_tx = None;
        // FIN every outbound stream: peers read to EOF, losing nothing.
        for writer in self.writers.iter().flatten() {
            let stream = writer.lock().expect("writer lock");
            let _ = stream.shutdown(Shutdown::Write);
        }
        // Force-close inbound streams so readers exit even if a peer never
        // half-closed its side (crash), then reap them.
        for stream in &self.inbound {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if !self.down {
            // Best-effort teardown on panic paths: close the sockets so
            // reader threads exit, but do not block joining them.
            self.down = true;
            for writer in self.writers.iter().flatten() {
                if let Ok(stream) = writer.lock() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
            for stream in &self.inbound {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Dials `peer`, retrying until its listener is up or `deadline` passes, and
/// opens the stream with our HELLO.
fn dial(
    spec: &TcpFabricSpec,
    me: usize,
    peer: usize,
    deadline: Instant,
) -> Result<TcpStream, TransportError> {
    let addr = spec.addrs[peer];
    let mut attempts: u64 = 0;
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(|| {
                TransportError::Handshake(format!("endpoint {me}: timed out dialing {addr}"))
            })?;
        match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_secs(1))) {
            Ok(mut stream) => {
                stream
                    .set_nodelay(true)
                    .map_err(|e| TransportError::Handshake(format!("nodelay: {e}")))?;
                let mut hello = [0u8; HELLO_BYTES];
                hello[0..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
                hello[4..8].copy_from_slice(&(FRAME_VERSION as u32).to_le_bytes());
                hello[8..12].copy_from_slice(&(me as u32).to_le_bytes());
                stream
                    .write_all(&hello)
                    .map_err(|e| TransportError::Handshake(format!("hello to {addr}: {e}")))?;
                return Ok(stream);
            }
            Err(_) => {
                attempts += 1;
                telemetry::instant("dial.retry", peer as u64, attempts);
                std::thread::sleep(spec.retry_interval);
            }
        }
    }
}

/// Accepts `expected` inbound peers, validating each HELLO, until `deadline`.
fn accept_peers(
    listener: &TcpListener,
    me: usize,
    expected: usize,
    deadline: Instant,
) -> Result<Vec<(usize, TcpStream)>, TransportError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Handshake(format!("nonblocking accept: {e}")))?;
    let mut peers: Vec<(usize, TcpStream)> = Vec::with_capacity(expected);
    while peers.len() < expected {
        if Instant::now() >= deadline {
            return Err(TransportError::Handshake(format!(
                "endpoint {me}: accepted {} of {expected} peers before timeout",
                peers.len()
            )));
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| TransportError::Handshake(format!("blocking stream: {e}")))?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .map_err(|e| TransportError::Handshake(format!("read timeout: {e}")))?;
                let mut hello = [0u8; HELLO_BYTES];
                stream
                    .read_exact(&mut hello)
                    .map_err(|e| TransportError::Handshake(format!("read hello: {e}")))?;
                let magic = u32::from_le_bytes(hello[0..4].try_into().expect("4 bytes"));
                let version = u32::from_le_bytes(hello[4..8].try_into().expect("4 bytes"));
                let peer = u32::from_le_bytes(hello[8..12].try_into().expect("4 bytes")) as usize;
                if magic != HELLO_MAGIC {
                    return Err(TransportError::Handshake(format!(
                        "bad hello magic {magic:#010x}"
                    )));
                }
                if version != FRAME_VERSION as u32 {
                    return Err(TransportError::Handshake(format!(
                        "peer speaks wire version {version}, we speak {FRAME_VERSION}"
                    )));
                }
                if peer == me || peers.iter().any(|(p, _)| *p == peer) {
                    return Err(TransportError::Handshake(format!(
                        "duplicate or self hello from endpoint {peer}"
                    )));
                }
                stream
                    .set_read_timeout(None)
                    .map_err(|e| TransportError::Handshake(format!("clear timeout: {e}")))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| TransportError::Handshake(format!("nodelay: {e}")))?;
                peers.push((peer, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                return Err(TransportError::Handshake(format!("accept: {e}")));
            }
        }
    }
    Ok(peers)
}

/// Reads `buf.len()` bytes. `Ok(false)` on clean EOF at a frame boundary;
/// EOF mid-buffer is an `UnexpectedEof` error (the peer died mid-frame).
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("peer closed {filled} bytes into a {}-byte read", buf.len()),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Decodes frames off one inbound stream until EOF (clean exit) or a hard
/// error (recorded in `err` for `recv_timeout` to surface).
fn reader_loop(
    mut stream: TcpStream,
    from_node: usize,
    tx: &Sender<Envelope>,
    err: &Mutex<Option<TransportError>>,
    depth: &AtomicU64,
) {
    let fail = |e: TransportError| {
        let mut slot = err.lock().expect("reader error lock");
        if slot.is_none() {
            *slot = Some(e);
        }
    };
    loop {
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        match read_full(&mut stream, &mut hdr) {
            Ok(false) => return, // clean EOF
            Ok(true) => {}
            Err(e) => return fail(TransportError::Io(format!("read frame header: {e}"))),
        }
        let header = match parse_header(&hdr) {
            Ok(h) => h,
            Err(e) => return fail(TransportError::Frame(e)),
        };
        let mut payload = vec![0u8; header.payload_len];
        match read_full(&mut stream, &mut payload) {
            Ok(true) => {}
            Ok(false) | Err(_) => {
                return fail(TransportError::Io("peer died mid-frame".into()));
            }
        }
        let msg = assemble(&header, Bytes::from(payload));
        let queued = depth.fetch_add(1, Ordering::Relaxed) + 1;
        if telemetry::is_enabled() {
            telemetry::instant(
                "rx.frame",
                from_node as u64,
                (FRAME_HEADER_BYTES + header.payload_len) as u64,
            );
            telemetry::counter("rx.queue", from_node as u64, queued);
        }
        if tx
            .send(Envelope {
                from: from_node,
                msg,
            })
            .is_err()
        {
            return; // local endpoint shut down first
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::LAYER_GRANULAR_CHUNK;

    fn grad(iter: u64, payload: usize) -> Message {
        Message::GradChunk {
            iter,
            layer: 1,
            chunk: LAYER_GRANULAR_CHUNK,
            data: Bytes::from(vec![7u8; payload]),
        }
    }

    /// Builds an ephemeral-port fabric and runs `f(endpoint)` on one thread
    /// per endpoint, all sharing one ledger.
    fn with_fabric(
        node_of_endpoint: &[usize],
        f: impl Fn(TcpTransport) + Send + Sync,
    ) -> Arc<TrafficCounters> {
        let (listeners, addrs) = bind_ephemeral(node_of_endpoint.len()).expect("bind");
        let spec = TcpFabricSpec {
            addrs,
            node_of_endpoint: node_of_endpoint.to_vec(),
            connect_timeout: Duration::from_secs(10),
            retry_interval: Duration::from_millis(5),
        };
        let counters = Arc::new(TrafficCounters::new(spec.physical_nodes()));
        std::thread::scope(|s| {
            for (me, listener) in listeners.into_iter().enumerate() {
                let spec = spec.clone();
                let counters = Arc::clone(&counters);
                let f = &f;
                s.spawn(move || {
                    let ep =
                        TcpTransport::connect_with_listener(&spec, me, listener, Some(counters))
                            .expect("mesh");
                    f(ep);
                });
            }
        });
        counters
    }

    #[test]
    fn mesh_delivers_in_both_directions_and_counts_frames() {
        let counters = with_fabric(&[0, 1], |mut ep| {
            let other = 1 - ep.endpoint_id();
            ep.send(other, grad(ep.endpoint_id() as u64, 40)).unwrap();
            let env = ep.recv().unwrap();
            assert_eq!(env.from, other);
            assert_eq!(env.msg.iter(), other as u64);
            ep.shutdown().unwrap();
        });
        let frame = (FRAME_HEADER_BYTES + 40) as u64;
        assert_eq!(counters.tx_bytes(0), frame);
        assert_eq!(counters.tx_bytes(1), frame);
        assert_eq!(counters.total_bytes(), 2 * frame);
    }

    #[test]
    fn colocated_tcp_endpoints_are_loopback() {
        let counters = with_fabric(&[0, 0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                // Same-node peer and self: delivered, never counted.
                ep.send(1, grad(1, 64)).unwrap();
                ep.send(0, grad(2, 64)).unwrap();
                assert_eq!(ep.recv().unwrap().from, 0);
                // Cross-node: counted.
                ep.send(2, grad(3, 64)).unwrap();
            }
            if ep.endpoint_id() == 1 {
                assert_eq!(ep.recv().unwrap().from, 0);
            }
            if ep.endpoint_id() == 2 {
                assert_eq!(ep.recv().unwrap().msg.iter(), 3);
            }
            ep.shutdown().unwrap();
        });
        assert_eq!(counters.total_bytes(), (FRAME_HEADER_BYTES + 64) as u64);
        assert_eq!(counters.rx_bytes(1), (FRAME_HEADER_BYTES + 64) as u64);
    }

    #[test]
    fn frames_keep_per_pair_order_under_load() {
        with_fabric(&[0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                for i in 0..500u64 {
                    ep.send(1, grad(i, (i % 97) as usize)).unwrap();
                }
            } else {
                for i in 0..500u64 {
                    let env = ep.recv().unwrap();
                    assert_eq!(env.msg.iter(), i, "reordered frame");
                }
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn recv_timeout_expires_when_no_peer_talks() {
        with_fabric(&[0, 1], |mut ep| {
            let me = ep.endpoint_id();
            let err = ep.recv_timeout(Duration::from_millis(30)).unwrap_err();
            match err {
                TransportError::Timeout(diag) => {
                    assert_eq!(diag.endpoint, me);
                    assert!(diag.last_frame.is_none());
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn connect_times_out_without_peers() {
        let (listeners, addrs) = bind_ephemeral(2).expect("bind");
        let spec = TcpFabricSpec {
            addrs,
            node_of_endpoint: vec![0, 1],
            connect_timeout: Duration::from_millis(200),
            retry_interval: Duration::from_millis(10),
        };
        // Endpoint 1 never shows up.
        drop(listeners);
        let l = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let mut spec2 = spec.clone();
        spec2.addrs[0] = l.local_addr().unwrap();
        let err = match TcpTransport::connect_with_listener(&spec2, 0, l, None) {
            Ok(_) => panic!("mesh connect must fail without peers"),
            Err(e) => e,
        };
        assert!(matches!(err, TransportError::Handshake(_)), "{err:?}");
    }
}
