//! The event-loop TCP transport: one poller thread per endpoint multiplexes
//! every peer socket in nonblocking mode.
//!
//! This is the zero-copy core of the comm plane (DESIGN.md §2.4). Where the
//! [`ThreadedTcpTransport`](super::ThreadedTcpTransport) baseline spends one
//! blocking reader thread per inbound peer and serialises every frame into a
//! fresh buffer, this transport runs exactly **two** threads regardless of
//! fabric size — an acceptor and a poller — and moves payload bytes without
//! intermediate copies:
//!
//! * **Send path**: `send_seq` encodes only the fixed 32-byte header
//!   ([`encode_header_stamped`]) and enqueues `(header, payload Bytes)` on the
//!   destination link's coalescing queue. The poller drains each queue with
//!   one `write_vectored` call spanning up to [`MAX_IOV`] `IoSlice`s —
//!   header and payload go to the socket straight from where they already
//!   live; no frame buffer is ever materialised.
//! * **Receive path**: small frames are parsed out of a per-connection
//!   staging buffer; payloads of [`DIRECT_READ_MIN`] bytes or more are read
//!   directly into a [`BufPool`] lease which is frozen into the delivered
//!   [`Bytes`] — the runtime consumes the same allocation the kernel wrote
//!   into, and dropping it recycles the buffer for the next frame.
//!
//! Self-healing lives in the poller's per-link state machine: a broken link
//! moves `Up → Down`, redials with the fabric's capped exponential backoff
//! (a fresh connection *generation* in every HELLO, so the peer's
//! [`HelloGate`] can drop duplicates idempotently), and is declared `Dead`
//! only after `reconnect_timeout` — at which point queued frames are dropped
//! and blocked senders are released. A later send revives the link and the
//! cycle restarts.
//!
//! Backpressure is per link: a queue holds at most [`MAX_LINK_PENDING_BYTES`]
//! before `send_seq` blocks on a condvar that the poller signals as bytes
//! drain. Shutdown drains all live queues for up to [`DRAIN_BUDGET`] before
//! FIN-ing, so a clean shutdown never strands flushed-but-unsent frames.
//!
//! Accounting is send-side only and charged once at *enqueue* time: the
//! ledger reflects frames committed to the wire, exactly as the in-process
//! transport counts sends, so the bitwise-equivalence suites see identical
//! ledgers. Loop-back (same physical node) frames still cross the socket but
//! are never counted.

use super::net::{self, Hello, HelloGate, TcpFabricSpec, ACCEPT_POLL};
use super::sys;
use super::{
    Backoff, Envelope, LinkHealth, Message, PollerDiag, RecvTracker, TrafficCounters, Transport,
    TransportError,
};
use crate::metrics;
use crate::pool::BufPool;
use crate::telemetry;
use crate::wire::{assemble, encode_header_stamped, parse_header, FrameHeader, FRAME_HEADER_BYTES};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection staging buffer for inbound frame reassembly. Any frame
/// with a payload under [`DIRECT_READ_MIN`] is parsed wholly out of staging.
const STAGING_BYTES: usize = 64 * 1024;

/// Payloads at least this large switch to direct-read mode: the remaining
/// bytes are read straight into the pooled lease that becomes the delivered
/// payload, skipping the staging copy entirely.
const DIRECT_READ_MIN: usize = 8 * 1024;

/// Cap on a single staging refill read. Kept at [`DIRECT_READ_MIN`] so the
/// bulk of a large payload is never pre-staged: at most this many of its
/// bytes arrive via staging (one copy into the lease) before the header
/// parses and the remainder streams straight into the lease.
const REFILL_READ_BYTES: usize = DIRECT_READ_MIN;

/// Payloads at least this large take the claiming inline-write path: the
/// sender thread writes the frame to the socket itself (zero-copy, kernel
/// wakes it directly on flow control) instead of handing off to the poller.
/// Smaller frames always enqueue so the poller can coalesce up to
/// [`MAX_IOV`]/2 of them into one vectored write — per-frame syscalls
/// dominate small-frame throughput, batching wins there.
const INLINE_WRITE_MIN: usize = DIRECT_READ_MIN;

/// Cap on one kernel-level writability wait of an inline writer. A cap, not
/// a pace: the kernel wakes the writer the moment socket space opens.
const INLINE_WRITE_WAIT: Duration = Duration::from_millis(100);

/// Upper bound on `IoSlice`s per vectored write (well under any OS IOV_MAX).
const MAX_IOV: usize = 64;

/// Bytes a single link queues before `send_seq` blocks awaiting drain.
const MAX_LINK_PENDING_BYTES: u64 = 64 * 1024 * 1024;

/// How often a blocked sender rechecks for shutdown while waiting for space.
const BACKPRESSURE_RECHECK: Duration = Duration::from_millis(100);

/// Poller safety-net tick: the longest the loop sleeps with no deadline.
const POLL_TICK: Duration = Duration::from_millis(250);

/// Per-attempt connect timeout of the poller's inline redial. Kept short so
/// one dead peer cannot stall service of the live ones.
const REDIAL_ATTEMPT_TIMEOUT: Duration = Duration::from_millis(250);

/// Budget for flushing live queues during shutdown before FIN.
const DRAIN_BUDGET: Duration = Duration::from_secs(2);

/// Poll-token namespace for inbound connections; outbound links use their
/// peer index directly (always `< 2^32` endpoints).
const INBOUND_BASE: u64 = 1 << 32;

/// One frame awaiting (or mid-way through) its vectored write. `written`
/// counts bytes already on the socket, possibly reaching into the payload.
struct QueuedFrame {
    hdr: [u8; FRAME_HEADER_BYTES],
    payload: Bytes,
    written: usize,
}

impl QueuedFrame {
    fn len(&self) -> usize {
        FRAME_HEADER_BYTES + self.payload.len()
    }
}

/// The coalescing write queue of one outbound link.
struct LinkQueue {
    frames: VecDeque<QueuedFrame>,
    /// Total frame bytes queued (backpressure accounting).
    bytes: u64,
    /// Set when the link was declared dead; the next send clears it and
    /// revives the redial state machine.
    dead: Option<String>,
    /// A sender thread holds the inline-write claim: it is mid-way through
    /// writing one frame directly to the socket (outside this lock). While
    /// set, the poller must not flush this link and other senders must
    /// enqueue behind the in-flight frame.
    writer_busy: bool,
}

/// Sender-facing half of a link: the queue plus the condvar the poller
/// signals when drained bytes open up space.
struct LinkShared {
    q: Mutex<LinkQueue>,
    space: Condvar,
    /// Mirror of `q.frames.len()`, updated under the queue lock but readable
    /// without it — the poller's per-iteration sweep consults this instead of
    /// taking every queue lock every loop (which scaled O(endpoints²) in
    /// lock traffic across the process).
    depth: AtomicU64,
    /// Bumped every time the live outbound socket is retired
    /// ([`EventLoop::break_link`]). An inline writer snapshots it before
    /// writing; a mismatch afterwards means its partial bytes went to a dead
    /// socket, so the frame must be rewound and rewritten whole.
    epoch: AtomicU64,
}

impl LinkShared {
    fn new() -> LinkShared {
        LinkShared {
            q: Mutex::new(LinkQueue {
                frames: VecDeque::new(),
                bytes: 0,
                dead: None,
                writer_busy: false,
            }),
            space: Condvar::new(),
            depth: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }
}

/// State shared between the transport handle, the acceptor, and the poller.
/// Owns the [`sys::Poller`] so its waker fd stays valid for as long as any
/// sender might signal it.
struct Shared {
    me: usize,
    spec: TcpFabricSpec,
    /// Write queue per peer (`None` for our own slot).
    links: Vec<Option<LinkShared>>,
    /// Streams the acceptor validated and gated, awaiting poller adoption.
    adoptions: Mutex<Vec<(Hello, TcpStream)>>,
    /// Raw fd of each live outbound socket, for the synchronous
    /// `sever_link`. The poller clears a slot *before* dropping the stream,
    /// so a sever can never hit a reused descriptor.
    out_fds: Vec<Mutex<Option<RawFd>>>,
    /// Connection generation per peer, bumped on every redial attempt.
    gens: Vec<AtomicU32>,
    gate: HelloGate,
    reader_err: Mutex<Option<TransportError>>,
    /// Envelopes delivered to the inbox but not yet consumed.
    inflight: AtomicU64,
    down: AtomicBool,
    /// True while the poller is (about to be) blocked in `wait`; senders
    /// only pay the waker syscall when this is set.
    sleeping: AtomicBool,
    /// Set by senders after enqueueing; the poller swaps it before sleeping
    /// and skips the sleep when work arrived in the gap.
    dirty: AtomicBool,
    reaccepts: AtomicU64,
    reconnects: AtomicU64,
    /// Frames queued across all links (timeout diagnostics).
    pending_frames: AtomicU64,
    /// Bytes queued across all links (timeout diagnostics).
    pending_bytes: AtomicU64,
    /// `(peer, "rx"|"tx", when)` of the last readiness event served.
    last_ready: Mutex<Option<(usize, &'static str, Instant)>>,
    poller: sys::Poller,
    tracker: RecvTracker,
    /// Metrics-plane handles, resolved once at connect so the frame paths
    /// record registry-free: per-peer tx/rx frame+byte counters, queue
    /// high-water gauges, the writev batch-size distribution, and the
    /// reconnect counter.
    peer_metrics: metrics::PeerCounters,
    m_tx_queue_peak: metrics::Gauge,
    m_rx_queue_peak: metrics::Gauge,
    m_writev_batch: metrics::Histogram,
    m_reconnects: metrics::Counter,
    /// Base instant of the `last_tx_ns`/`last_rx_ns` stamps (elapsed ns + 1,
    /// so 0 means "never") — link staleness for timeout diagnostics.
    started: Instant,
    last_tx_ns: AtomicU64,
    last_rx_ns: AtomicU64,
}

impl Shared {
    fn stamp_tx(&self) {
        self.last_tx_ns.store(
            self.started.elapsed().as_nanos() as u64 + 1,
            Ordering::Relaxed,
        );
    }

    fn stamp_rx(&self) {
        self.last_rx_ns.store(
            self.started.elapsed().as_nanos() as u64 + 1,
            Ordering::Relaxed,
        );
    }

    /// Age of a `last_*_ns` stamp (`None` = never stamped).
    fn stamp_age(&self, stamp: &AtomicU64) -> Option<Duration> {
        match stamp.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(
                (self.started.elapsed().as_nanos() as u64 + 1).saturating_sub(ns),
            )),
        }
    }

    /// The link-state snapshot a timeout verdict carries (retransmits are
    /// filled in by the reliable layer, which owns that counter).
    fn link_health(&self) -> LinkHealth {
        LinkHealth {
            queued_frames: self.pending_frames.load(Ordering::Relaxed),
            queued_bytes: self.pending_bytes.load(Ordering::Relaxed),
            last_tx_age: self.stamp_age(&self.last_tx_ns),
            last_rx_age: self.stamp_age(&self.last_rx_ns),
            retransmits: 0,
        }
    }
}

/// A TCP transport endpoint driven by a single readiness event loop.
///
/// Thread budget is O(1) in fabric size: one persistent acceptor plus one
/// poller, whatever `endpoints()` says — versus the baseline's thread per
/// inbound peer. Wire format, HELLO handshake, accounting, and the
/// [`Transport`] contract are identical to
/// [`ThreadedTcpTransport`](super::ThreadedTcpTransport), so the two are
/// interchangeable under every equivalence and chaos suite.
pub struct TcpTransport {
    me: usize,
    node: usize,
    shared: Arc<Shared>,
    /// Keeps the loop-back path alive; dropped on shutdown (so pure-receiver
    /// drops can close the channel once the poller also exits).
    self_tx: Option<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    acceptor: Option<JoinHandle<()>>,
    poller_thread: Option<JoinHandle<()>>,
    counters: Arc<TrafficCounters>,
    down: bool,
    /// This endpoint's membership epoch (distinct from the per-link
    /// *connection* generation `link.epoch`): stamped into every outgoing
    /// frame, fences every receive.
    membership_epoch: AtomicU32,
}

impl TcpTransport {
    /// Binds this endpoint's listener from the spec and joins the mesh.
    /// Blocks until connections to and from every peer are up, or until
    /// `spec.connect_timeout`.
    pub fn connect(spec: &TcpFabricSpec, me: usize) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(spec.addrs[me])
            .map_err(|e| TransportError::Handshake(format!("bind {}: {e}", spec.addrs[me])))?;
        Self::connect_with_listener(spec, me, listener, None)
    }

    /// Joins the mesh through an already-bound listener (for ephemeral-port
    /// fabrics inside one process). `shared_counters` lets colocated test
    /// endpoints write one ledger; `None` gives this endpoint its own ledger
    /// holding only frames *it* sends — the multi-process configuration,
    /// merged later via snapshots.
    pub fn connect_with_listener(
        spec: &TcpFabricSpec,
        me: usize,
        listener: TcpListener,
        shared_counters: Option<Arc<TrafficCounters>>,
    ) -> Result<Self, TransportError> {
        let n = spec.addrs.len();
        assert_eq!(n, spec.node_of_endpoint.len(), "malformed fabric spec");
        assert!(me < n, "endpoint id {me} out of range for {n} endpoints");
        let deadline = Instant::now() + spec.connect_timeout;
        let counters = shared_counters
            .unwrap_or_else(|| Arc::new(TrafficCounters::new(spec.physical_nodes())));

        let (self_tx, inbox) = channel();
        let poller = sys::Poller::new()
            .map_err(|e| TransportError::Handshake(format!("create poller: {e}")))?;
        let shared = Arc::new(Shared {
            me,
            spec: spec.clone(),
            links: (0..n).map(|i| (i != me).then(LinkShared::new)).collect(),
            adoptions: Mutex::new(Vec::new()),
            out_fds: (0..n).map(|_| Mutex::new(None)).collect(),
            gens: (0..n).map(|_| AtomicU32::new(1)).collect(),
            gate: HelloGate::new(n),
            reader_err: Mutex::new(None),
            inflight: AtomicU64::new(0),
            down: AtomicBool::new(false),
            sleeping: AtomicBool::new(false),
            dirty: AtomicBool::new(false),
            reaccepts: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            pending_frames: AtomicU64::new(0),
            pending_bytes: AtomicU64::new(0),
            last_ready: Mutex::new(None),
            poller,
            tracker: RecvTracker::default(),
            peer_metrics: metrics::PeerCounters::new(me, n),
            m_tx_queue_peak: metrics::gauge(
                "poseidon_tx_queue_peak_frames",
                &[("endpoint", &me.to_string())],
            ),
            m_rx_queue_peak: metrics::gauge(
                "poseidon_rx_queue_peak_frames",
                &[("endpoint", &me.to_string())],
            ),
            m_writev_batch: metrics::histogram(
                "poseidon_writev_batch_frames",
                &[("endpoint", &me.to_string())],
            ),
            m_reconnects: metrics::counter(
                "poseidon_reconnects_total",
                &[("endpoint", &me.to_string())],
            ),
            started: Instant::now(),
            last_tx_ns: AtomicU64::new(0),
            last_rx_ns: AtomicU64::new(0),
        });

        // The acceptor accepts the initial mesh (reported through `init_tx`)
        // and then *keeps accepting* for the life of the endpoint, gating
        // every HELLO and queueing adopted streams for the poller.
        let (init_tx, init_rx) = channel();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(listener, &shared, init_tx, deadline))
        };

        let mut out_streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut dial_err = None;
        for peer in (0..n).filter(|&p| p != me) {
            match net::dial(spec, me, peer, deadline) {
                Ok(stream) => out_streams[peer] = Some(stream),
                Err(e) => {
                    dial_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = dial_err {
            shared.down.store(true, Ordering::SeqCst);
            let _ = acceptor.join();
            return Err(e);
        }

        let accepted = init_rx
            .recv()
            .map_err(|_| TransportError::Handshake("acceptor thread panicked".into()))??;

        // Publish the outbound fds *before* the poller exists: `sever_link`
        // and the inline send fast path consult these slots, and both may run
        // the instant `connect` returns — they must not race the poller
        // thread's own registration pass.
        for (peer, stream) in out_streams.iter().enumerate() {
            if let Some(stream) = stream {
                *shared.out_fds[peer].lock().expect("out fd lock") = Some(stream.as_raw_fd());
            }
        }

        let poller_thread = {
            let shared = Arc::clone(&shared);
            let tx = self_tx.clone();
            std::thread::spawn(move || EventLoop::new(shared, out_streams, accepted, tx).run())
        };

        Ok(Self {
            me,
            node: spec.node_of_endpoint[me],
            shared,
            self_tx: Some(self_tx),
            inbox,
            acceptor: Some(acceptor),
            poller_thread: Some(poller_thread),
            counters,
            down: false,
            membership_epoch: AtomicU32::new(0),
        })
    }

    /// Successful outbound reconnects so far.
    pub fn reconnect_count(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Relaxed)
    }

    /// Inbound streams re-accepted after the initial mesh.
    pub fn reaccept_count(&self) -> u64 {
        self.shared.reaccepts.load(Ordering::Relaxed)
    }

    /// Duplicate/stale HELLOs the (peer, generation) gate rejected.
    pub fn dup_hello_count(&self) -> u64 {
        self.shared.gate.dup_count()
    }

    /// The reader error, if any, else the fallback.
    fn pending_error(&self, fallback: TransportError) -> TransportError {
        self.shared
            .reader_err
            .lock()
            .expect("reader error lock")
            .clone()
            .unwrap_or(fallback)
    }

    /// Notes a delivered envelope: queue-depth bookkeeping plus timeout
    /// diagnostics.
    fn on_delivered(&self, env: &Envelope) {
        self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
        self.shared.tracker.note(env);
        self.shared
            .peer_metrics
            .note_rx(env.src, env.msg.wire_bytes());
        self.shared.stamp_rx();
    }

    /// Epoch fence at the dequeue point: a data frame from a stale membership
    /// epoch is dropped and counted, never delivered. The inflight counter is
    /// still decremented — the frame left the queue either way.
    fn admit(&self, env: Envelope) -> Option<Envelope> {
        let current = self.membership_epoch.load(Ordering::Relaxed);
        if super::stale_epoch(&env, current) {
            self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
            super::note_stale_epoch_frame(self.me, env.epoch, current);
            return None;
        }
        self.on_delivered(&env);
        Some(env)
    }

    /// The claimed inline write of one large frame: loops `writev` on the
    /// dup'd fd, sleeping in a single-fd `poll(2)` on flow control, until the
    /// frame is fully written, the socket errors, or shutdown begins. Runs
    /// outside every lock; on exit it releases the claim and requeues any
    /// remainder at the *front* of the queue so per-link order holds.
    fn inline_write(
        &self,
        link: &LinkShared,
        dup_fd: RawFd,
        epoch: u64,
        hdr: [u8; FRAME_HEADER_BYTES],
        payload: Bytes,
    ) {
        let total = FRAME_HEADER_BYTES + payload.len();
        let mut written = 0usize;
        let mut broken = false;
        // Holding the claim means nothing else writes this socket, so the
        // shared O_NONBLOCK flag can be dropped for the duration: a blocked
        // write then sleeps *inside* the syscall (one `writev` rides out any
        // number of flow-control stalls) instead of paying a poll+writev
        // pair per stall. Restored before the claim is released.
        sys::set_nonblocking_fd(dup_fd, false);
        while written < total && !self.shared.down.load(Ordering::SeqCst) {
            let hdr_at = written.min(FRAME_HEADER_BYTES);
            let pay_at = written - hdr_at;
            let iov = [
                IoSlice::new(&hdr[hdr_at..]),
                IoSlice::new(&payload[pay_at..]),
            ];
            match sys::writev_fd(dup_fd, &iov) {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Only reachable if the blocking flip failed; wait for
                    // space at the kernel and retry.
                    sys::poll_out_fd(dup_fd, INLINE_WRITE_WAIT);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Breakage surfaces to the poller through its own
                    // readiness events; it owns the break/redial machine.
                    broken = true;
                    break;
                }
            }
        }
        sys::set_nonblocking_fd(dup_fd, true);
        sys::close_fd(dup_fd);
        let mut q = link.q.lock().expect("link queue");
        q.writer_busy = false;
        if written < total {
            // The epoch check decides whether the partial bytes reached the
            // *current* socket. If the link broke meanwhile, the peer
            // discards the partial frame at EOF, so rewind and rewrite
            // whole after redial — resuming mid-frame on a fresh socket
            // would corrupt the stream.
            let resume_at = if broken || link.epoch.load(Ordering::SeqCst) != epoch {
                0
            } else {
                written
            };
            let frame_len = total as u64;
            q.frames.push_front(QueuedFrame {
                hdr,
                payload,
                written: resume_at,
            });
            q.bytes += frame_len;
            link.depth.fetch_add(1, Ordering::Relaxed);
            self.shared.pending_frames.fetch_add(1, Ordering::Relaxed);
            self.shared
                .pending_bytes
                .fetch_add(frame_len, Ordering::Relaxed);
        }
        let backlog = !q.frames.is_empty();
        drop(q);
        // Frames enqueued behind the claim (or our own remainder) now need
        // the poller.
        if backlog {
            self.shared.dirty.store(true, Ordering::SeqCst);
            if self.shared.sleeping.load(Ordering::SeqCst) {
                self.shared.poller.waker().wake();
            }
        }
    }

    /// Event-loop context for a timeout verdict: queue depths and the last
    /// readiness event, mapped to an age at the moment of the timeout.
    fn poller_diag(&self) -> PollerDiag {
        PollerDiag {
            pending_tx_frames: self.shared.pending_frames.load(Ordering::Relaxed),
            pending_tx_bytes: self.shared.pending_bytes.load(Ordering::Relaxed),
            last_ready: self
                .shared
                .last_ready
                .lock()
                .expect("last ready lock")
                .map(|(peer, dir, at)| (peer, dir, at.elapsed())),
        }
    }
}

impl Transport for TcpTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn endpoint_id(&self) -> usize {
        self.me
    }

    fn endpoints(&self) -> usize {
        self.shared.spec.addrs.len()
    }

    fn traffic(&self) -> &Arc<TrafficCounters> {
        &self.counters
    }

    fn send_seq(&self, to: usize, msg: Message, seq: u32) -> Result<(), TransportError> {
        if to == self.me {
            let tx = self.self_tx.as_ref().ok_or(TransportError::Closed)?;
            if telemetry::is_enabled() {
                telemetry::instant("tx.frame", to as u64, msg.wire_bytes());
            }
            self.shared.peer_metrics.note_tx(to, msg.wire_bytes());
            self.shared.inflight.fetch_add(1, Ordering::Relaxed);
            // Loop-back within one endpoint never touches the socket and,
            // like all same-node traffic, is never counted.
            return tx
                .send(Envelope {
                    from: self.node,
                    src: self.me,
                    seq,
                    epoch: self.membership_epoch.load(Ordering::Relaxed),
                    msg,
                })
                .map_err(|_| TransportError::Closed);
        }
        let link = self
            .shared
            .links
            .get(to)
            .ok_or(TransportError::Closed)?
            .as_ref()
            .ok_or(TransportError::Closed)?;
        let frame_len = msg.wire_bytes();
        if telemetry::is_enabled() {
            telemetry::instant("tx.frame", to as u64, frame_len);
        }
        self.shared.peer_metrics.note_tx(to, frame_len);
        self.shared.stamp_tx();
        let hdr = encode_header_stamped(
            &msg,
            self.me as u32,
            seq,
            self.membership_epoch.load(Ordering::Relaxed),
        );
        let payload = msg.into_payload();
        let claimed = {
            let mut q = link.q.lock().expect("link queue");
            while q.bytes >= MAX_LINK_PENDING_BYTES
                && q.dead.is_none()
                && !self.shared.down.load(Ordering::SeqCst)
            {
                let (guard, _) = link
                    .space
                    .wait_timeout(q, BACKPRESSURE_RECHECK)
                    .expect("link queue");
                q = guard;
            }
            if self.shared.down.load(Ordering::SeqCst) {
                return Err(TransportError::Closed);
            }
            // A send on a dead link revives it: the poller notices the
            // non-empty queue and restarts the redial state machine with a
            // fresh reconnect budget.
            q.dead = None;
            // Inline fast path for large frames: with nothing queued ahead
            // and no other inline writer active, this thread claims the link
            // and writes the frame to the socket itself — no poller handoff,
            // no wake, no copy, and on flow control the kernel wakes this
            // thread directly. The dup pins the socket *object* (not just the
            // descriptor number) so the write can proceed outside all locks
            // even if the poller retires the original fd concurrently.
            let mut claim = None;
            if payload.len() >= INLINE_WRITE_MIN && q.frames.is_empty() && !q.writer_busy {
                let slot = self.shared.out_fds[to].lock().expect("out fd lock");
                if let Some(fd) = *slot {
                    if let Ok(dup) = sys::dup_fd(fd) {
                        q.writer_busy = true;
                        claim = Some((dup, link.epoch.load(Ordering::SeqCst)));
                    }
                }
            }
            match claim {
                Some(claim) => claim,
                None => {
                    // Queued path: the poller owns the write, coalescing this
                    // frame with its neighbours into one vectored syscall.
                    q.frames.push_back(QueuedFrame {
                        hdr,
                        payload,
                        written: 0,
                    });
                    q.bytes += frame_len;
                    link.depth.fetch_add(1, Ordering::Relaxed);
                    let depth = q.frames.len() as u64;
                    drop(q);
                    self.shared.m_tx_queue_peak.set_max(depth);
                    self.shared.pending_frames.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .pending_bytes
                        .fetch_add(frame_len, Ordering::Relaxed);
                    self.counters.record(
                        self.node,
                        self.shared.spec.node_of_endpoint[to],
                        frame_len,
                    );
                    if telemetry::is_enabled() {
                        telemetry::counter("tx.queue", to as u64, depth);
                    }
                    self.shared.dirty.store(true, Ordering::SeqCst);
                    if self.shared.sleeping.load(Ordering::SeqCst) {
                        self.shared.poller.waker().wake();
                    }
                    return Ok(());
                }
            }
        };
        // Claimed inline write, outside every lock.
        let (dup_fd, epoch) = claimed;
        self.inline_write(link, dup_fd, epoch, hdr, payload);
        self.counters
            .record(self.node, self.shared.spec.node_of_endpoint[to], frame_len);
        if telemetry::is_enabled() {
            telemetry::counter("tx.queue", to as u64, 0);
        }
        Ok(())
    }

    fn sever_link(&self, to: usize) -> Result<(), TransportError> {
        if to == self.me {
            return Ok(());
        }
        if let Some(slot) = self.shared.out_fds.get(to) {
            // Holding the slot lock pins the fd: the poller clears the slot
            // under this lock before dropping a stream.
            let fd = slot.lock().expect("out fd lock");
            if let Some(fd) = *fd {
                let _ = sys::shutdown_fd(fd);
                telemetry::instant("sever", to as u64, 0);
            }
        }
        Ok(())
    }

    fn recv(&self) -> Result<Envelope, TransportError> {
        loop {
            let env = self
                .inbox
                .recv()
                .map_err(|_| self.pending_error(TransportError::Closed))?;
            if let Some(env) = self.admit(env) {
                return Ok(env);
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Envelope>, TransportError> {
        loop {
            match self.inbox.try_recv() {
                Ok(env) => {
                    if let Some(env) = self.admit(env) {
                        return Ok(Some(env));
                    }
                }
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    return Err(self.pending_error(TransportError::Closed))
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        loop {
            match self.inbox.recv_timeout(timeout) {
                Ok(env) => {
                    if let Some(env) = self.admit(env) {
                        return Ok(env);
                    }
                }
                // A reader that hit a protocol violation explains the silence
                // better than "timeout".
                Err(RecvTimeoutError::Timeout) => {
                    let mut err = self.pending_error(self.shared.tracker.timeout(self.me, timeout));
                    if let TransportError::Timeout(diag) = &mut err {
                        diag.poller = Some(self.poller_diag());
                        diag.link = Some(self.shared.link_health());
                    }
                    return Err(err);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(self.pending_error(TransportError::Closed))
                }
            }
        }
    }

    fn set_epoch(&self, epoch: u32) {
        self.membership_epoch.store(epoch, Ordering::Relaxed);
    }

    fn current_epoch(&self) -> u32 {
        self.membership_epoch.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) -> Result<(), TransportError> {
        if self.down {
            return Ok(());
        }
        self.down = true;
        self.shared.down.store(true, Ordering::SeqCst);
        // Unblock senders stuck in backpressure, then the poller itself; it
        // drains live queues (bounded by DRAIN_BUDGET), FINs, and exits.
        for link in self.shared.links.iter().flatten() {
            link.space.notify_all();
        }
        self.shared.poller.waker().wake();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.poller_thread.take() {
            let _ = handle.join();
        }
        self.self_tx = None;
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        if !self.down {
            // Best-effort teardown on panic paths: signal both threads but
            // do not block joining them.
            self.down = true;
            self.shared.down.store(true, Ordering::SeqCst);
            for link in self.shared.links.iter().flatten() {
                link.space.notify_all();
            }
            self.shared.poller.waker().wake();
        }
    }
}

/// Outbound link state owned by the poller.
enum OutState {
    /// Connected; frames flush through vectored writes.
    Up(TcpStream),
    /// Broken; redialing on a backoff schedule until `deadline`.
    Down(DownState),
    /// Reconnect budget exhausted (or no link exists, e.g. our own slot).
    /// A queued frame revives the link into `Down`.
    Dead,
}

struct DownState {
    backoff: Backoff,
    /// Earliest instant of the next dial attempt.
    next: Instant,
    /// Past this instant the link is declared dead.
    deadline: Instant,
    attempts: u64,
    /// What broke the link, for the dead verdict.
    cause: String,
    /// A link that broke with nothing queued parks instead of dialing: the
    /// peer may simply have shut down, and dialing it would manufacture
    /// phantom reconnects. Parked links ignore `next`/`deadline` entirely;
    /// queued traffic unparks them with a fresh budget and dials at once.
    parked: bool,
}

impl DownState {
    fn fresh(spec: &TcpFabricSpec, now: Instant, cause: String) -> DownState {
        DownState {
            backoff: Backoff::new(spec.backoff_base, spec.backoff_cap),
            next: now,
            deadline: now + spec.reconnect_timeout,
            attempts: 0,
            cause,
            parked: false,
        }
    }
}

/// An in-flight direct read: the frame header plus the pooled lease being
/// filled straight off the socket.
struct DirectRead {
    header: FrameHeader,
    lease: crate::pool::PooledBuf,
    have: usize,
}

/// One inbound connection and its reassembly state.
struct InConn {
    stream: TcpStream,
    peer: usize,
    from_node: usize,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    direct: Option<DirectRead>,
}

/// Why an inbound connection is being retired.
enum Close {
    /// EOF or I/O error — the peer is gone or reconnecting; not our error.
    Benign,
    /// The peer sent bytes that violate the wire protocol.
    Poison(crate::wire::FrameError),
}

/// The poller: owns every socket, services readiness, flushes queues, and
/// runs the per-link redial state machine.
struct EventLoop {
    shared: Arc<Shared>,
    me: usize,
    out: Vec<OutState>,
    /// Whether EPOLLOUT interest is currently registered per link.
    wants_writable: Vec<bool>,
    conns: Vec<Option<InConn>>,
    tx: Sender<Envelope>,
}

impl EventLoop {
    fn new(
        shared: Arc<Shared>,
        out_streams: Vec<Option<TcpStream>>,
        initial_inbound: Vec<(usize, TcpStream)>,
        tx: Sender<Envelope>,
    ) -> EventLoop {
        let me = shared.me;
        let n = out_streams.len();
        let mut lp = EventLoop {
            shared,
            me,
            out: out_streams
                .into_iter()
                .map(|s| s.map_or(OutState::Dead, OutState::Up))
                .collect(),
            wants_writable: vec![false; n],
            conns: Vec::new(),
            tx,
        };
        for peer in 0..n {
            lp.register_outbound(peer);
        }
        for (peer, stream) in initial_inbound {
            lp.adopt(peer, stream);
        }
        lp
    }

    fn run(mut self) {
        telemetry::set_thread_track(format!("poller e{}", self.me));
        let mut events: Vec<sys::PollEvent> = Vec::new();
        let mut last_occupancy = Instant::now();
        while !self.shared.down.load(Ordering::SeqCst) {
            self.adopt_pending();
            let now = Instant::now();
            self.sweep(now);
            // Sleep until the next redial deadline, capped at the tick.
            // Parked links have no deadline: they dial only when traffic
            // arrives, and the sender's wake covers that.
            let mut timeout = POLL_TICK;
            for st in &self.out {
                if let OutState::Down(d) = st {
                    if !d.parked {
                        timeout = timeout.min(d.next.saturating_duration_since(now));
                    }
                }
            }
            // Sleep/wake protocol: announce we are about to sleep, then
            // consume the dirty flag. Work that raced in skips the sleep;
            // work that lands after sees `sleeping` and fires the waker.
            self.shared.sleeping.store(true, Ordering::SeqCst);
            let wait_for = if self.shared.dirty.swap(false, Ordering::SeqCst) {
                Duration::ZERO
            } else {
                timeout
            };
            let res = self.shared.poller.wait(&mut events, Some(wait_for));
            self.shared.sleeping.store(false, Ordering::SeqCst);
            if res.is_err() {
                break; // the poll fd itself failed; nothing to salvage
            }
            let batch = std::mem::take(&mut events);
            for &ev in &batch {
                self.handle_event(ev);
            }
            events = batch;
            if telemetry::is_enabled() && last_occupancy.elapsed() >= Duration::from_millis(250) {
                last_occupancy = Instant::now();
                telemetry::counter(
                    "pool.occupancy",
                    0,
                    BufPool::global().stats().resident_bytes,
                );
            }
        }
        self.drain_and_close();
    }

    /// Pulls acceptor-validated streams into the event loop.
    fn adopt_pending(&mut self) {
        let pending: Vec<(Hello, TcpStream)> = self
            .shared
            .adoptions
            .lock()
            .expect("adoptions lock")
            .drain(..)
            .collect();
        for (hello, stream) in pending {
            self.adopt(hello.peer, stream);
        }
    }

    /// Registers one inbound stream under a free slot token.
    fn adopt(&mut self, peer: usize, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let slot = match self.conns.iter().position(|c| c.is_none()) {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let token = INBOUND_BASE | slot as u64;
        if self
            .shared
            .poller
            .register(stream.as_raw_fd(), token, true, false)
            .is_err()
        {
            return;
        }
        let from_node = self.shared.spec.node_of_endpoint[peer];
        self.conns[slot] = Some(InConn {
            stream,
            peer,
            from_node,
            buf: vec![0u8; STAGING_BYTES],
            start: 0,
            end: 0,
            direct: None,
        });
    }

    /// Moves an `Up` outbound stream into nonblocking mode and registers it
    /// (hangup interest only; write interest is added on demand). On failure
    /// the link goes `Down` and the redial path gets its turn.
    fn register_outbound(&mut self, peer: usize) {
        let OutState::Up(stream) = &self.out[peer] else {
            return;
        };
        let fd = stream.as_raw_fd();
        let ok = stream.set_nonblocking(true).is_ok()
            && self
                .shared
                .poller
                .register(fd, peer as u64, false, false)
                .is_ok();
        if ok {
            *self.shared.out_fds[peer].lock().expect("out fd lock") = Some(fd);
        } else {
            // The slot may have been pre-published at connect time; a link
            // that failed registration must not leave a dangling fd behind.
            *self.shared.out_fds[peer].lock().expect("out fd lock") = None;
            self.out[peer] = OutState::Down(DownState::fresh(
                &self.shared.spec,
                Instant::now(),
                "could not register outbound socket".into(),
            ));
        }
    }

    fn handle_event(&mut self, ev: sys::PollEvent) {
        if ev.token < INBOUND_BASE {
            let peer = ev.token as usize;
            if peer >= self.out.len() {
                return;
            }
            *self.shared.last_ready.lock().expect("last ready lock") =
                Some((peer, "tx", Instant::now()));
            // Outbound sockets carry no inbound data, so readable means the
            // peer closed its end (RDHUP) — either way the link is broken.
            if ev.hangup || ev.readable {
                self.break_link(peer, "peer hung up");
            } else if ev.writable {
                self.flush_link(peer);
            }
            return;
        }
        let slot = (ev.token - INBOUND_BASE) as usize;
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return;
        };
        *self.shared.last_ready.lock().expect("last ready lock") =
            Some((conn.peer, "rx", Instant::now()));
        match service_inbound(conn, &self.shared, &self.tx) {
            Ok(()) => {}
            Err(close) => {
                if let Close::Poison(e) = close {
                    let mut slot_err = self.shared.reader_err.lock().expect("reader error lock");
                    if slot_err.is_none() {
                        *slot_err = Some(TransportError::Frame(e));
                    }
                }
                let fd = conn.stream.as_raw_fd();
                self.shared.poller.deregister(fd);
                self.conns[slot] = None;
            }
        }
    }

    /// Per-iteration link maintenance: flush what is flushable, redial what
    /// is due, revive dead links with queued traffic.
    fn sweep(&mut self, now: Instant) {
        for peer in 0..self.out.len() {
            if peer == self.me {
                continue;
            }
            // Lock-free depth probe: a stale zero is safe (the enqueueing
            // sender sets `dirty` and wakes us), a stale non-zero just takes
            // the queue lock once and finds it empty.
            let queued = self.shared.links[peer]
                .as_ref()
                .is_some_and(|l| l.depth.load(Ordering::Relaxed) > 0);
            match &self.out[peer] {
                OutState::Up(_) => {
                    // Skip when awaiting EPOLLOUT: the socket said "full".
                    if queued && !self.wants_writable[peer] {
                        self.flush_link(peer);
                    }
                }
                OutState::Down(d) => {
                    if queued {
                        if d.parked {
                            // Traffic arrived for a parked link: restart the
                            // redial state machine with a fresh budget (the
                            // parked window may be arbitrarily stale) and
                            // dial immediately.
                            let cause = d.cause.clone();
                            self.out[peer] =
                                OutState::Down(DownState::fresh(&self.shared.spec, now, cause));
                            self.try_redial(peer, now);
                        } else if now >= d.next {
                            self.try_redial(peer, now);
                        }
                    } else if !d.parked && now >= d.next {
                        let mut parked = DownState::fresh(&self.shared.spec, now, d.cause.clone());
                        parked.parked = true;
                        self.out[peer] = OutState::Down(parked);
                    }
                }
                OutState::Dead => {
                    if queued {
                        self.out[peer] = OutState::Down(DownState::fresh(
                            &self.shared.spec,
                            now,
                            "link previously declared dead".into(),
                        ));
                    }
                }
            }
        }
    }

    /// Drains one link's queue with vectored writes until empty, the socket
    /// blocks (register write interest), or the link breaks.
    ///
    /// The queue lock is never held across a syscall: each round *steals* a
    /// batch of frames under the lock (taking the same `writer_busy` claim
    /// inline writers use, so senders enqueue behind the batch and never
    /// touch the socket), writes outside it, then reconciles. Senders on a
    /// hot link stay lock-free-in-practice instead of futex-sleeping behind
    /// every poller write.
    fn flush_link(&mut self, peer: usize) {
        loop {
            let OutState::Up(stream) = &mut self.out[peer] else {
                return;
            };
            let fd = stream.as_raw_fd();
            let Some(link) = self.shared.links[peer].as_ref() else {
                return;
            };
            let mut batch: VecDeque<QueuedFrame> = {
                let mut q = link.q.lock().expect("link queue");
                if q.writer_busy {
                    // An inline writer owns the socket; frames queued behind
                    // its in-flight frame wait. The writer wakes us when done.
                    return;
                }
                if q.frames.is_empty() {
                    drop(q);
                    if self.wants_writable[peer] {
                        self.wants_writable[peer] = false;
                        let _ = self.shared.poller.modify(fd, peer as u64, false, false);
                    }
                    return;
                }
                // Pop, don't split: `split_off` would relocate the whole
                // tail of a deep queue per batch.
                let take = q.frames.len().min(MAX_IOV / 2);
                let mut batch = VecDeque::with_capacity(take);
                for _ in 0..take {
                    batch.push_back(q.frames.pop_front().expect("batch under len"));
                }
                q.writer_busy = true;
                batch
            };
            self.shared.m_writev_batch.record(batch.len() as u64);
            let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
            for (i, f) in batch.iter().enumerate() {
                if i == 0 && f.written > 0 {
                    // Resume the partially written head, maybe mid-payload.
                    if f.written < FRAME_HEADER_BYTES {
                        iov.push(IoSlice::new(&f.hdr[f.written..]));
                        if !f.payload.is_empty() {
                            iov.push(IoSlice::new(&f.payload));
                        }
                    } else {
                        iov.push(IoSlice::new(&f.payload[f.written - FRAME_HEADER_BYTES..]));
                    }
                } else {
                    iov.push(IoSlice::new(&f.hdr));
                    if !f.payload.is_empty() {
                        iov.push(IoSlice::new(&f.payload));
                    }
                }
            }
            let res = stream.write_vectored(&iov);
            let mut q = link.q.lock().expect("link queue");
            q.writer_busy = false;
            if let Ok(n) = res {
                if n > 0 {
                    advance_batch(&self.shared, link, &mut q, &mut batch, n);
                }
            }
            // Unwritten frames go back where they came from: ahead of
            // anything senders queued while the batch was out.
            let drained = batch.is_empty();
            while let Some(f) = batch.pop_back() {
                q.frames.push_front(f);
            }
            match res {
                Ok(0) => {
                    drop(q);
                    self.break_link(peer, "wrote zero bytes");
                    return;
                }
                Ok(_) => {
                    if !drained {
                        // Socket took a partial batch; try again, it may
                        // still have room.
                        continue;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    drop(q);
                    if !self.wants_writable[peer] {
                        self.wants_writable[peer] = true;
                        let _ = self.shared.poller.modify(fd, peer as u64, false, true);
                    }
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    let cause = format!("write: {e}");
                    drop(q);
                    self.break_link(peer, &cause);
                    return;
                }
            }
        }
    }

    /// Retires a broken outbound stream and arms the redial state machine.
    /// The partially written head frame is rewound to be rewritten whole —
    /// the peer discards partial frames at EOF, so boundaries stay intact.
    /// A stale readiness event for a link already `Down`/`Dead` is a no-op.
    fn break_link(&mut self, peer: usize, cause: &str) {
        if !matches!(self.out[peer], OutState::Up(_)) {
            return;
        }
        let now = Instant::now();
        let prev = std::mem::replace(
            &mut self.out[peer],
            OutState::Down(DownState::fresh(&self.shared.spec, now, cause.to_string())),
        );
        if let OutState::Up(stream) = prev {
            // Clear the sever slot *before* the fd can be reused.
            let mut slot = self.shared.out_fds[peer].lock().expect("out fd lock");
            *slot = None;
            self.shared.poller.deregister(stream.as_raw_fd());
            drop(stream);
            drop(slot);
        }
        if let Some(link) = &self.shared.links[peer] {
            // Invalidate any in-flight inline write: its bytes went to the
            // socket just retired, so its frame must rewind to offset 0.
            link.epoch.fetch_add(1, Ordering::SeqCst);
        }
        self.wants_writable[peer] = false;
        if let Some(link) = &self.shared.links[peer] {
            let mut q = link.q.lock().expect("link queue");
            if let Some(f) = q.frames.front_mut() {
                f.written = 0;
            }
        }
    }

    /// One inline dial attempt for a `Down` link. Success re-registers and
    /// flushes; failure backs off, and past the deadline the link dies.
    fn try_redial(&mut self, peer: usize, now: Instant) {
        let mut d = match std::mem::replace(&mut self.out[peer], OutState::Dead) {
            OutState::Down(d) => d,
            other => {
                self.out[peer] = other;
                return;
            }
        };
        d.attempts += 1;
        self.shared.tracker.note_attempt();
        let generation = self.shared.gens[peer].fetch_add(1, Ordering::Relaxed) + 1;
        let addr = self.shared.spec.addrs[peer];
        match net::dial_once(addr, self.me, generation, REDIAL_ATTEMPT_TIMEOUT) {
            Ok(stream) => {
                self.shared.reconnects.fetch_add(1, Ordering::Relaxed);
                self.shared.m_reconnects.inc();
                telemetry::instant("reconnect", peer as u64, d.attempts);
                self.out[peer] = OutState::Up(stream);
                self.wants_writable[peer] = false;
                self.register_outbound(peer);
                self.flush_link(peer);
            }
            Err(e) => {
                if now >= d.deadline {
                    let verdict = format!(
                        "link to endpoint {peer} dead after {} attempts ({}; last: {e})",
                        d.attempts, d.cause
                    );
                    self.kill_link(peer, verdict);
                    self.out[peer] = OutState::Dead;
                } else {
                    let delay = d.backoff.next_delay();
                    d.next = now + delay;
                    self.out[peer] = OutState::Down(d);
                }
            }
        }
    }

    /// Declares a link dead: queued frames are dropped, blocked senders are
    /// released, and the verdict is recorded on the queue.
    fn kill_link(&mut self, peer: usize, verdict: String) {
        let Some(link) = self.shared.links[peer].as_ref() else {
            return;
        };
        let mut q = link.q.lock().expect("link queue");
        let dropped = q.frames.len() as u64;
        link.depth.fetch_sub(dropped, Ordering::Relaxed);
        self.shared
            .pending_frames
            .fetch_sub(dropped, Ordering::Relaxed);
        self.shared
            .pending_bytes
            .fetch_sub(q.bytes, Ordering::Relaxed);
        q.frames.clear();
        q.bytes = 0;
        q.dead = Some(verdict);
        link.space.notify_all();
        telemetry::instant("link.dead", peer as u64, dropped);
    }

    /// Shutdown epilogue: flush live queues within [`DRAIN_BUDGET`] (still
    /// servicing inbound so peers draining *us* are not stalled), then FIN
    /// outbound and retire every socket.
    fn drain_and_close(mut self) {
        let deadline = Instant::now() + DRAIN_BUDGET;
        let mut events: Vec<sys::PollEvent> = Vec::new();
        loop {
            let mut pending = false;
            for peer in 0..self.out.len() {
                if peer == self.me || !matches!(self.out[peer], OutState::Up(_)) {
                    continue;
                }
                self.flush_link(peer);
                if matches!(self.out[peer], OutState::Up(_)) {
                    if let Some(link) = &self.shared.links[peer] {
                        if !link.q.lock().expect("link queue").frames.is_empty() {
                            pending = true;
                        }
                    }
                }
            }
            if !pending || Instant::now() >= deadline {
                break;
            }
            if self
                .shared
                .poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .is_err()
            {
                break;
            }
            let batch = std::mem::take(&mut events);
            for &ev in &batch {
                self.handle_event(ev);
            }
            events = batch;
        }
        // Senders still parked on backpressure must observe the shutdown.
        for link in self.shared.links.iter().flatten() {
            link.space.notify_all();
        }
        // FIN every outbound stream: peers read to EOF, losing nothing that
        // was flushed. Clearing the fd slots first keeps sever_link away
        // from descriptors about to be closed.
        for (peer, st) in self.out.iter().enumerate() {
            *self.shared.out_fds[peer].lock().expect("out fd lock") = None;
            if let OutState::Up(stream) = st {
                let _ = stream.shutdown(Shutdown::Write);
                self.shared.poller.deregister(stream.as_raw_fd());
            }
        }
        for conn in self.conns.iter().flatten() {
            self.shared.poller.deregister(conn.stream.as_raw_fd());
        }
        // Dropping `self` closes every socket; the Sender clone drops with
        // it, closing the inbox once the handle's self_tx is gone too.
    }
}

/// Pops fully written frames (and advances the partial head) of a stolen
/// write batch after a vectored write of `n` bytes, keeping the queue's
/// byte/depth accounting (which still covers stolen frames) in step and
/// signalling senders when space opens up.
fn advance_batch(
    shared: &Shared,
    link: &LinkShared,
    q: &mut LinkQueue,
    batch: &mut VecDeque<QueuedFrame>,
    mut n: usize,
) {
    while n > 0 {
        let f = batch.front_mut().expect("advanced past batch");
        let rem = f.len() - f.written;
        if n >= rem {
            n -= rem;
            let flen = f.len() as u64;
            q.bytes -= flen;
            link.depth.fetch_sub(1, Ordering::Relaxed);
            shared.pending_frames.fetch_sub(1, Ordering::Relaxed);
            shared.pending_bytes.fetch_sub(flen, Ordering::Relaxed);
            batch.pop_front();
        } else {
            f.written += n;
            n = 0;
        }
    }
    if q.bytes < MAX_LINK_PENDING_BYTES {
        link.space.notify_all();
    }
}

/// Reads and delivers every frame currently available on one inbound
/// connection: staging-buffer parsing for small frames, direct-to-lease
/// reads for payloads of [`DIRECT_READ_MIN`] bytes and up. Returns when the
/// socket would block; `Err` retires the connection.
fn service_inbound(conn: &mut InConn, shared: &Shared, tx: &Sender<Envelope>) -> Result<(), Close> {
    loop {
        // Finish an in-flight direct read first: the lease IS the payload.
        if let Some(d) = conn.direct.as_mut() {
            while d.have < d.lease.len() {
                match conn.stream.read(&mut d.lease[d.have..]) {
                    Ok(0) => return Err(Close::Benign), // died mid-frame
                    Ok(got) => d.have += got,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Err(Close::Benign),
                }
            }
            let d = conn.direct.take().expect("direct read present");
            deliver(conn.from_node, shared, tx, &d.header, d.lease.freeze())?;
            continue;
        }
        // Parse whole frames out of staging.
        while conn.end - conn.start >= FRAME_HEADER_BYTES {
            let hdr: [u8; FRAME_HEADER_BYTES] = conn.buf
                [conn.start..conn.start + FRAME_HEADER_BYTES]
                .try_into()
                .expect("header slice");
            let header = parse_header(&hdr).map_err(Close::Poison)?;
            let plen = header.payload_len;
            let body_start = conn.start + FRAME_HEADER_BYTES;
            let staged = conn.end - body_start;
            if plen >= DIRECT_READ_MIN {
                // Large payload: seed the lease with whatever is already
                // staged and read the rest straight off the socket. The
                // lease is dirty — every byte is overwritten by the staged
                // copy plus the direct reads before it can be delivered.
                let mut lease = BufPool::global().get_dirty(plen);
                let take = staged.min(plen);
                lease[..take].copy_from_slice(&conn.buf[body_start..body_start + take]);
                conn.start = body_start + take;
                if take == plen {
                    deliver(conn.from_node, shared, tx, &header, lease.freeze())?;
                    continue;
                }
                conn.direct = Some(DirectRead {
                    header,
                    lease,
                    have: take,
                });
                break;
            }
            if staged < plen {
                break; // await the rest of this small frame
            }
            let mut lease = BufPool::global().get_dirty(plen);
            lease.copy_from_slice(&conn.buf[body_start..body_start + plen]);
            conn.start = body_start + plen;
            deliver(conn.from_node, shared, tx, &header, lease.freeze())?;
        }
        if conn.direct.is_some() {
            continue;
        }
        // Compact the partial tail to the front and refill from the socket.
        // The refill is capped at [`REFILL_READ_BYTES`] so a large payload
        // queued behind this read lands mostly in its lease, not in staging.
        if conn.start > 0 {
            conn.buf.copy_within(conn.start..conn.end, 0);
            conn.end -= conn.start;
            conn.start = 0;
        }
        let cap = (conn.end + REFILL_READ_BYTES).min(conn.buf.len());
        match conn.stream.read(&mut conn.buf[conn.end..cap]) {
            // EOF: clean at a boundary, or the peer died mid-frame. The
            // partial tail is discarded; a reconnecting sender rewrites
            // whole frames, so no fragment survives. Benign either way.
            Ok(0) => return Err(Close::Benign),
            Ok(got) => conn.end += got,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(Close::Benign),
        }
    }
}

/// Assembles and delivers one frame into the endpoint's inbox.
fn deliver(
    from_node: usize,
    shared: &Shared,
    tx: &Sender<Envelope>,
    header: &FrameHeader,
    payload: Bytes,
) -> Result<(), Close> {
    let msg = assemble(header, payload);
    let queued = shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    shared.m_rx_queue_peak.set_max(queued);
    if telemetry::is_enabled() {
        telemetry::instant(
            "rx.frame",
            from_node as u64,
            (FRAME_HEADER_BYTES + header.payload_len) as u64,
        );
        telemetry::counter("rx.queue", from_node as u64, queued);
    }
    tx.send(Envelope {
        from: from_node,
        src: header.src as usize,
        seq: header.seq,
        epoch: header.epoch,
        msg,
    })
    .map_err(|_| Close::Benign) // local endpoint shut down first
}

/// Accepts the initial mesh: `expected` distinct peers, each through the
/// generation gate, until `deadline`.
fn accept_initial(
    listener: &TcpListener,
    me: usize,
    expected: usize,
    gate: &HelloGate,
    deadline: Instant,
) -> Result<Vec<(usize, TcpStream)>, TransportError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Handshake(format!("nonblocking accept: {e}")))?;
    let mut peers: Vec<(usize, TcpStream)> = Vec::with_capacity(expected);
    while peers.len() < expected {
        if Instant::now() >= deadline {
            return Err(TransportError::Handshake(format!(
                "endpoint {me}: accepted {} of {expected} peers before timeout",
                peers.len()
            )));
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| TransportError::Handshake(format!("blocking stream: {e}")))?;
                let hello = net::validate_hello(&mut stream, me)?;
                // A duplicate HELLO (dial race) is dropped; a newer
                // generation replaces the stale stream.
                if !gate.admit(hello) {
                    continue;
                }
                if let Some(slot) = peers.iter_mut().find(|(p, _)| *p == hello.peer) {
                    slot.1 = stream;
                } else {
                    peers.push((hello.peer, stream));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                return Err(TransportError::Handshake(format!("accept: {e}")));
            }
        }
    }
    Ok(peers)
}

/// The persistent acceptor: phase 1 collects the initial mesh and reports it
/// through `init_tx`; phase 2 keeps the door open for reconnects, pushing
/// each gated stream to the poller for adoption.
fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    init_tx: Sender<Result<Vec<(usize, TcpStream)>, TransportError>>,
    deadline: Instant,
) {
    let me = shared.me;
    telemetry::set_thread_track(format!("accept e{me}"));
    let expected = shared.spec.addrs.len() - 1;
    let initial = accept_initial(&listener, me, expected, &shared.gate, deadline);
    let ok = initial.is_ok();
    let _ = init_tx.send(initial);
    if !ok {
        return;
    }
    while !shared.down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // A malformed reconnect HELLO is dropped, not fatal: the
                // established mesh keeps running.
                let Ok(hello) = net::validate_hello(&mut stream, me) else {
                    continue;
                };
                if hello.peer >= shared.spec.node_of_endpoint.len() || !shared.gate.admit(hello) {
                    continue;
                }
                shared.reaccepts.fetch_add(1, Ordering::Relaxed);
                shared.m_reconnects.inc();
                telemetry::instant("reconnect.accept", hello.peer as u64, 0);
                shared
                    .adoptions
                    .lock()
                    .expect("adoptions lock")
                    .push((hello, stream));
                shared.dirty.store(true, Ordering::SeqCst);
                shared.poller.waker().wake();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::LAYER_GRANULAR_CHUNK;
    use std::net::SocketAddr;

    fn grad(iter: u64, payload: usize) -> Message {
        Message::GradChunk {
            iter,
            layer: 1,
            chunk: LAYER_GRANULAR_CHUNK,
            codec: crate::wire::Codec::Identity,
            data: Bytes::from(vec![7u8; payload]),
        }
    }

    fn quick_spec(addrs: Vec<SocketAddr>, node_of_endpoint: Vec<usize>) -> TcpFabricSpec {
        TcpFabricSpec {
            addrs,
            node_of_endpoint,
            connect_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            reconnect_timeout: Duration::from_secs(5),
        }
    }

    /// Builds an ephemeral-port fabric and runs `f(endpoint)` on one thread
    /// per endpoint, all sharing one ledger.
    fn with_fabric(
        node_of_endpoint: &[usize],
        f: impl Fn(TcpTransport) + Send + Sync,
    ) -> Arc<TrafficCounters> {
        let (listeners, addrs) =
            super::super::bind_ephemeral(node_of_endpoint.len()).expect("bind");
        let spec = quick_spec(addrs, node_of_endpoint.to_vec());
        let counters = Arc::new(TrafficCounters::new(spec.physical_nodes()));
        std::thread::scope(|s| {
            for (me, listener) in listeners.into_iter().enumerate() {
                let spec = spec.clone();
                let counters = Arc::clone(&counters);
                let f = &f;
                s.spawn(move || {
                    let ep =
                        TcpTransport::connect_with_listener(&spec, me, listener, Some(counters))
                            .expect("mesh");
                    f(ep);
                });
            }
        });
        counters
    }

    #[test]
    fn mesh_delivers_in_both_directions_and_counts_frames() {
        let counters = with_fabric(&[0, 1], |mut ep| {
            let other = 1 - ep.endpoint_id();
            ep.send(other, grad(ep.endpoint_id() as u64, 40)).unwrap();
            let env = ep.recv().unwrap();
            assert_eq!(env.from, other);
            assert_eq!(env.src, other, "src names the sending endpoint");
            assert_eq!(env.msg.iter(), other as u64);
            ep.shutdown().unwrap();
        });
        let frame = (FRAME_HEADER_BYTES + 40) as u64;
        assert_eq!(counters.tx_bytes(0), frame);
        assert_eq!(counters.tx_bytes(1), frame);
        assert_eq!(counters.total_bytes(), 2 * frame);
    }

    #[test]
    fn frames_keep_per_pair_order_under_load() {
        with_fabric(&[0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                for i in 0..500u64 {
                    ep.send(1, grad(i, (i % 97) as usize)).unwrap();
                }
            } else {
                for i in 0..500u64 {
                    let env = ep.recv().unwrap();
                    assert_eq!(env.msg.iter(), i, "reordered frame");
                }
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn large_payloads_take_the_direct_read_path_intact() {
        // 200 KiB payload: spans many staging buffers, exercising the
        // staged-prefix + direct-read reassembly and the pooled freeze.
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let want = payload.clone();
        with_fabric(&[0, 1], move |mut ep| {
            if ep.endpoint_id() == 0 {
                ep.send(
                    1,
                    Message::GradChunk {
                        iter: 1,
                        layer: 0,
                        chunk: 0,
                        codec: crate::wire::Codec::Identity,
                        data: Bytes::from(payload.clone()),
                    },
                )
                .unwrap();
            } else {
                let env = ep.recv_timeout(Duration::from_secs(10)).unwrap();
                let Message::GradChunk { data, .. } = env.msg else {
                    panic!("wrong variant");
                };
                assert_eq!(data.len(), want.len());
                assert_eq!(&data[..], &want[..], "payload corrupted in transit");
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn severed_link_reconnects_and_redelivers() {
        with_fabric(&[0, 1], |mut ep| {
            if ep.endpoint_id() == 0 {
                ep.send(1, grad(0, 32)).unwrap();
                // Kill our own outbound socket, then send again: the poller
                // must notice, redial, and rewrite queued frames whole.
                ep.sever_link(1).unwrap();
                ep.send(1, grad(1, 32)).unwrap();
                // Recovery is asynchronous (it lives on the poller thread).
                let deadline = Instant::now() + Duration::from_secs(10);
                while ep.reconnect_count() == 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
                assert_eq!(ep.reconnect_count(), 1, "exactly one reconnect");
            } else {
                let mut iters = Vec::new();
                while iters.len() < 2 {
                    let env = ep
                        .recv_timeout(Duration::from_secs(10))
                        .expect("both frames must arrive despite the sever");
                    iters.push(env.msg.iter());
                }
                iters.sort_unstable();
                assert_eq!(iters, vec![0, 1]);
                assert_eq!(ep.reaccept_count(), 1, "acceptor adopted the redial");
            }
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn recv_timeout_attaches_poller_context() {
        with_fabric(&[0, 1], |mut ep| {
            let err = ep.recv_timeout(Duration::from_millis(40)).unwrap_err();
            let TransportError::Timeout(diag) = err else {
                panic!("expected Timeout");
            };
            let p = diag
                .poller
                .expect("event-loop transport reports poller state");
            assert_eq!(p.pending_tx_frames, 0, "nothing was queued");
            assert_eq!(p.pending_tx_bytes, 0);
            ep.shutdown().unwrap();
        });
    }

    #[test]
    fn duplicate_hello_is_rejected_idempotently() {
        let (mut listeners, addrs) = super::super::bind_ephemeral(2).expect("bind");
        let spec = quick_spec(addrs, vec![0, 1]);
        let l1 = listeners.pop().unwrap();
        let l0 = listeners.pop().unwrap();
        std::thread::scope(|s| {
            let spec1 = spec.clone();
            let h1 = s.spawn(move || {
                TcpTransport::connect_with_listener(&spec1, 1, l1, None).expect("mesh")
            });
            let mut ep0 = TcpTransport::connect_with_listener(&spec, 0, l0, None).expect("mesh");
            let mut ep1 = h1.join().expect("endpoint 1");
            // Replay endpoint 0's original generation-1 dial: the gate has
            // already admitted that generation, so this HELLO must be
            // dropped without installing a second stream.
            let dup = net::dial_once(spec.addrs[1], 0, 1, Duration::from_secs(1)).expect("dial");
            let deadline = Instant::now() + Duration::from_secs(5);
            while ep1.dup_hello_count() == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(ep1.dup_hello_count(), 1, "stale HELLO counted and dropped");
            assert_eq!(ep1.reaccept_count(), 0, "no adoption for a duplicate");
            // The mesh still works, and nothing is delivered twice.
            ep0.send(1, grad(5, 16)).unwrap();
            let env = ep1.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(env.msg.iter(), 5);
            assert!(ep1.try_recv().unwrap().is_none(), "no duplicate delivery");
            drop(dup);
            ep0.shutdown().unwrap();
            ep1.shutdown().unwrap();
        });
    }

    #[test]
    fn connect_times_out_without_peers() {
        let (listeners, addrs) = super::super::bind_ephemeral(2).expect("bind");
        let mut spec = quick_spec(addrs, vec![0, 1]);
        spec.connect_timeout = Duration::from_millis(200);
        // Endpoint 1 never shows up.
        drop(listeners);
        let l = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        spec.addrs[0] = l.local_addr().unwrap();
        let err = match TcpTransport::connect_with_listener(&spec, 0, l, None) {
            Ok(_) => panic!("mesh connect must fail without peers"),
            Err(e) => e,
        };
        assert!(matches!(err, TransportError::Handshake(_)), "{err:?}");
    }
}
