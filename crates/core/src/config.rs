//! Cluster, scheme and scheduling configuration shared by both backends.

pub use poseidon_netsim::Topology;
pub use poseidon_tensor::compress::Codec;

/// How one layer's parameters are synchronised.
///
/// Gradient *compression* is deliberately not a scheme: it is an orthogonal
/// [`Codec`] picked per layer by the [`CodecPolicy`], composable with PS and
/// the collectives (the CNTK-style 1-bit baseline is `Ps` + `Codec::OneBit`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommScheme {
    /// Sharded parameter server: push dense gradients, pull dense parameters.
    Ps,
    /// Sufficient-factor broadcasting: P2P broadcast of `(u, v)` factor pairs,
    /// dense gradient reconstructed at every worker.
    Sfb,
    /// Project Adam's strategy: push factors to the owning server shard, pull
    /// the dense parameter matrix back (load-imbalanced; baseline).
    AdamSf,
    /// Ring allreduce: scaled gradient contributions accumulate around an
    /// id-ordered worker chain, then the folded update distributes the other
    /// way — no server traffic, ≈2 tensor transits per NIC.
    Ring,
    /// Tree allreduce: contributions gather up a binary worker tree to the
    /// root, which folds them in worker-id order and broadcasts the update
    /// back down — logarithmic hop depth (FireCaffe's reduction tree).
    Tree,
}

impl std::fmt::Display for CommScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CommScheme::Ps => "PS",
            CommScheme::Sfb => "SFB",
            CommScheme::AdamSf => "AdamSF",
            CommScheme::Ring => "Ring",
            CommScheme::Tree => "Tree",
        };
        write!(f, "{s}")
    }
}

/// Policy mapping layers to gradient-compression codecs, orthogonal to the
/// [`SchemePolicy`]. SFB/Adam layers always ride identity — sufficient
/// factors *are* the compression — and the coordinator enforces that.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum CodecPolicy {
    /// Raw f32 everywhere — bitwise identical to the pre-codec wire.
    #[default]
    Identity,
    /// One codec for every codec-capable (PS/ring/tree) layer.
    Always(Codec),
    /// Per-layer (scheme × codec) choice from the cost model: compress when
    /// the bytes saved outweigh the encode/decode compute at the modelled
    /// bandwidth ([`crate::costmodel::best_codec_topo`]).
    CostAware,
}

/// Policy mapping layers to schemes.
///
/// Not `Eq`: [`SchemePolicy::TopoAware`] carries floating-point link
/// parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchemePolicy {
    /// Everything via the parameter server (the WFBP-only baselines).
    AlwaysPs,
    /// The paper's HybComm: per-layer `BestScheme` (Algorithm 1) — SFB for an
    /// FC layer when its analytic byte cost is lower, PS otherwise.
    Hybrid,
    /// Force SFB for every FC layer regardless of cost (ablation).
    AlwaysSfbForFc,
    /// Project Adam's SF-push / matrix-pull for FC layers (baseline).
    AdamSf,
    /// The CNTK-style baseline: PS everywhere with [`Codec::OneBit`] on FC
    /// layers (shorthand for `AlwaysPs` + a codec policy; kept as a named
    /// policy so profiles and CLIs can ask for the baseline by name).
    OneBit,
    /// Ring allreduce for every trainable layer (ablation / collectives).
    AlwaysRing,
    /// Tree allreduce for every trainable layer (ablation / collectives).
    AlwaysTree,
    /// Generalised HybComm: price PS, SFB, ring and tree per layer against a
    /// hierarchical topology and pick the cheapest
    /// ([`crate::costmodel::best_scheme_topo`]).
    TopoAware(Topology),
}

/// The consistency model coordinating workers across iterations.
///
/// The paper focuses on synchronous (BSP) training but notes that "Poseidon's
/// design can easily be applied to asynchronous or bounded-asynchronous
/// consistency models [12, 8]" — [`Consistency::Ssp`] is that extension: the
/// stale-synchronous-parallel model of Ho et al., where a worker may run at
/// most `staleness` iterations ahead of the slowest worker and the parameter
/// server applies updates eagerly instead of barriering per KV pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// Bulk-synchronous parallel: per-KV-pair update counts, a full barrier
    /// every iteration (the paper's evaluation mode).
    Bsp,
    /// Stale-synchronous parallel with the given staleness bound
    /// (`staleness = 0` is lockstep iterations with eager, unordered applies).
    Ssp {
        /// Maximum iterations any worker may lead the slowest worker by.
        staleness: usize,
    },
}

/// When layer synchronisation is allowed to start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Synchronise after the whole backward pass (vanilla PS parallelisation;
    /// `Ct` and `St` strictly alternate).
    Sequential,
    /// Wait-free backpropagation: layer `l`'s sync starts as soon as `bˡ`
    /// completes, overlapping with `bⁱ (i < l)`.
    Wfbp,
}

/// How parameters are partitioned across server shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// Poseidon's fixed-size KV pairs spread round-robin over shards
    /// (default 2 MB, i.e. 512Ki f32 values per pair).
    KvPairs {
        /// KV-pair payload size in f32 elements.
        pair_elems: usize,
    },
    /// TensorFlow-style coarse granularity: each tensor lives wholly on one
    /// shard (round-robin by layer) — the hot-spot baseline of Figure 7.
    WholeTensor,
}

impl Partition {
    /// Poseidon's default 2 MB KV pairs.
    pub fn default_kv_pairs() -> Self {
        Partition::KvPairs {
            pair_elems: 512 * 1024,
        }
    }
}

/// Compute-thread budget for the batch-parallel layer kernels
/// (`poseidon_nn::parallel`).
///
/// The threaded runtime divides the budget evenly across its worker threads
/// (`max(1, total / workers)`) so worker-level and batch-level parallelism
/// compose without oversubscribing the machine. A budget of 1 per worker
/// runs the legacy single-threaded kernels. Thread count never changes
/// results: layer kernels are bitwise thread-count independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ComputeConfig {
    /// Resolve from the `POSEIDON_THREADS` environment variable if set to a
    /// positive integer, else `std::thread::available_parallelism()`.
    #[default]
    Auto,
    /// A fixed total compute-thread budget for the run.
    Fixed(usize),
}

impl ComputeConfig {
    /// The total compute-thread budget this config resolves to (≥ 1).
    pub fn total_threads(&self) -> usize {
        match *self {
            ComputeConfig::Auto => poseidon_nn::parallel::compute_threads(),
            ComputeConfig::Fixed(n) => n.max(1),
        }
    }

    /// The per-worker share of the budget when `workers` runtime workers
    /// compute concurrently.
    pub fn threads_per_worker(&self, workers: usize) -> usize {
        (self.total_threads() / workers.max(1)).max(1)
    }
}

/// Cluster topology parameters used by the cost model (Table 1's `P1`, `P2`,
/// `K`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of worker nodes (`P1`).
    pub workers: usize,
    /// Number of server shards (`P2`).
    pub servers: usize,
    /// Per-worker minibatch size (`K`).
    pub batch_per_worker: usize,
    /// `true` when every node is both a worker and a server (the paper's
    /// deployment); synchronising a node's own shard is then free.
    pub colocated: bool,
}

impl ClusterConfig {
    /// The paper's standard deployment: every one of `nodes` machines is both
    /// a worker and a PS shard.
    pub fn colocated(nodes: usize, batch_per_worker: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        Self {
            workers: nodes,
            servers: nodes,
            batch_per_worker,
            colocated: true,
        }
    }

    /// Total nodes participating (max of the two roles when colocated).
    pub fn nodes(&self) -> usize {
        if self.colocated {
            self.workers.max(self.servers)
        } else {
            self.workers + self.servers
        }
    }

    /// Aggregate minibatch per iteration (`K · P1`).
    pub fn global_batch(&self) -> usize {
        self.batch_per_worker * self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocated_cluster_counts_nodes_once() {
        let c = ClusterConfig::colocated(8, 32);
        assert_eq!(c.nodes(), 8);
        assert_eq!(c.workers, 8);
        assert_eq!(c.servers, 8);
        assert_eq!(c.global_batch(), 256);
        assert!(c.colocated);
    }

    #[test]
    fn disjoint_cluster_sums_roles() {
        let c = ClusterConfig {
            workers: 8,
            servers: 4,
            batch_per_worker: 16,
            colocated: false,
        };
        assert_eq!(c.nodes(), 12);
    }

    #[test]
    fn default_kv_pair_is_two_megabytes() {
        match Partition::default_kv_pairs() {
            Partition::KvPairs { pair_elems } => assert_eq!(pair_elems * 4, 2 * 1024 * 1024),
            Partition::WholeTensor => panic!("wrong default"),
        }
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(CommScheme::Ps.to_string(), "PS");
        assert_eq!(CommScheme::Sfb.to_string(), "SFB");
        assert_eq!(CommScheme::AdamSf.to_string(), "AdamSF");
        assert_eq!(CommScheme::Ring.to_string(), "Ring");
        assert_eq!(CommScheme::Tree.to_string(), "Tree");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_rejected() {
        let _ = ClusterConfig::colocated(0, 32);
    }

    #[test]
    fn fixed_compute_budget_divides_across_workers() {
        let c = ComputeConfig::Fixed(8);
        assert_eq!(c.total_threads(), 8);
        assert_eq!(c.threads_per_worker(1), 8);
        assert_eq!(c.threads_per_worker(2), 4);
        assert_eq!(c.threads_per_worker(3), 2);
        assert_eq!(c.threads_per_worker(16), 1, "floor of one thread");
        assert_eq!(ComputeConfig::Fixed(0).total_threads(), 1, "clamped to one");
    }

    #[test]
    fn auto_compute_budget_is_positive() {
        assert!(ComputeConfig::Auto.total_threads() >= 1);
        assert!(ComputeConfig::default().threads_per_worker(4) >= 1);
        assert_eq!(ComputeConfig::default(), ComputeConfig::Auto);
    }
}
