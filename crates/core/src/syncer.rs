//! Per-layer syncers: the client-library state machine of Section 4.1.
//!
//! "The client library will create a syncer for each NN layer during network
//! assembling (so that each layer one-to-one maps to one syncer), accounting
//! for its parameter synchronisation." A syncer's life per iteration is
//! `Move(GPU→CPU) → Send → Receive → Move(CPU→GPU)`; in this in-process
//! runtime the two `Move`s become gradient flattening and parameter
//! application, and `Send`/`Receive` are tracked here so the worker knows
//! when the layer is fully synchronised (the entry in the client's completion
//! vector `C`).
//!
//! This module is pure bookkeeping — no I/O — so it is exhaustively unit
//! tested; the [`crate::runtime`] threads drive it with real messages.

use crate::chunk::Chunk;
use crate::config::{Codec, CommScheme};
use crate::wire::{self, CodecError, COLLECTIVE_DISTRIBUTE, COLLECTIVE_REDUCE};
use bytes::Bytes;
use poseidon_nn::ParamBlock;
use poseidon_tensor::compress::{decompress, make_compressor, Compressor};
use poseidon_tensor::{Matrix, SfBatch};

/// What a completed syncer hands back to the worker's `Move(CPU→GPU)` step.
#[derive(Debug)]
pub enum SyncOutcome {
    /// Fresh parameters from the parameter server (flattened weights ++ bias);
    /// overwrite the replica's parameters.
    FreshParams(Vec<f32>),
    /// A pre-scaled parameter *delta* (flattened weights ++ bias); add it to
    /// the replica's parameters. Used by the collectives and by every lossy
    /// codec's PS path, where the server broadcasts the (compressed)
    /// aggregated update rather than dense parameters (Seide et al.'s double
    /// quantization, generalised to any [`Codec`]).
    ApplyDelta(Vec<f32>),
    /// All workers' sufficient-factor batches in worker-id order (including
    /// our own); reconstruct and apply `scale · Σ` locally.
    SfApply(Vec<SfBatch>),
}

/// A syncer's persistent cross-iteration state, exported at an iteration
/// boundary for checkpoint/restore.
///
/// Everything here survives iterations: the collective schemes' client-side
/// velocity replicas and every error-feedback compressor residual. A syncer
/// rebuilt from this state compresses and folds bitwise-identically to one
/// that never stopped. `None` entries mean "not yet materialised" (a lazily
/// created compressor that never ran, a velocity segment before its first
/// fold).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyncerState {
    /// Per-segment collective velocity replicas.
    pub velocity: Vec<Option<Vec<f32>>>,
    /// Per-chunk PS push-compressor residuals.
    pub push_residuals: Vec<Option<Vec<f32>>>,
    /// Per-segment collective hop-compressor residuals.
    pub seg_residuals: Vec<Option<Vec<f32>>>,
}

/// One collective frame for the runtime to transmit: `data` travels to worker
/// `to_worker` as a [`crate::transport::Message::Collective`] with the packed
/// `route` (phase ⊕ origin ⊕ segment, [`crate::wire::pack_collective`]).
#[derive(Debug, Clone)]
pub struct CollectiveSend {
    /// Destination worker id (== its transport endpoint under the runtimes'
    /// worker-first endpoint numbering).
    pub to_worker: usize,
    /// Packed collective route.
    pub route: u32,
    /// Wire payload: the segment's little-endian f32 values.
    pub data: Bytes,
}

/// Per-layer synchronisation state for one worker.
#[derive(Debug)]
pub struct Syncer {
    layer: usize,
    scheme: CommScheme,
    param_elems: usize,
    /// Offset-ordered chunks of this layer (PS/1-bit paths).
    chunks: Vec<Chunk>,
    workers: usize,
    me: usize,
    // --- per-iteration state ---
    received_chunks: Vec<Option<Vec<f32>>>,
    received_matrix: Option<Vec<f32>>,
    own_sf: Option<SfBatch>,
    peer_sf: Vec<Option<SfBatch>>,
    // --- collective (ring/tree) state ---
    /// Momentum coefficient µ replicated client-side; must match the PS
    /// shards' for bitwise parity across schemes.
    momentum: f32,
    /// Offset-ordered `(offset, len)` segments for the collective schemes:
    /// the layer's KV chunks, or one whole-layer segment when it has none.
    segs: Vec<(usize, usize)>,
    /// Per-segment scaled velocity `v` — the client-side replica of the PS
    /// shard's velocity buffer. Persistent across iterations.
    velocity: Vec<Option<Vec<f32>>>,
    /// Per-segment own scaled contribution `c_me = scale·g_me` this iteration.
    own_contrib: Vec<Option<Vec<f32>>>,
    /// Per-segment completion flag this iteration.
    seg_done: Vec<bool>,
    /// Tree root only: decoded origin-tagged contributions, `[seg][origin]`.
    gathered: Vec<Vec<Option<Vec<f32>>>>,
    // --- compression plane ---
    /// This layer's gradient codec (identity = the bitwise-exact f32 wire).
    codec: Codec,
    /// Per-chunk push compressors (error-feedback state), PS path. Lazily
    /// created; `None` until the chunk first compresses.
    push_comp: Vec<Option<Box<dyn Compressor>>>,
    /// Per-segment hop compressors (error-feedback state), collective path.
    seg_comp: Vec<Option<Box<dyn Compressor>>>,
}

impl Syncer {
    /// Creates the syncer for `layer` under `scheme`.
    ///
    /// `chunks` must be the layer's offset-ordered KV pairs (may be empty for
    /// pure SFB/Adam/1-bit layers); `param_elems` the layer's flattened
    /// parameter count; `me` this worker's id out of `workers`.
    pub fn new(
        layer: usize,
        scheme: CommScheme,
        chunks: Vec<Chunk>,
        param_elems: usize,
        workers: usize,
        me: usize,
    ) -> Self {
        assert!(me < workers, "worker id out of range");
        let n_chunks = chunks.len();
        let collective = matches!(scheme, CommScheme::Ring | CommScheme::Tree);
        let segs: Vec<(usize, usize)> = if collective {
            if chunks.is_empty() {
                vec![(0, param_elems)]
            } else {
                let mut expect = 0usize;
                let segs = chunks
                    .iter()
                    .map(|c| {
                        assert_eq!(c.offset, expect, "collective segments must tile the layer");
                        expect += c.len;
                        (c.offset, c.len)
                    })
                    .collect();
                assert_eq!(
                    expect, param_elems,
                    "collective segments must cover the layer"
                );
                segs
            }
        } else {
            Vec::new()
        };
        let n_segs = segs.len();
        Self {
            layer,
            scheme,
            param_elems,
            chunks,
            workers,
            me,
            received_chunks: vec![None; n_chunks],
            received_matrix: None,
            own_sf: None,
            peer_sf: vec![None; workers],
            momentum: 0.0,
            velocity: vec![None; n_segs],
            own_contrib: vec![None; n_segs],
            seg_done: vec![false; n_segs],
            gathered: if matches!(scheme, CommScheme::Tree) && me == 0 {
                vec![vec![None; workers]; n_segs]
            } else {
                Vec::new()
            },
            codec: Codec::Identity,
            push_comp: (0..n_chunks).map(|_| None).collect(),
            seg_comp: (0..n_segs).map(|_| None).collect(),
            segs,
        }
    }

    /// Sets the momentum coefficient µ the collective schemes replicate
    /// client-side (must equal the PS shards' µ for bitwise parity across
    /// schemes). Builder-style so non-collective call sites stay untouched.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Sets this layer's gradient codec (builder-style; the default identity
    /// keeps the pre-codec f32 wire bitwise intact). Factor schemes (SFB /
    /// Adam) reject lossy codecs — the factors *are* the compression.
    pub fn with_codec(mut self, codec: Codec) -> Self {
        assert!(
            codec == Codec::Identity
                || !matches!(self.scheme, CommScheme::Sfb | CommScheme::AdamSf),
            "layer {}: {} cannot ride codec {codec}",
            self.layer,
            self.scheme
        );
        self.codec = codec;
        self
    }

    /// This layer's gradient codec.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Encodes one PS push chunk with this layer's codec, keeping per-chunk
    /// error-feedback state across iterations. Identity takes the pooled
    /// bitwise-exact path.
    pub fn encode_push(&mut self, chunk_idx: usize, vals: &[f32]) -> Bytes {
        if self.codec == Codec::Identity {
            return wire::encode_f32s_pooled(vals);
        }
        let comp = self.push_comp[chunk_idx]
            .get_or_insert_with(|| make_compressor(self.codec, vals.len()));
        comp.compress(vals)
    }

    /// Compresses one collective segment's values with the per-segment
    /// error-feedback compressor.
    fn seg_compress(&mut self, seg: usize, vals: &[f32]) -> Bytes {
        if self.codec == Codec::Identity {
            return wire::encode_f32s_pooled(vals);
        }
        let comp =
            self.seg_comp[seg].get_or_insert_with(|| make_compressor(self.codec, vals.len()));
        comp.compress(vals)
    }

    /// Exports the persistent cross-iteration state (velocity replicas and
    /// compressor residuals) at an iteration boundary.
    pub fn export_state(&self) -> SyncerState {
        SyncerState {
            velocity: self.velocity.clone(),
            push_residuals: self
                .push_comp
                .iter()
                .map(|c| c.as_ref().map(|c| c.residual()))
                .collect(),
            seg_residuals: self
                .seg_comp
                .iter()
                .map(|c| c.as_ref().map(|c| c.residual()))
                .collect(),
        }
    }

    /// Restores state exported by [`Self::export_state`] into a freshly
    /// constructed syncer (same layer, scheme, chunks and codec). Compressors
    /// are re-materialised only where the exported state had them, so the
    /// lazy-creation pattern — and with it the bitwise byte stream — is
    /// preserved.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape does not match this syncer's chunk and
    /// segment layout.
    pub fn import_state(&mut self, st: SyncerState) {
        assert_eq!(
            st.velocity.len(),
            self.velocity.len(),
            "layer {}: velocity segment count mismatch",
            self.layer
        );
        for (seg, v) in st.velocity.iter().enumerate() {
            if let Some(v) = v {
                assert_eq!(v.len(), self.segs[seg].1, "velocity segment length");
            }
        }
        self.velocity = st.velocity;
        assert_eq!(
            st.push_residuals.len(),
            self.push_comp.len(),
            "layer {}: push compressor count mismatch",
            self.layer
        );
        for (idx, r) in st.push_residuals.into_iter().enumerate() {
            self.push_comp[idx] = r.map(|res| {
                let mut comp = make_compressor(self.codec, self.chunks[idx].len);
                comp.set_residual(&res);
                comp
            });
        }
        assert_eq!(
            st.seg_residuals.len(),
            self.seg_comp.len(),
            "layer {}: segment compressor count mismatch",
            self.layer
        );
        for (seg, r) in st.seg_residuals.into_iter().enumerate() {
            self.seg_comp[seg] = r.map(|res| {
                let mut comp = make_compressor(self.codec, self.segs[seg].1);
                comp.set_residual(&res);
                comp
            });
        }
    }

    /// The layer this syncer serves.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// The communication scheme in force.
    pub fn scheme(&self) -> CommScheme {
        self.scheme
    }

    /// The layer's KV pairs.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Resets the per-iteration state (the completion-vector entry goes back
    /// to 0).
    pub fn begin_iteration(&mut self) {
        for c in &mut self.received_chunks {
            *c = None;
        }
        self.received_matrix = None;
        self.own_sf = None;
        for p in &mut self.peer_sf {
            *p = None;
        }
        // Collective per-iteration state only — the velocity is the optimiser
        // state and lives across iterations (next round's µ·v).
        for c in &mut self.own_contrib {
            *c = None;
        }
        for d in &mut self.seg_done {
            *d = false;
        }
        for seg in &mut self.gathered {
            for o in seg {
                *o = None;
            }
        }
    }

    /// Children of `w` in the binary worker tree rooted at worker 0.
    fn tree_children(&self, w: usize) -> impl Iterator<Item = usize> {
        let p = self.workers;
        [2 * w + 1, 2 * w + 2].into_iter().filter(move |&c| c < p)
    }

    /// Records this worker's scaled gradient contribution `c = scale·g`
    /// (flattened `weights ++ bias`) at `Send` time and returns the collective
    /// frames to transmit: ring worker 0 seeds each segment's chain with
    /// `µ·v + c₀` (the exact PS fold prefix), tree non-roots push their
    /// origin-tagged contribution towards the root.
    pub fn set_collective_grad(&mut self, scaled: Vec<f32>) -> Vec<CollectiveSend> {
        assert!(
            matches!(self.scheme, CommScheme::Ring | CommScheme::Tree),
            "layer {}: set_collective_grad under {}",
            self.layer,
            self.scheme
        );
        assert!(
            self.workers > 1,
            "collective schemes need at least two workers"
        );
        assert_eq!(
            scaled.len(),
            self.param_elems,
            "scaled gradient length mismatch"
        );
        let mut out = Vec::new();
        match (self.scheme, self.me) {
            (CommScheme::Ring, 0) => {
                for seg in 0..self.segs.len() {
                    let (off, len) = self.segs[seg];
                    // Seed `t = µ·v` (exact zeros when µ = 0 or before the
                    // first fold — the shard's `velocity.fill(0.0)`), then
                    // `t += c₀`: the same f32 op sequence the shard runs, so
                    // every rounding matches bitwise. Never assign `c₀`
                    // directly — `0.0 + (-0.0)` is `+0.0`, assignment isn't.
                    let mut t = vec![0.0f32; len];
                    if self.momentum != 0.0 {
                        if let Some(v) = &self.velocity[seg] {
                            for (t, v) in t.iter_mut().zip(v) {
                                *t = self.momentum * v;
                            }
                        }
                    }
                    for (t, c) in t.iter_mut().zip(&scaled[off..off + len]) {
                        *t += c;
                    }
                    let data = self.seg_compress(seg, &t);
                    out.push(CollectiveSend {
                        to_worker: 1,
                        route: wire::pack_collective(COLLECTIVE_REDUCE, 0, seg),
                        data,
                    });
                }
            }
            (CommScheme::Ring, _) => {
                for (seg, &(off, len)) in self.segs.iter().enumerate() {
                    self.own_contrib[seg] = Some(scaled[off..off + len].to_vec());
                }
            }
            (CommScheme::Tree, 0) => {
                for (seg, &(off, len)) in self.segs.iter().enumerate() {
                    self.own_contrib[seg] = Some(scaled[off..off + len].to_vec());
                }
                for seg in 0..self.segs.len() {
                    self.try_fold_root(seg, &mut out);
                }
            }
            (CommScheme::Tree, me) => {
                let parent = (me - 1) / 2;
                for seg in 0..self.segs.len() {
                    let (off, len) = self.segs[seg];
                    let data = self.seg_compress(seg, &scaled[off..off + len]);
                    out.push(CollectiveSend {
                        to_worker: parent,
                        route: wire::pack_collective(COLLECTIVE_REDUCE, me, seg),
                        data,
                    });
                }
            }
            _ => unreachable!(),
        }
        out
    }

    /// Handles a collective (ring/tree) frame, returning frames to forward.
    ///
    /// Under a lossy codec each ring hop decompresses the incoming partial,
    /// adds its own contribution and recompresses with its per-segment
    /// error-feedback state; the chain's terminal stores the decode of its
    /// *own* encoding so every replica ends on the same bytes. Identity keeps
    /// the fused pooled-add fast path, bitwise identical to the pre-codec
    /// wire.
    ///
    /// # Errors
    ///
    /// Returns the [`CodecError`] of a payload that fails to decode (a
    /// poisoned frame); the segment stays incomplete and the caller decides
    /// whether to count and drop or abort.
    ///
    /// # Panics
    ///
    /// Panics on a protocol violation: wrong sender for the route, duplicate
    /// segment, length mismatch, or a ring REDUCE arriving before this
    /// worker's own backward produced its contribution (the runtimes drive
    /// the whole backward pass before draining receives, so that is a bug,
    /// not a race).
    pub fn on_collective(
        &mut self,
        from_worker: usize,
        route: u32,
        payload: Bytes,
    ) -> Result<Vec<CollectiveSend>, CodecError> {
        assert!(
            matches!(self.scheme, CommScheme::Ring | CommScheme::Tree),
            "layer {}: unexpected collective frame under {}",
            self.layer,
            self.scheme
        );
        let (phase, origin, seg) = wire::unpack_collective(route);
        assert!(
            seg < self.segs.len(),
            "collective segment {seg} out of range"
        );
        let (_, len) = self.segs[seg];
        if self.codec == Codec::Identity {
            assert_eq!(payload.len(), len * 4, "collective payload length mismatch");
        }
        let mut out = Vec::new();
        match (self.scheme, phase) {
            (CommScheme::Ring, COLLECTIVE_REDUCE) => {
                assert_ne!(self.me, 0, "worker 0 never receives ring REDUCE");
                assert_eq!(
                    from_worker,
                    self.me - 1,
                    "ring REDUCE from wrong predecessor"
                );
                assert_eq!(origin, 0, "ring frames originate at worker 0");
                assert!(
                    !self.seg_done[seg],
                    "duplicate ring REDUCE for segment {seg}"
                );
                if self.codec == Codec::Identity {
                    let own = self.own_contrib[seg].take().unwrap_or_else(|| {
                        panic!("ring REDUCE for segment {seg} before local backward")
                    });
                    // Fused `partial += c_me` straight on the wire payload
                    // into a pooled buffer — no decode/encode round-trip per
                    // hop.
                    let summed =
                        wire::add_f32s_pooled(&payload, &own).expect("length checked above");
                    if self.me == self.workers - 1 {
                        // Chain complete: `summed` is the new velocity. Store
                        // it and originate the DISTRIBUTE pass the other way.
                        self.velocity[seg] = Some(wire::decode_f32s(&summed).expect("aligned"));
                        self.seg_done[seg] = true;
                        out.push(CollectiveSend {
                            to_worker: (self.me + 1) % self.workers,
                            route: wire::pack_collective(COLLECTIVE_DISTRIBUTE, 0, seg),
                            data: summed,
                        });
                    } else {
                        out.push(CollectiveSend {
                            to_worker: self.me + 1,
                            route,
                            data: summed,
                        });
                    }
                } else {
                    // Decompress–add–recompress: validate *before* consuming
                    // the contribution so a poisoned frame leaves the round
                    // resumable.
                    let mut summed = decompress(self.codec, &payload, len)?;
                    let own = self.own_contrib[seg].take().unwrap_or_else(|| {
                        panic!("ring REDUCE for segment {seg} before local backward")
                    });
                    for (s, c) in summed.iter_mut().zip(&own) {
                        *s += c;
                    }
                    let data = self.seg_compress(seg, &summed);
                    if self.me == self.workers - 1 {
                        // The terminal's velocity is the decode of its own
                        // encoding — the exact values every other replica
                        // will decode from the DISTRIBUTE pass.
                        self.velocity[seg] =
                            Some(decompress(self.codec, &data, len).expect("own encoding"));
                        self.seg_done[seg] = true;
                        out.push(CollectiveSend {
                            to_worker: (self.me + 1) % self.workers,
                            route: wire::pack_collective(COLLECTIVE_DISTRIBUTE, 0, seg),
                            data,
                        });
                    } else {
                        out.push(CollectiveSend {
                            to_worker: self.me + 1,
                            route,
                            data,
                        });
                    }
                }
            }
            (CommScheme::Ring, COLLECTIVE_DISTRIBUTE) => {
                let last = self.workers - 1;
                assert_ne!(self.me, last, "the last worker originates DISTRIBUTE");
                let expect_from = if self.me == 0 { last } else { self.me - 1 };
                assert_eq!(
                    from_worker, expect_from,
                    "ring DISTRIBUTE from wrong predecessor"
                );
                assert!(
                    !self.seg_done[seg],
                    "duplicate ring DISTRIBUTE for segment {seg}"
                );
                self.velocity[seg] = Some(decompress(self.codec, &payload, len)?);
                self.seg_done[seg] = true;
                let next = self.me + 1;
                if next != last {
                    // Forward the folded velocity unchanged (shared `Bytes`,
                    // no copy); the chain stops just before its originator.
                    out.push(CollectiveSend {
                        to_worker: next,
                        route,
                        data: payload,
                    });
                }
            }
            (CommScheme::Tree, COLLECTIVE_REDUCE) => {
                assert!(
                    origin > 0 && origin < self.workers,
                    "bad tree origin {origin}"
                );
                if self.me == 0 {
                    assert!(
                        self.gathered[seg][origin].is_none(),
                        "duplicate tree contribution from origin {origin}"
                    );
                    // Decode on arrival so a poisoned frame surfaces here,
                    // before the fold consumes any sibling state.
                    self.gathered[seg][origin] = Some(decompress(self.codec, &payload, len)?);
                    self.try_fold_root(seg, &mut out);
                } else {
                    // Interior node: relay the origin-tagged frame unchanged
                    // towards the root (shared `Bytes`, no copy).
                    out.push(CollectiveSend {
                        to_worker: (self.me - 1) / 2,
                        route,
                        data: payload,
                    });
                }
            }
            (CommScheme::Tree, COLLECTIVE_DISTRIBUTE) => {
                assert_ne!(self.me, 0, "the root originates tree DISTRIBUTE");
                assert_eq!(
                    from_worker,
                    (self.me - 1) / 2,
                    "tree DISTRIBUTE from non-parent"
                );
                assert!(
                    !self.seg_done[seg],
                    "duplicate tree DISTRIBUTE for segment {seg}"
                );
                self.velocity[seg] = Some(decompress(self.codec, &payload, len)?);
                self.seg_done[seg] = true;
                for child in self.tree_children(self.me) {
                    out.push(CollectiveSend {
                        to_worker: child,
                        route,
                        data: payload.clone(),
                    });
                }
            }
            _ => unreachable!("unknown collective phase {phase}"),
        }
        Ok(out)
    }

    /// Root-side tree fold: once every origin's contribution and our own are
    /// in for `seg`, replay the shard's exact fold (`v ← µ·v` or zeros, then
    /// `v += c_w` in worker-id order) and broadcast the new velocity down.
    fn try_fold_root(&mut self, seg: usize, out: &mut Vec<CollectiveSend>) {
        debug_assert_eq!(self.me, 0, "only the root folds");
        if self.seg_done[seg]
            || self.own_contrib[seg].is_none()
            || (1..self.workers).any(|o| self.gathered[seg][o].is_none())
        {
            return;
        }
        let (_, len) = self.segs[seg];
        let mut t = vec![0.0f32; len];
        if self.momentum != 0.0 {
            if let Some(v) = &self.velocity[seg] {
                for (t, v) in t.iter_mut().zip(v) {
                    *t = self.momentum * v;
                }
            }
        }
        let own = self.own_contrib[seg].take().expect("checked above");
        for (t, c) in t.iter_mut().zip(&own) {
            *t += c;
        }
        for origin in 1..self.workers {
            let b = self.gathered[seg][origin].take().expect("checked above");
            for (t, src) in t.iter_mut().zip(&b) {
                *t += src;
            }
        }
        let data = self.seg_compress(seg, &t);
        // Under a lossy codec the root, like every other replica, applies
        // what the wire carries — the decode of its own encoding — so all
        // replicas stay bitwise identical.
        self.velocity[seg] = if self.codec == Codec::Identity {
            Some(t)
        } else {
            let (_, len) = self.segs[seg];
            Some(decompress(self.codec, &data, len).expect("own encoding"))
        };
        self.seg_done[seg] = true;
        for child in self.tree_children(0) {
            out.push(CollectiveSend {
                to_worker: child,
                route: wire::pack_collective(COLLECTIVE_DISTRIBUTE, 0, seg),
                data: data.clone(),
            });
        }
    }

    /// Records our own sufficient-factor batch at `Send` time (SFB includes
    /// the local contribution when reconstructing).
    pub fn set_own_sf(&mut self, batch: SfBatch) {
        assert!(
            matches!(self.scheme, CommScheme::Sfb),
            "own SF only meaningful for SFB"
        );
        self.own_sf = Some(batch);
    }

    /// Handles a fresh parameter chunk from a PS shard. `chunk_idx` is the
    /// chunk's index within this layer.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index, a length mismatch, or a duplicate.
    pub fn on_param_chunk(&mut self, chunk_idx: usize, values: Vec<f32>) {
        assert!(
            matches!(self.scheme, CommScheme::Ps),
            "layer {} ({}): unexpected param chunk",
            self.layer,
            self.scheme
        );
        let chunk = &self.chunks[chunk_idx];
        assert_eq!(values.len(), chunk.len, "chunk length mismatch");
        assert!(
            self.received_chunks[chunk_idx].is_none(),
            "duplicate chunk {chunk_idx} for layer {}",
            self.layer
        );
        self.received_chunks[chunk_idx] = Some(values);
    }

    /// Handles a dense parameter matrix (Adam pull).
    pub fn on_param_matrix(&mut self, values: Vec<f32>) {
        assert!(
            matches!(self.scheme, CommScheme::AdamSf),
            "layer {}: unexpected param matrix under {}",
            self.layer,
            self.scheme
        );
        assert_eq!(
            values.len(),
            self.param_elems,
            "param matrix length mismatch"
        );
        assert!(self.received_matrix.is_none(), "duplicate param matrix");
        self.received_matrix = Some(values);
    }

    /// Handles a peer's sufficient-factor batch.
    pub fn on_peer_sf(&mut self, from_worker: usize, batch: SfBatch) {
        assert!(matches!(self.scheme, CommScheme::Sfb), "unexpected SF push");
        assert_ne!(from_worker, self.me, "received our own SF broadcast");
        assert!(
            self.peer_sf[from_worker].is_none(),
            "duplicate SF batch from worker {from_worker}"
        );
        self.peer_sf[from_worker] = Some(batch);
    }

    /// `true` when everything this iteration needs has arrived — the layer's
    /// entry in the completion vector can be set to 1.
    pub fn is_complete(&self) -> bool {
        match self.scheme {
            CommScheme::Ps => self.received_chunks.iter().all(Option::is_some),
            CommScheme::AdamSf => self.received_matrix.is_some(),
            CommScheme::Sfb => {
                self.own_sf.is_some()
                    && (0..self.workers)
                        .filter(|&w| w != self.me)
                        .all(|w| self.peer_sf[w].is_some())
            }
            CommScheme::Ring | CommScheme::Tree => self.seg_done.iter().all(|&d| d),
        }
    }

    /// Consumes the iteration's received state into a [`SyncOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the syncer is not complete.
    pub fn take_outcome(&mut self) -> SyncOutcome {
        assert!(
            self.is_complete(),
            "layer {} syncer not complete",
            self.layer
        );
        match self.scheme {
            CommScheme::Ps => {
                let mut flat = vec![0.0f32; self.param_elems];
                for (idx, chunk) in self.chunks.iter().enumerate() {
                    let vals = self.received_chunks[idx].take().expect("complete");
                    flat[chunk.offset..chunk.offset + chunk.len].copy_from_slice(&vals);
                }
                if self.codec == Codec::Identity {
                    // Identity PS broadcasts fresh parameters — overwrite.
                    SyncOutcome::FreshParams(flat)
                } else {
                    // Lossy PS broadcasts the compressed aggregated update —
                    // the chunks hold decoded deltas, add them in place.
                    SyncOutcome::ApplyDelta(flat)
                }
            }
            CommScheme::AdamSf => {
                SyncOutcome::FreshParams(self.received_matrix.take().expect("complete"))
            }
            CommScheme::Sfb => {
                let mut batches = Vec::with_capacity(self.workers);
                for w in 0..self.workers {
                    if w == self.me {
                        batches.push(self.own_sf.take().expect("complete"));
                    } else {
                        batches.push(self.peer_sf[w].take().expect("complete"));
                    }
                }
                SyncOutcome::SfApply(batches)
            }
            CommScheme::Ring | CommScheme::Tree => {
                // The velocity is persistent optimiser state (next round's
                // µ·v), so clone rather than take.
                let mut flat = vec![0.0f32; self.param_elems];
                for (seg, &(off, len)) in self.segs.iter().enumerate() {
                    flat[off..off + len]
                        .copy_from_slice(self.velocity[seg].as_ref().expect("complete"));
                }
                SyncOutcome::ApplyDelta(flat)
            }
        }
    }
}

/// Flattens a parameter block to `weights (row-major) ++ bias`.
pub fn flatten_params(p: &ParamBlock) -> Vec<f32> {
    let mut flat = Vec::with_capacity(p.num_params());
    flat.extend_from_slice(p.weights.as_slice());
    flat.extend_from_slice(p.bias.as_slice());
    flat
}

/// Flattens a parameter block's gradients in the same layout.
pub fn flatten_grads(p: &ParamBlock) -> Vec<f32> {
    let mut flat = Vec::with_capacity(p.num_params());
    flat.extend_from_slice(p.grad_weights.as_slice());
    flat.extend_from_slice(p.grad_bias.as_slice());
    flat
}

/// Overwrites a parameter block from a flat `weights ++ bias` buffer.
///
/// # Panics
///
/// Panics if `flat` has the wrong length.
pub fn write_params_flat(p: &mut ParamBlock, flat: &[f32]) {
    assert_eq!(flat.len(), p.num_params(), "flat parameter length mismatch");
    let w = p.weights.len();
    p.weights.as_mut_slice().copy_from_slice(&flat[..w]);
    p.bias.as_mut_slice().copy_from_slice(&flat[w..]);
}

/// Adds a flat pre-scaled `weights ++ bias` delta to a parameter block.
///
/// # Panics
///
/// Panics if `flat` has the wrong length.
pub fn apply_delta_flat(p: &mut ParamBlock, flat: &[f32]) {
    assert_eq!(flat.len(), p.num_params(), "flat delta length mismatch");
    let w = p.weights.len();
    for (v, d) in p.weights.as_mut_slice().iter_mut().zip(&flat[..w]) {
        *v += d;
    }
    for (v, d) in p.bias.as_mut_slice().iter_mut().zip(&flat[w..]) {
        *v += d;
    }
}

/// Reconstructs the summed dense gradient of a set of SF batches: the weight
/// gradient `Σ uvᵀ` and the bias gradient `Σ u`.
///
/// Batches must be given in worker-id order so every replica folds them
/// identically.
pub fn reconstruct_sf_batches(batches: &[SfBatch], rows: usize, cols: usize) -> (Matrix, Vec<f32>) {
    let mut grad = Matrix::zeros(rows, cols);
    let mut bias_grad = vec![0.0f32; rows];
    for batch in batches {
        batch.accumulate_into(&mut grad, 1.0);
        for sf in batch.factors() {
            for (b, &u) in bias_grad.iter_mut().zip(&sf.u) {
                *b += u;
            }
        }
    }
    (grad, bias_grad)
}

/// Applies `scale · Σ batches` (weights via rank-1 reconstruction, bias via
/// the summed `u` factors) to a parameter block — SFB's `Move(CPU→GPU)`.
pub fn apply_sf_batches(p: &mut ParamBlock, batches: &[SfBatch], scale: f32) {
    let (rows, cols) = p.weights.shape();
    let (grad, bias_grad) = reconstruct_sf_batches(batches, rows, cols);
    p.weights.axpy(scale, &grad);
    for (i, &g) in bias_grad.iter().enumerate() {
        p.bias[(0, i)] += scale * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvstore::ShardState;
    use poseidon_tensor::SufficientFactor;
    use std::collections::VecDeque;

    fn chunk(layer: usize, idx: usize, offset: usize, len: usize) -> Chunk {
        Chunk {
            layer,
            offset,
            len,
            shard: idx % 2,
        }
    }

    #[test]
    fn ps_syncer_assembles_chunks_in_offset_order() {
        let chunks = vec![chunk(0, 0, 0, 3), chunk(0, 1, 3, 2)];
        let mut s = Syncer::new(0, CommScheme::Ps, chunks, 5, 4, 0);
        assert!(!s.is_complete());
        s.on_param_chunk(1, vec![40.0, 50.0]);
        assert!(!s.is_complete());
        s.on_param_chunk(0, vec![10.0, 20.0, 30.0]);
        assert!(s.is_complete());
        match s.take_outcome() {
            SyncOutcome::FreshParams(flat) => {
                assert_eq!(flat, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
            }
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn sfb_syncer_needs_own_and_all_peers() {
        let mut s = Syncer::new(2, CommScheme::Sfb, vec![], 6, 3, 1);
        let batch =
            |v: f32| SfBatch::from_factors(vec![SufficientFactor::new(vec![v, v], vec![1.0])]);
        s.on_peer_sf(0, batch(1.0));
        assert!(!s.is_complete(), "missing own batch and worker 2");
        s.set_own_sf(batch(2.0));
        assert!(!s.is_complete());
        s.on_peer_sf(2, batch(3.0));
        assert!(s.is_complete());
        match s.take_outcome() {
            SyncOutcome::SfApply(batches) => {
                assert_eq!(batches.len(), 3);
                // Worker-id order: 0, me(1), 2.
                assert_eq!(batches[0].factors()[0].u[0], 1.0);
                assert_eq!(batches[1].factors()[0].u[0], 2.0);
                assert_eq!(batches[2].factors()[0].u[0], 3.0);
            }
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn adam_syncer_takes_one_matrix() {
        let mut s = Syncer::new(1, CommScheme::AdamSf, vec![], 4, 2, 0);
        s.on_param_matrix(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(s.is_complete());
        match s.take_outcome() {
            SyncOutcome::FreshParams(flat) => assert_eq!(flat.len(), 4),
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn begin_iteration_resets_state() {
        let mut s = Syncer::new(0, CommScheme::Ps, vec![chunk(0, 0, 0, 2)], 2, 2, 0);
        s.on_param_chunk(0, vec![1.0, 2.0]);
        assert!(s.is_complete());
        let _ = s.take_outcome();
        s.begin_iteration();
        assert!(!s.is_complete());
        s.on_param_chunk(0, vec![3.0, 4.0]); // no duplicate panic after reset
        assert!(s.is_complete());
    }

    #[test]
    #[should_panic(expected = "duplicate chunk")]
    fn duplicate_chunk_panics() {
        let mut s = Syncer::new(0, CommScheme::Ps, vec![chunk(0, 0, 0, 1)], 1, 1, 0);
        s.on_param_chunk(0, vec![1.0]);
        s.on_param_chunk(0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "our own SF broadcast")]
    fn own_broadcast_echo_panics() {
        let mut s = Syncer::new(0, CommScheme::Sfb, vec![], 2, 2, 1);
        s.on_peer_sf(
            1,
            SfBatch::from_factors(vec![SufficientFactor::new(vec![1.0], vec![1.0])]),
        );
    }

    #[test]
    fn flatten_roundtrip() {
        let mut p = ParamBlock::new(2, 3);
        p.weights = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        p.bias = Matrix::from_vec(1, 2, vec![7.0, 8.0]);
        let flat = flatten_params(&p);
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut q = ParamBlock::new(2, 3);
        write_params_flat(&mut q, &flat);
        assert_eq!(q.weights, p.weights);
        assert_eq!(q.bias, p.bias);
    }

    #[test]
    fn apply_sf_batches_matches_dense_update() {
        let mut p = ParamBlock::new(2, 2);
        let batches = vec![
            SfBatch::from_factors(vec![SufficientFactor::new(vec![1.0, 0.0], vec![1.0, 2.0])]),
            SfBatch::from_factors(vec![SufficientFactor::new(vec![0.0, 1.0], vec![3.0, 4.0])]),
        ];
        apply_sf_batches(&mut p, &batches, -0.5);
        // grad = [[1,2],[3,4]]; params = -0.5*grad.
        assert_eq!(p.weights.as_slice(), &[-0.5, -1.0, -1.5, -2.0]);
        // bias grad = sum of u = [1,1].
        assert_eq!(p.bias.as_slice(), &[-0.5, -0.5]);
    }

    #[test]
    fn single_worker_sfb_is_complete_with_own_batch_only() {
        let mut s = Syncer::new(0, CommScheme::Sfb, vec![], 2, 1, 0);
        s.set_own_sf(SfBatch::from_factors(vec![SufficientFactor::new(
            vec![1.0],
            vec![1.0],
        )]));
        assert!(s.is_complete());
    }

    fn f32_bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Drives `workers` collective syncers through three full exchanges and
    /// checks the applied parameters stay bitwise identical to a PS shard
    /// folding the same raw gradients (the cross-scheme exactness invariant).
    fn collective_matches_shard(scheme: CommScheme, workers: usize, momentum: f32) {
        let elems = 7;
        let chunks = vec![chunk(0, 0, 0, 4), chunk(0, 1, 4, 3)];
        let scale = -0.05f32;
        let mut shard = ShardState::with_momentum(workers, scale, momentum);
        shard.init_pair((0, 0), vec![0.25; 4]);
        shard.init_pair((0, 1), vec![0.25; 3]);
        let mut params = vec![0.25f32; elems];
        let mut syncers: Vec<Syncer> = (0..workers)
            .map(|w| {
                Syncer::new(0, scheme, chunks.clone(), elems, workers, w).with_momentum(momentum)
            })
            .collect();
        for it in 0..3usize {
            let grads: Vec<Vec<f32>> = (0..workers)
                .map(|w| {
                    (0..elems)
                        .map(|i| ((w * 31 + i * 7 + it * 13) % 17) as f32 * 0.3 - 2.0)
                        .collect()
                })
                .collect();
            // Backward for every worker, then drain the in-flight frames —
            // the same send-before-receive order the runtimes follow.
            let mut inflight: VecDeque<(usize, usize, u32, Bytes)> = VecDeque::new();
            for (w, s) in syncers.iter_mut().enumerate() {
                s.begin_iteration();
                let scaled: Vec<f32> = grads[w].iter().map(|g| scale * g).collect();
                for send in s.set_collective_grad(scaled) {
                    inflight.push_back((send.to_worker, w, send.route, send.data));
                }
            }
            while let Some((to, from, route, data)) = inflight.pop_front() {
                for send in syncers[to].on_collective(from, route, data).unwrap() {
                    inflight.push_back((send.to_worker, to, send.route, send.data));
                }
            }
            let mut deltas = Vec::new();
            for s in &mut syncers {
                assert!(s.is_complete(), "collective exchange stalled");
                match s.take_outcome() {
                    SyncOutcome::ApplyDelta(d) => deltas.push(d),
                    other => panic!("wrong outcome {other:?}"),
                }
            }
            for d in &deltas[1..] {
                assert_eq!(f32_bits(d), f32_bits(&deltas[0]), "replicas diverged");
            }
            for (p, d) in params.iter_mut().zip(&deltas[0]) {
                *p += d;
            }
            for (w, g) in grads.iter().enumerate() {
                shard.receive_grad(w, (0, 0), &g[..4]);
                shard.receive_grad(w, (0, 1), &g[4..]);
            }
            let mut master = Vec::new();
            master.extend_from_slice(shard.pair((0, 0)).unwrap());
            master.extend_from_slice(shard.pair((0, 1)).unwrap());
            assert_eq!(
                f32_bits(&params),
                f32_bits(&master),
                "{scheme} P={workers} µ={momentum} diverged from the PS fold at iteration {it}"
            );
        }
    }

    #[test]
    fn ring_matches_ps_shard_bitwise() {
        for &workers in &[2, 3, 5] {
            collective_matches_shard(CommScheme::Ring, workers, 0.0);
            collective_matches_shard(CommScheme::Ring, workers, 0.9);
        }
    }

    #[test]
    fn tree_matches_ps_shard_bitwise() {
        for &workers in &[2, 3, 4, 7] {
            collective_matches_shard(CommScheme::Tree, workers, 0.0);
            collective_matches_shard(CommScheme::Tree, workers, 0.9);
        }
    }

    #[test]
    fn collective_layer_without_chunks_uses_one_segment() {
        let mut a = Syncer::new(0, CommScheme::Ring, vec![], 3, 2, 0);
        let mut b = Syncer::new(0, CommScheme::Ring, vec![], 3, 2, 1);
        let seeds = a.set_collective_grad(vec![1.0, 2.0, 3.0]);
        assert!(b.set_collective_grad(vec![0.5, 0.5, 0.5]).is_empty());
        assert_eq!(seeds.len(), 1, "single whole-layer segment");
        let fwd = b
            .on_collective(0, seeds[0].route, seeds[0].data.clone())
            .unwrap();
        assert!(b.is_complete());
        assert_eq!(fwd.len(), 1, "DISTRIBUTE back to worker 0");
        let done = a
            .on_collective(1, fwd[0].route, fwd[0].data.clone())
            .unwrap();
        assert!(done.is_empty(), "DISTRIBUTE stops before its originator");
        assert!(a.is_complete());
        match a.take_outcome() {
            SyncOutcome::ApplyDelta(d) => assert_eq!(d, vec![1.5, 2.5, 3.5]),
            other => panic!("wrong outcome {other:?}"),
        }
    }

    /// Drives `workers` lossy-codec collective syncers through several
    /// exchanges: all replicas must land on bitwise-identical deltas (they
    /// all decode the same terminal encoding), even though the delta itself
    /// is an approximation of the exact fold.
    fn lossy_collective_replicas_agree(scheme: CommScheme, codec: Codec, workers: usize) {
        let elems = 9;
        let chunks = vec![chunk(0, 0, 0, 5), chunk(0, 1, 5, 4)];
        let scale = -0.05f32;
        let mut syncers: Vec<Syncer> = (0..workers)
            .map(|w| {
                Syncer::new(0, scheme, chunks.clone(), elems, workers, w)
                    .with_momentum(0.9)
                    .with_codec(codec)
            })
            .collect();
        for it in 0..4usize {
            let mut inflight: VecDeque<(usize, usize, u32, Bytes)> = VecDeque::new();
            for (w, s) in syncers.iter_mut().enumerate() {
                s.begin_iteration();
                let scaled: Vec<f32> = (0..elems)
                    .map(|i| scale * (((w * 31 + i * 7 + it * 13) % 17) as f32 * 0.3 - 2.0))
                    .collect();
                for send in s.set_collective_grad(scaled) {
                    inflight.push_back((send.to_worker, w, send.route, send.data));
                }
            }
            while let Some((to, from, route, data)) = inflight.pop_front() {
                for send in syncers[to].on_collective(from, route, data).unwrap() {
                    inflight.push_back((send.to_worker, to, send.route, send.data));
                }
            }
            let mut deltas = Vec::new();
            for s in &mut syncers {
                assert!(s.is_complete(), "lossy collective exchange stalled");
                match s.take_outcome() {
                    SyncOutcome::ApplyDelta(d) => deltas.push(d),
                    other => panic!("wrong outcome {other:?}"),
                }
            }
            for d in &deltas[1..] {
                assert_eq!(
                    f32_bits(d),
                    f32_bits(&deltas[0]),
                    "{scheme}/{codec} P={workers} replicas diverged at iteration {it}"
                );
            }
        }
    }

    #[test]
    fn lossy_collectives_keep_replicas_bitwise_identical() {
        use poseidon_tensor::compress::TOPK_DEFAULT_PERMILLE;
        for codec in [
            Codec::OneBit,
            Codec::F16,
            Codec::Bf16,
            Codec::TopK {
                permille: TOPK_DEFAULT_PERMILLE,
            },
        ] {
            for &workers in &[2usize, 3, 5] {
                lossy_collective_replicas_agree(CommScheme::Ring, codec, workers);
                lossy_collective_replicas_agree(CommScheme::Tree, codec, workers);
            }
        }
    }

    #[test]
    fn corrupt_collective_payload_surfaces_not_panics() {
        let mut b = Syncer::new(0, CommScheme::Ring, vec![], 4, 2, 1).with_codec(Codec::OneBit);
        let _ = b.set_collective_grad(vec![0.1, 0.2, 0.3, 0.4]);
        let route = wire::pack_collective(COLLECTIVE_REDUCE, 0, 0);
        let err = b.on_collective(0, route, Bytes::from(vec![1u8, 2, 3]));
        assert!(err.is_err(), "truncated payload must surface, got {err:?}");
        assert!(
            !b.is_complete(),
            "poisoned frame must not complete a segment"
        );
    }

    #[test]
    fn encode_push_identity_is_bitwise_pooled_path() {
        let mut s = Syncer::new(0, CommScheme::Ps, vec![chunk(0, 0, 0, 3)], 3, 2, 0);
        let vals = [1.5f32, -2.25, 0.0];
        assert_eq!(
            s.encode_push(0, &vals).as_ref(),
            wire::encode_f32s(&vals).as_ref()
        );
    }

    #[test]
    fn encode_push_error_feedback_is_deterministic_across_instances() {
        let mk = || {
            Syncer::new(0, CommScheme::Ps, vec![chunk(0, 0, 0, 6)], 6, 2, 0)
                .with_codec(Codec::OneBit)
        };
        let (mut a, mut b) = (mk(), mk());
        for it in 0..5 {
            let vals: Vec<f32> = (0..6).map(|i| (i * 3 + it) as f32 * 0.7 - 4.0).collect();
            assert_eq!(a.encode_push(0, &vals), b.encode_push(0, &vals), "it {it}");
        }
    }

    #[test]
    fn export_import_state_preserves_lossy_stream() {
        // Run a 1-bit PS syncer for a few pushes, export its state into a
        // fresh instance, and check the two produce bitwise-identical bytes
        // from then on — the checkpoint/handoff exactness invariant.
        let mk = || {
            Syncer::new(0, CommScheme::Ps, vec![chunk(0, 0, 0, 6)], 6, 2, 0)
                .with_codec(Codec::OneBit)
        };
        let mut a = mk();
        for it in 0..3 {
            let vals: Vec<f32> = (0..6).map(|i| (i * 5 + it) as f32 * 0.9 - 7.0).collect();
            let _ = a.encode_push(0, &vals);
        }
        let mut b = mk();
        b.import_state(a.export_state());
        for it in 3..8 {
            let vals: Vec<f32> = (0..6).map(|i| (i * 5 + it) as f32 * 0.9 - 7.0).collect();
            assert_eq!(a.encode_push(0, &vals), b.encode_push(0, &vals), "it {it}");
        }
    }

    #[test]
    fn export_import_state_carries_collective_velocity() {
        let mut a = Syncer::new(0, CommScheme::Ring, vec![], 3, 2, 1).with_momentum(0.9);
        a.velocity[0] = Some(vec![1.5, -2.0, 0.25]);
        let st = a.export_state();
        assert_eq!(st.velocity[0].as_deref(), Some(&[1.5, -2.0, 0.25][..]));
        let mut b = Syncer::new(0, CommScheme::Ring, vec![], 3, 2, 1).with_momentum(0.9);
        b.import_state(st);
        assert_eq!(b.velocity, a.velocity);
        // Untouched compressor slots stay lazily absent.
        assert!(b.seg_comp[0].is_none());
    }

    #[test]
    #[should_panic(expected = "cannot ride codec")]
    fn sfb_rejects_lossy_codec() {
        let _ = Syncer::new(0, CommScheme::Sfb, vec![], 4, 2, 0).with_codec(Codec::F16);
    }

    #[test]
    #[should_panic(expected = "wrong predecessor")]
    fn ring_reduce_from_wrong_sender_panics() {
        let mut s = Syncer::new(0, CommScheme::Ring, vec![], 2, 3, 2);
        s.set_collective_grad(vec![0.0, 0.0]);
        let route = wire::pack_collective(COLLECTIVE_REDUCE, 0, 0);
        let _ = s.on_collective(0, route, wire::encode_f32s(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "duplicate tree contribution")]
    fn duplicate_tree_contribution_panics() {
        let mut s = Syncer::new(0, CommScheme::Tree, vec![], 1, 3, 0);
        let route = wire::pack_collective(COLLECTIVE_REDUCE, 1, 0);
        let _ = s.on_collective(1, route, wire::encode_f32s(&[1.0]));
        let _ = s.on_collective(1, route, wire::encode_f32s(&[1.0]));
    }
}
