//! Per-layer syncers: the client-library state machine of Section 4.1.
//!
//! "The client library will create a syncer for each NN layer during network
//! assembling (so that each layer one-to-one maps to one syncer), accounting
//! for its parameter synchronisation." A syncer's life per iteration is
//! `Move(GPU→CPU) → Send → Receive → Move(CPU→GPU)`; in this in-process
//! runtime the two `Move`s become gradient flattening and parameter
//! application, and `Send`/`Receive` are tracked here so the worker knows
//! when the layer is fully synchronised (the entry in the client's completion
//! vector `C`).
//!
//! This module is pure bookkeeping — no I/O — so it is exhaustively unit
//! tested; the [`crate::runtime`] threads drive it with real messages.

use crate::chunk::Chunk;
use crate::config::CommScheme;
use poseidon_nn::ParamBlock;
use poseidon_tensor::{Matrix, SfBatch};

/// What a completed syncer hands back to the worker's `Move(CPU→GPU)` step.
#[derive(Debug)]
pub enum SyncOutcome {
    /// Fresh parameters from the parameter server (flattened weights ++ bias);
    /// overwrite the replica's parameters.
    FreshParams(Vec<f32>),
    /// A pre-scaled parameter *delta* (flattened weights ++ bias); add it to
    /// the replica's parameters. Used by the 1-bit path, where the server
    /// broadcasts the quantized aggregated update rather than dense
    /// parameters (Seide et al.'s double quantization).
    ApplyDelta(Vec<f32>),
    /// All workers' sufficient-factor batches in worker-id order (including
    /// our own); reconstruct and apply `scale · Σ` locally.
    SfApply(Vec<SfBatch>),
}

/// Per-layer synchronisation state for one worker.
#[derive(Debug)]
pub struct Syncer {
    layer: usize,
    scheme: CommScheme,
    param_elems: usize,
    /// Offset-ordered chunks of this layer (PS/1-bit paths).
    chunks: Vec<Chunk>,
    workers: usize,
    me: usize,
    // --- per-iteration state ---
    received_chunks: Vec<Option<Vec<f32>>>,
    received_matrix: Option<Vec<f32>>,
    own_sf: Option<SfBatch>,
    peer_sf: Vec<Option<SfBatch>>,
}

impl Syncer {
    /// Creates the syncer for `layer` under `scheme`.
    ///
    /// `chunks` must be the layer's offset-ordered KV pairs (may be empty for
    /// pure SFB/Adam/1-bit layers); `param_elems` the layer's flattened
    /// parameter count; `me` this worker's id out of `workers`.
    pub fn new(
        layer: usize,
        scheme: CommScheme,
        chunks: Vec<Chunk>,
        param_elems: usize,
        workers: usize,
        me: usize,
    ) -> Self {
        assert!(me < workers, "worker id out of range");
        let n_chunks = chunks.len();
        Self {
            layer,
            scheme,
            param_elems,
            chunks,
            workers,
            me,
            received_chunks: vec![None; n_chunks],
            received_matrix: None,
            own_sf: None,
            peer_sf: vec![None; workers],
        }
    }

    /// The layer this syncer serves.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// The communication scheme in force.
    pub fn scheme(&self) -> CommScheme {
        self.scheme
    }

    /// The layer's KV pairs.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Resets the per-iteration state (the completion-vector entry goes back
    /// to 0).
    pub fn begin_iteration(&mut self) {
        for c in &mut self.received_chunks {
            *c = None;
        }
        self.received_matrix = None;
        self.own_sf = None;
        for p in &mut self.peer_sf {
            *p = None;
        }
    }

    /// Records our own sufficient-factor batch at `Send` time (SFB includes
    /// the local contribution when reconstructing).
    pub fn set_own_sf(&mut self, batch: SfBatch) {
        assert!(
            matches!(self.scheme, CommScheme::Sfb),
            "own SF only meaningful for SFB"
        );
        self.own_sf = Some(batch);
    }

    /// Handles a fresh parameter chunk from a PS shard. `chunk_idx` is the
    /// chunk's index within this layer.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index, a length mismatch, or a duplicate.
    pub fn on_param_chunk(&mut self, chunk_idx: usize, values: Vec<f32>) {
        assert!(
            matches!(self.scheme, CommScheme::Ps),
            "layer {} ({}): unexpected param chunk",
            self.layer,
            self.scheme
        );
        let chunk = &self.chunks[chunk_idx];
        assert_eq!(values.len(), chunk.len, "chunk length mismatch");
        assert!(
            self.received_chunks[chunk_idx].is_none(),
            "duplicate chunk {chunk_idx} for layer {}",
            self.layer
        );
        self.received_chunks[chunk_idx] = Some(values);
    }

    /// Handles a dense parameter matrix (Adam pull / 1-bit reply).
    pub fn on_param_matrix(&mut self, values: Vec<f32>) {
        assert!(
            matches!(self.scheme, CommScheme::AdamSf | CommScheme::OneBitPs),
            "layer {}: unexpected param matrix under {}",
            self.layer,
            self.scheme
        );
        assert_eq!(
            values.len(),
            self.param_elems,
            "param matrix length mismatch"
        );
        assert!(self.received_matrix.is_none(), "duplicate param matrix");
        self.received_matrix = Some(values);
    }

    /// Handles a peer's sufficient-factor batch.
    pub fn on_peer_sf(&mut self, from_worker: usize, batch: SfBatch) {
        assert!(matches!(self.scheme, CommScheme::Sfb), "unexpected SF push");
        assert_ne!(from_worker, self.me, "received our own SF broadcast");
        assert!(
            self.peer_sf[from_worker].is_none(),
            "duplicate SF batch from worker {from_worker}"
        );
        self.peer_sf[from_worker] = Some(batch);
    }

    /// `true` when everything this iteration needs has arrived — the layer's
    /// entry in the completion vector can be set to 1.
    pub fn is_complete(&self) -> bool {
        match self.scheme {
            CommScheme::Ps => self.received_chunks.iter().all(Option::is_some),
            CommScheme::AdamSf | CommScheme::OneBitPs => self.received_matrix.is_some(),
            CommScheme::Sfb => {
                self.own_sf.is_some()
                    && (0..self.workers)
                        .filter(|&w| w != self.me)
                        .all(|w| self.peer_sf[w].is_some())
            }
        }
    }

    /// Consumes the iteration's received state into a [`SyncOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the syncer is not complete.
    pub fn take_outcome(&mut self) -> SyncOutcome {
        assert!(
            self.is_complete(),
            "layer {} syncer not complete",
            self.layer
        );
        match self.scheme {
            CommScheme::Ps => {
                let mut flat = vec![0.0f32; self.param_elems];
                for (idx, chunk) in self.chunks.iter().enumerate() {
                    let vals = self.received_chunks[idx].take().expect("complete");
                    flat[chunk.offset..chunk.offset + chunk.len].copy_from_slice(&vals);
                }
                SyncOutcome::FreshParams(flat)
            }
            CommScheme::AdamSf => {
                SyncOutcome::FreshParams(self.received_matrix.take().expect("complete"))
            }
            CommScheme::OneBitPs => {
                SyncOutcome::ApplyDelta(self.received_matrix.take().expect("complete"))
            }
            CommScheme::Sfb => {
                let mut batches = Vec::with_capacity(self.workers);
                for w in 0..self.workers {
                    if w == self.me {
                        batches.push(self.own_sf.take().expect("complete"));
                    } else {
                        batches.push(self.peer_sf[w].take().expect("complete"));
                    }
                }
                SyncOutcome::SfApply(batches)
            }
        }
    }
}

/// Flattens a parameter block to `weights (row-major) ++ bias`.
pub fn flatten_params(p: &ParamBlock) -> Vec<f32> {
    let mut flat = Vec::with_capacity(p.num_params());
    flat.extend_from_slice(p.weights.as_slice());
    flat.extend_from_slice(p.bias.as_slice());
    flat
}

/// Flattens a parameter block's gradients in the same layout.
pub fn flatten_grads(p: &ParamBlock) -> Vec<f32> {
    let mut flat = Vec::with_capacity(p.num_params());
    flat.extend_from_slice(p.grad_weights.as_slice());
    flat.extend_from_slice(p.grad_bias.as_slice());
    flat
}

/// Overwrites a parameter block from a flat `weights ++ bias` buffer.
///
/// # Panics
///
/// Panics if `flat` has the wrong length.
pub fn write_params_flat(p: &mut ParamBlock, flat: &[f32]) {
    assert_eq!(flat.len(), p.num_params(), "flat parameter length mismatch");
    let w = p.weights.len();
    p.weights.as_mut_slice().copy_from_slice(&flat[..w]);
    p.bias.as_mut_slice().copy_from_slice(&flat[w..]);
}

/// Adds a flat pre-scaled `weights ++ bias` delta to a parameter block.
///
/// # Panics
///
/// Panics if `flat` has the wrong length.
pub fn apply_delta_flat(p: &mut ParamBlock, flat: &[f32]) {
    assert_eq!(flat.len(), p.num_params(), "flat delta length mismatch");
    let w = p.weights.len();
    for (v, d) in p.weights.as_mut_slice().iter_mut().zip(&flat[..w]) {
        *v += d;
    }
    for (v, d) in p.bias.as_mut_slice().iter_mut().zip(&flat[w..]) {
        *v += d;
    }
}

/// Reconstructs the summed dense gradient of a set of SF batches: the weight
/// gradient `Σ uvᵀ` and the bias gradient `Σ u`.
///
/// Batches must be given in worker-id order so every replica folds them
/// identically.
pub fn reconstruct_sf_batches(batches: &[SfBatch], rows: usize, cols: usize) -> (Matrix, Vec<f32>) {
    let mut grad = Matrix::zeros(rows, cols);
    let mut bias_grad = vec![0.0f32; rows];
    for batch in batches {
        batch.accumulate_into(&mut grad, 1.0);
        for sf in batch.factors() {
            for (b, &u) in bias_grad.iter_mut().zip(&sf.u) {
                *b += u;
            }
        }
    }
    (grad, bias_grad)
}

/// Applies `scale · Σ batches` (weights via rank-1 reconstruction, bias via
/// the summed `u` factors) to a parameter block — SFB's `Move(CPU→GPU)`.
pub fn apply_sf_batches(p: &mut ParamBlock, batches: &[SfBatch], scale: f32) {
    let (rows, cols) = p.weights.shape();
    let (grad, bias_grad) = reconstruct_sf_batches(batches, rows, cols);
    p.weights.axpy(scale, &grad);
    for (i, &g) in bias_grad.iter().enumerate() {
        p.bias[(0, i)] += scale * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_tensor::SufficientFactor;

    fn chunk(layer: usize, idx: usize, offset: usize, len: usize) -> Chunk {
        Chunk {
            layer,
            offset,
            len,
            shard: idx % 2,
        }
    }

    #[test]
    fn ps_syncer_assembles_chunks_in_offset_order() {
        let chunks = vec![chunk(0, 0, 0, 3), chunk(0, 1, 3, 2)];
        let mut s = Syncer::new(0, CommScheme::Ps, chunks, 5, 4, 0);
        assert!(!s.is_complete());
        s.on_param_chunk(1, vec![40.0, 50.0]);
        assert!(!s.is_complete());
        s.on_param_chunk(0, vec![10.0, 20.0, 30.0]);
        assert!(s.is_complete());
        match s.take_outcome() {
            SyncOutcome::FreshParams(flat) => {
                assert_eq!(flat, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
            }
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn sfb_syncer_needs_own_and_all_peers() {
        let mut s = Syncer::new(2, CommScheme::Sfb, vec![], 6, 3, 1);
        let batch =
            |v: f32| SfBatch::from_factors(vec![SufficientFactor::new(vec![v, v], vec![1.0])]);
        s.on_peer_sf(0, batch(1.0));
        assert!(!s.is_complete(), "missing own batch and worker 2");
        s.set_own_sf(batch(2.0));
        assert!(!s.is_complete());
        s.on_peer_sf(2, batch(3.0));
        assert!(s.is_complete());
        match s.take_outcome() {
            SyncOutcome::SfApply(batches) => {
                assert_eq!(batches.len(), 3);
                // Worker-id order: 0, me(1), 2.
                assert_eq!(batches[0].factors()[0].u[0], 1.0);
                assert_eq!(batches[1].factors()[0].u[0], 2.0);
                assert_eq!(batches[2].factors()[0].u[0], 3.0);
            }
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn adam_syncer_takes_one_matrix() {
        let mut s = Syncer::new(1, CommScheme::AdamSf, vec![], 4, 2, 0);
        s.on_param_matrix(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(s.is_complete());
        match s.take_outcome() {
            SyncOutcome::FreshParams(flat) => assert_eq!(flat.len(), 4),
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn begin_iteration_resets_state() {
        let mut s = Syncer::new(0, CommScheme::Ps, vec![chunk(0, 0, 0, 2)], 2, 2, 0);
        s.on_param_chunk(0, vec![1.0, 2.0]);
        assert!(s.is_complete());
        let _ = s.take_outcome();
        s.begin_iteration();
        assert!(!s.is_complete());
        s.on_param_chunk(0, vec![3.0, 4.0]); // no duplicate panic after reset
        assert!(s.is_complete());
    }

    #[test]
    #[should_panic(expected = "duplicate chunk")]
    fn duplicate_chunk_panics() {
        let mut s = Syncer::new(0, CommScheme::Ps, vec![chunk(0, 0, 0, 1)], 1, 1, 0);
        s.on_param_chunk(0, vec![1.0]);
        s.on_param_chunk(0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "our own SF broadcast")]
    fn own_broadcast_echo_panics() {
        let mut s = Syncer::new(0, CommScheme::Sfb, vec![], 2, 2, 1);
        s.on_peer_sf(
            1,
            SfBatch::from_factors(vec![SufficientFactor::new(vec![1.0], vec![1.0])]),
        );
    }

    #[test]
    fn flatten_roundtrip() {
        let mut p = ParamBlock::new(2, 3);
        p.weights = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        p.bias = Matrix::from_vec(1, 2, vec![7.0, 8.0]);
        let flat = flatten_params(&p);
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut q = ParamBlock::new(2, 3);
        write_params_flat(&mut q, &flat);
        assert_eq!(q.weights, p.weights);
        assert_eq!(q.bias, p.bias);
    }

    #[test]
    fn apply_sf_batches_matches_dense_update() {
        let mut p = ParamBlock::new(2, 2);
        let batches = vec![
            SfBatch::from_factors(vec![SufficientFactor::new(vec![1.0, 0.0], vec![1.0, 2.0])]),
            SfBatch::from_factors(vec![SufficientFactor::new(vec![0.0, 1.0], vec![3.0, 4.0])]),
        ];
        apply_sf_batches(&mut p, &batches, -0.5);
        // grad = [[1,2],[3,4]]; params = -0.5*grad.
        assert_eq!(p.weights.as_slice(), &[-0.5, -1.0, -1.5, -2.0]);
        // bias grad = sum of u = [1,1].
        assert_eq!(p.bias.as_slice(), &[-0.5, -0.5]);
    }

    #[test]
    fn single_worker_sfb_is_complete_with_own_batch_only() {
        let mut s = Syncer::new(0, CommScheme::Sfb, vec![], 2, 1, 0);
        s.set_own_sf(SfBatch::from_factors(vec![SufficientFactor::new(
            vec![1.0],
            vec![1.0],
        )]));
        assert!(s.is_complete());
    }
}
