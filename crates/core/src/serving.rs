//! The live inference front door: serve predictions *while training*.
//!
//! Training publishes an immutable [`Snapshot`] of the model parameters into
//! a [`SnapshotCell`] at each iteration boundary; the [`ServingServer`]
//! answers batched inference requests against whatever snapshot is current
//! when the request arrives. Requests therefore see **snapshot isolation**:
//! one request is answered entirely from one parameter version (stamped with
//! its iteration and membership epoch in the reply), never a torn mix of two
//! iterations — even though training keeps mutating its own replica
//! concurrently.
//!
//! The wire protocol is a minimal length-prefixed binary over TCP, one
//! request per connection (the shape of the metrics scrape endpoint, which
//! has proven itself under the multi-process tests):
//!
//! ```text
//! request :  "PSRV"  n:u32le  d:u32le  n·d × f32le   (row-major inputs)
//! response:  "PSRP"  status:u8  iter:u64le  epoch:u32le
//!            n:u32le  k:u32le  n·k × f32le           (row-major outputs)
//! ```
//!
//! Status 0 = OK; 1 = no snapshot published yet (training has not reached
//! its first boundary); 2 = malformed or mis-shaped request. Non-OK replies
//! carry `n = k = 0`.

use crate::metrics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Request magic.
pub const SERVE_REQ_MAGIC: [u8; 4] = *b"PSRV";
/// Response magic.
pub const SERVE_RESP_MAGIC: [u8; 4] = *b"PSRP";
/// Upper bound on `n·d` accepted per request (keeps a hostile or buggy
/// client from making the responder allocate unboundedly).
pub const SERVE_MAX_ELEMS: usize = 1 << 20;

/// Request served from a consistent parameter version.
pub const SERVE_OK: u8 = 0;
/// Training has not published a snapshot yet.
pub const SERVE_NO_SNAPSHOT: u8 = 1;
/// Malformed frame or input width the model rejects.
pub const SERVE_BAD_REQUEST: u8 = 2;

/// One immutable parameter version, as published at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The iteration whose update this snapshot includes (i.e. parameters
    /// *after* iteration `iter`).
    pub iter: u64,
    /// Membership epoch in force at the boundary.
    pub epoch: u32,
    /// Flattened model parameters, trainable layers in slot order.
    pub params: Vec<f32>,
}

/// The single-writer / many-reader cell training publishes snapshots into.
///
/// `publish` swaps the current `Arc<Snapshot>` atomically under a mutex held
/// only for the pointer swap; readers clone the `Arc` and then work lock-free
/// on the immutable snapshot — a request in flight keeps its version alive
/// even after training publishes ten newer ones.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    latest: Mutex<Option<Arc<Snapshot>>>,
}

impl SnapshotCell {
    /// An empty cell (no snapshot published yet).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publishes a new parameter version.
    pub fn publish(&self, snap: Snapshot) {
        *self.latest.lock().expect("snapshot cell poisoned") = Some(Arc::new(snap));
    }

    /// The current version, if any.
    pub fn latest(&self) -> Option<Arc<Snapshot>> {
        self.latest.lock().expect("snapshot cell poisoned").clone()
    }
}

/// The model-evaluation hook the runtime hands the server: given one
/// snapshot's parameters and a row-major `n × d` input batch, return the
/// row-major `n × k` outputs, or `None` when `d` does not match the model.
pub type InferFn = dyn Fn(&Snapshot, usize, usize, &[f32]) -> Option<Vec<f32>> + Send + Sync;

/// A parsed serving reply (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReply {
    /// One of [`SERVE_OK`], [`SERVE_NO_SNAPSHOT`], [`SERVE_BAD_REQUEST`].
    pub status: u8,
    /// Iteration of the snapshot that answered (0 on non-OK).
    pub iter: u64,
    /// Membership epoch of the snapshot that answered (0 on non-OK).
    pub epoch: u32,
    /// Row-major `n × k` outputs (empty on non-OK).
    pub outputs: Vec<f32>,
    /// Output width `k` (0 on non-OK).
    pub k: usize,
}

/// How often the listener thread polls its stop flag between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The inference front door: binds an address, spawns one listener thread,
/// and answers every request against the cell's current snapshot. Dropping
/// the server stops the thread and releases the port.
pub struct ServingServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServingServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts answering requests
    /// with `infer` applied to `cell`'s latest snapshot.
    pub fn serve(
        addr: &str,
        cell: Arc<SnapshotCell>,
        infer: Arc<InferFn>,
    ) -> std::io::Result<ServingServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(format!("serving {addr}"))
            .spawn(move || listen_loop(listener, &stop2, &cell, infer.as_ref()))?;
        Ok(ServingServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (exact port when `serve` was given port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ServingServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn listen_loop(listener: TcpListener, stop: &AtomicBool, cell: &SnapshotCell, infer: &InferFn) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: one request per connection, bounded sizes.
                // A single thread keeps the front door's footprint fixed and
                // its interference with training predictable.
                let _ = answer(stream, cell, infer);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn read_exact_n(stream: &mut TcpStream, n: usize) -> std::io::Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

fn write_reply(
    stream: &mut TcpStream,
    status: u8,
    iter: u64,
    epoch: u32,
    k: usize,
    outputs: &[f32],
) -> std::io::Result<()> {
    use bytes::BufMut;
    let n = outputs.len().checked_div(k).unwrap_or(0);
    let mut buf = bytes::BytesMut::with_capacity(25 + outputs.len() * 4);
    buf.put_slice(&SERVE_RESP_MAGIC);
    buf.put_u8(status);
    buf.put_u64_le(iter);
    buf.put_u32_le(epoch);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(k as u32);
    for &v in outputs {
        buf.put_f32_le(v);
    }
    stream.write_all(&buf)?;
    stream.flush()
}

fn answer(mut stream: TcpStream, cell: &SnapshotCell, infer: &InferFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let start = Instant::now();
    let head = read_exact_n(&mut stream, 12)?;
    let n = u32::from_le_bytes([head[4], head[5], head[6], head[7]]) as usize;
    let d = u32::from_le_bytes([head[8], head[9], head[10], head[11]]) as usize;
    if head[..4] != SERVE_REQ_MAGIC || n == 0 || d == 0 || n.saturating_mul(d) > SERVE_MAX_ELEMS {
        metrics::counter("poseidon_serve_requests_total", &[("status", "bad")]).inc();
        return write_reply(&mut stream, SERVE_BAD_REQUEST, 0, 0, 0, &[]);
    }
    let payload = read_exact_n(&mut stream, n * d * 4)?;
    let inputs: Vec<f32> = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    // Pin the parameter version *once*: everything below reads this Arc, so
    // the whole batch is answered from one consistent iteration.
    let Some(snap) = cell.latest() else {
        metrics::counter("poseidon_serve_requests_total", &[("status", "empty")]).inc();
        return write_reply(&mut stream, SERVE_NO_SNAPSHOT, 0, 0, 0, &[]);
    };
    match infer(&snap, n, d, &inputs) {
        Some(outputs) => {
            assert!(
                !outputs.is_empty() && outputs.len().is_multiple_of(n),
                "inference output not an n-row matrix"
            );
            let k = outputs.len() / n;
            metrics::counter("poseidon_serve_requests_total", &[("status", "ok")]).inc();
            metrics::histogram("poseidon_serve_latency_ns", &[])
                .observe(start.elapsed().as_nanos() as u64);
            write_reply(&mut stream, SERVE_OK, snap.iter, snap.epoch, k, &outputs)
        }
        None => {
            metrics::counter("poseidon_serve_requests_total", &[("status", "bad")]).inc();
            write_reply(&mut stream, SERVE_BAD_REQUEST, 0, 0, 0, &[])
        }
    }
}

/// Client side: sends one row-major `n × d` batch to a serving endpoint and
/// parses the reply. Used by the serving bench, the multi-process smoke test
/// and external callers alike.
///
/// # Errors
///
/// I/O errors surface as-is; a malformed response is an
/// [`std::io::ErrorKind::InvalidData`] error.
pub fn query(addr: &str, n: usize, d: usize, inputs: &[f32]) -> std::io::Result<ServeReply> {
    assert_eq!(inputs.len(), n * d, "inputs must be n·d values");
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nodelay(true)?;
    {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::with_capacity(12 + inputs.len() * 4);
        buf.put_slice(&SERVE_REQ_MAGIC);
        buf.put_u32_le(n as u32);
        buf.put_u32_le(d as u32);
        for &v in inputs {
            buf.put_f32_le(v);
        }
        stream.write_all(&buf)?;
        stream.flush()?;
    }
    let mut head = [0u8; 25];
    stream.read_exact(&mut head)?;
    if head[..4] != SERVE_RESP_MAGIC {
        return Err(bad("bad serving response magic"));
    }
    let status = head[4];
    let iter = u64::from_le_bytes(head[5..13].try_into().expect("sized"));
    let epoch = u32::from_le_bytes(head[13..17].try_into().expect("sized"));
    let rn = u32::from_le_bytes(head[17..21].try_into().expect("sized")) as usize;
    let k = u32::from_le_bytes(head[21..25].try_into().expect("sized")) as usize;
    if status == SERVE_OK && (rn != n || k == 0) {
        return Err(bad("serving response shape mismatch"));
    }
    if rn.saturating_mul(k) > SERVE_MAX_ELEMS {
        return Err(bad("serving response too large"));
    }
    let mut payload = vec![0u8; rn * k * 4];
    stream.read_exact(&mut payload)?;
    let outputs: Vec<f32> = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(ServeReply {
        status,
        iter,
        epoch,
        outputs,
        k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy "model": output k=1, each row's output = dot(row, params[..d]).
    fn dot_infer() -> Arc<InferFn> {
        Arc::new(|snap, n, d, inputs| {
            if snap.params.len() < d {
                return None;
            }
            let mut out = Vec::with_capacity(n);
            for row in inputs.chunks(d) {
                out.push(row.iter().zip(&snap.params).map(|(x, w)| x * w).sum());
            }
            Some(out)
        })
    }

    #[test]
    fn serves_against_published_snapshot() {
        let cell = SnapshotCell::new();
        let server = ServingServer::serve("127.0.0.1:0", Arc::clone(&cell), dot_infer()).unwrap();
        let addr = server.addr().to_string();

        // Before the first publish: status 1, no outputs.
        let r = query(&addr, 1, 2, &[1.0, 1.0]).unwrap();
        assert_eq!(r.status, SERVE_NO_SNAPSHOT);
        assert!(r.outputs.is_empty());

        cell.publish(Snapshot {
            iter: 7,
            epoch: 3,
            params: vec![2.0, -1.0],
        });
        let r = query(&addr, 2, 2, &[1.0, 0.0, 0.5, 4.0]).unwrap();
        assert_eq!(r.status, SERVE_OK);
        assert_eq!(r.iter, 7);
        assert_eq!(r.epoch, 3);
        assert_eq!(r.k, 1);
        assert_eq!(r.outputs, vec![2.0, -3.0]);

        // A newer publish answers subsequent requests.
        cell.publish(Snapshot {
            iter: 8,
            epoch: 3,
            params: vec![0.0, 1.0],
        });
        let r = query(&addr, 1, 2, &[9.0, 5.0]).unwrap();
        assert_eq!((r.iter, r.outputs), (8, vec![5.0]));
    }

    #[test]
    fn rejects_malformed_requests() {
        let cell = SnapshotCell::new();
        cell.publish(Snapshot {
            iter: 1,
            epoch: 0,
            params: vec![1.0],
        });
        let server = ServingServer::serve("127.0.0.1:0", Arc::clone(&cell), dot_infer()).unwrap();
        let addr = server.addr();

        // Wrong magic.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"XXXX\x01\x00\x00\x00\x01\x00\x00\x00")
            .unwrap();
        s.write_all(&1.0f32.to_le_bytes()).unwrap();
        let mut head = [0u8; 25];
        s.read_exact(&mut head).unwrap();
        assert_eq!(&head[..4], &SERVE_RESP_MAGIC);
        assert_eq!(head[4], SERVE_BAD_REQUEST);

        // Width the model rejects (d wider than params).
        let r = query(&addr.to_string(), 1, 9, &[0.0; 9]).unwrap();
        assert_eq!(r.status, SERVE_BAD_REQUEST);

        // Port released after drop.
        drop(server);
        assert!(TcpListener::bind(addr).is_ok());
    }
}
