//! Map of the paper's API surface (Table 2) onto this crate.
//!
//! The paper specifies Poseidon's client-facing APIs in Table 2; this module
//! documents where each lives in the reproduction. It contains no code —
//! it is the compatibility contract, kept in one place and enforced by the
//! doc-links (rustdoc fails on broken references).
//!
//! | Table 2 method | Owner | Here |
//! |---|---|---|
//! | `BestScheme(layer)` | Coordinator | [`crate::coordinator::Coordinator::best_scheme`] |
//! | `Query(properties)` | Coordinator | [`crate::coordinator::Coordinator::query`] |
//! | `Send` (syncer) | Syncer | issued by the worker loop in [`crate::runtime`] the moment a layer's backward completes; the per-layer state machine is [`crate::syncer::Syncer`] |
//! | `Receive` (syncer) | Syncer | [`crate::syncer::Syncer::on_param_chunk`] / [`crate::syncer::Syncer::on_peer_sf`] / [`crate::syncer::Syncer::on_param_matrix`], completing via [`crate::syncer::Syncer::is_complete`] |
//! | `Move` (syncer) | Syncer | the flatten/apply pair: [`crate::syncer::flatten_grads`] (GPU→CPU direction) and [`crate::syncer::SyncOutcome`] application ([`crate::syncer::write_params_flat`], [`crate::syncer::apply_sf_batches`], [`crate::syncer::apply_delta_flat`]) |
//! | `Send` (KV store) | KV store | the broadcast a shard performs when a pair's update count reaches `P` — the `Some(params)` return of [`crate::kvstore::ShardState::receive_grad`] |
//! | `Receive` (KV store) | KV store | [`crate::kvstore::ShardState::receive_grad`] (BSP) and [`crate::kvstore::ShardState::receive_grad_async`] (bounded-async extension) |
//!
//! Other Section-4 behaviours and where they live:
//!
//! * 2MB KV pairs, hashed evenly over shards → [`crate::chunk::ChunkTable`]
//!   with [`crate::config::Partition::default_kv_pairs`].
//! * The completion vector `C` and "start next iteration when all entries are
//!   1" → the worker receive loop in [`crate::runtime`].
//! * Per-KV-pair update counts and broadcast-on-complete →
//!   [`crate::kvstore::ShardState`].
//! * Checkpointing "current parameter states for fault tolerance" →
//!   [`crate::kvstore::ShardState::checkpoint`] /
//!   [`crate::kvstore::ShardState::restore`].
//! * Straggler dropping → the simulator's
//!   [`crate::sim::SimConfig::drop_stragglers`].
//! * Algorithm 2 (`TRAIN`/`SYNC`) → the worker thread in [`crate::runtime`],
//!   with `net.BackwardThrough(l)` + `thread_pool.Schedule(sync(l))` realised
//!   as the gradient callback of [`poseidon_nn::Model::backward_with`].
