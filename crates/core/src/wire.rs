//! The wire layer: a self-describing, versioned frame codec plus the payload
//! codecs for the runtime's messages.
//!
//! Every [`Message`](crate::transport::Message) that crosses a transport is
//! encoded as one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  "PN"
//! 2       1     version (currently 4)
//! 3       1     tag (1 GradChunk | 2 ParamChunk | 3 SfPush | 4 ParamMatrix
//!                    | 5 Ack | 6 Nack | 7 Collective | 8 Handoff)
//! 4       8     iter        u64 LE (control frames: the ack/nack operand)
//! 12      4     codec(8) | layer(24)   u32 LE
//! 16      4     chunk       u32 LE (LAYER_GRANULAR_CHUNK where not applicable)
//! 20      4     payload_len u32 LE
//! 24      4     seq         u32 LE (per-link sequence number, 0 = unsequenced)
//! 28      4     src         u32 LE (sender *endpoint* id)
//! 32      4     epoch       u32 LE (sender's membership epoch)
//! 36      n     payload (opaque bytes, see the payload codecs below)
//! ```
//!
//! Version 2 added the trailing `seq`/`src` pair for the self-healing comm
//! plane (DESIGN.md §2.7): `src` names the sending endpoint (several
//! endpoints can share a physical node, so the node alone cannot identify a
//! reliability stream) and `seq` is that link's data-frame sequence number,
//! stamped by [`ReliableTransport`](crate::transport::ReliableTransport) and
//! zero everywhere else. The `Ack`/`Nack` control tags carry their cumulative
//! operand in the `iter` field and never reach the runtime — the reliable
//! layer consumes them.
//!
//! Version 3 packs a one-byte [`Codec`] id into the top 8 bits of the layer
//! word (layer indices are bounded by [`MAX_LAYER_INDEX`]), so every
//! gradient-bearing frame — PS push, parameter broadcast, ring/tree
//! collective — is self-describing about its payload encoding and
//! mixed-codec meshes interoperate.
//!
//! Version 4 appends a 4-byte membership `epoch` word (DESIGN.md §2.11) and
//! adds the `Handoff` tag carrying a KV pair's full server state during
//! elastic re-sharding. Every sender stamps its current epoch; receivers
//! drop-and-count data frames from a *stale* epoch (`epoch < current`) at
//! the transport layer, so a frame from before a reconfiguration can be
//! observed but never applied. Epoch 0 — the only epoch of a
//! fixed-membership run — makes the stamp inert.
//!
//! The frame is the single source of truth for byte accounting:
//! `Message::wire_bytes()` is *derived from the encoded frame*, so the
//! traffic counters can never drift from what actually crosses a socket.
//! The in-process transport counts `encode_frame(..).len()`; the TCP
//! transport counts the very buffer it writes.
//!
//! Payload codecs live behind the [`Codec`] registry
//! ([`poseidon_tensor::compress`]); this module adds the pooled fast paths
//! for the dominant identity codec. Sufficient-factor batches use
//! [`poseidon_tensor::bytesio`].

use crate::transport::Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};
pub use poseidon_tensor::compress::{Codec, CodecError};

/// First two bytes of every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"PN";

/// Current wire-format version. Decoders reject every other version.
pub const FRAME_VERSION: u8 = 4;

/// Largest layer index the v3 header can carry: the top 8 bits of the layer
/// word belong to the codec id.
pub const MAX_LAYER_INDEX: u32 = (1 << 24) - 1;

/// Packs the codec id and layer index into the header's layer word.
///
/// # Panics
///
/// Panics when `layer` exceeds [`MAX_LAYER_INDEX`].
pub fn pack_layer(codec: Codec, layer: u32) -> u32 {
    assert!(
        layer <= MAX_LAYER_INDEX,
        "layer index out of range: {layer}"
    );
    ((codec.wire_id() as u32) << 24) | layer
}

/// Inverse of [`pack_layer`]: `(codec_id, layer)`. The codec id is returned
/// raw so the caller can surface unknown ids as a decode error.
pub fn unpack_layer(word: u32) -> (u8, u32) {
    ((word >> 24) as u8, word & MAX_LAYER_INDEX)
}

/// Fixed size of the frame header preceding every payload.
pub const FRAME_HEADER_BYTES: usize = 36;

/// Upper bound on a frame payload; guards against corrupt length fields
/// causing huge allocations (VGG19-22K's largest layer is ~1.5 GB of f32s,
/// but it is chunked into 2 MB KV pairs long before framing).
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// Chunk id marking a layer-granular message (Adam / 1-bit paths), which
/// bypasses KV-pair chunking. Also written into the chunk field of frames
/// whose message variant carries no chunk id.
pub const LAYER_GRANULAR_CHUNK: u32 = u32::MAX;

const TAG_GRAD_CHUNK: u8 = 1;
const TAG_PARAM_CHUNK: u8 = 2;
const TAG_SF_PUSH: u8 = 3;
const TAG_PARAM_MATRIX: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_NACK: u8 = 6;
const TAG_COLLECTIVE: u8 = 7;
const TAG_HANDOFF: u8 = 8;

/// Collective route phase: accumulating towards the fold point (ring
/// `Reduce`, tree `Up`).
pub const COLLECTIVE_REDUCE: u8 = 0;
/// Collective route phase: folded update travelling back out (ring
/// `Distribute`, tree `Down`).
pub const COLLECTIVE_DISTRIBUTE: u8 = 1;

/// Packs a collective frame's route — phase, originating worker, segment
/// index — into the 32-bit chunk field: `phase(2) | origin(14) | seg(16)`.
/// With phase < 2 the result can never collide with
/// [`LAYER_GRANULAR_CHUNK`].
///
/// # Panics
///
/// Panics when a component exceeds its field width.
pub fn pack_collective(phase: u8, origin: usize, seg: usize) -> u32 {
    assert!(phase < 2, "collective phase out of range: {phase}");
    assert!(
        origin < (1 << 14),
        "collective origin out of range: {origin}"
    );
    assert!(seg < (1 << 16), "collective segment out of range: {seg}");
    ((phase as u32) << 30) | ((origin as u32) << 16) | seg as u32
}

/// Inverse of [`pack_collective`]: `(phase, origin, seg)`.
pub fn unpack_collective(route: u32) -> (u8, usize, usize) {
    (
        (route >> 30) as u8,
        ((route >> 16) & 0x3FFF) as usize,
        (route & 0xFFFF) as usize,
    )
}

/// Why a buffer failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does; `needed` is the total frame
    /// size in bytes (or the header size if even that is incomplete). A
    /// streaming decoder should read more; a whole-message decoder should
    /// reject the input as truncated.
    Incomplete {
        /// Total bytes the frame needs from the start of the buffer.
        needed: usize,
    },
    /// The first two bytes are not [`FRAME_MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte is not [`FRAME_VERSION`].
    BadVersion(u8),
    /// The tag byte names no known message variant.
    BadTag(u8),
    /// The codec bits of the layer word name no known [`Codec`].
    BadCodec(u8),
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete { needed } => {
                write!(f, "frame truncated (needs {needed} bytes)")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported frame version {v} (expected {FRAME_VERSION})"
                )
            }
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::BadCodec(c) => write!(f, "unknown codec id {c}"),
            FrameError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds the cap"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A parsed frame header; pair it with `payload_len` payload bytes and
/// [`assemble`] to recover the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Message variant tag (validated).
    tag: u8,
    /// Training iteration stamp.
    pub iter: u64,
    /// Payload codec (validated; identity for tags that carry none).
    pub codec: Codec,
    /// Layer index.
    pub layer: u32,
    /// Chunk index ([`LAYER_GRANULAR_CHUNK`] where the variant has none).
    pub chunk: u32,
    /// Payload bytes following the header.
    pub payload_len: usize,
    /// Per-link data-frame sequence number (0 = unsequenced).
    pub seq: u32,
    /// Sending endpoint id.
    pub src: u32,
    /// The sender's membership epoch at encode time (0 under fixed
    /// membership). Receivers drop-and-count data frames whose epoch is
    /// older than their own.
    pub epoch: u32,
}

/// Encodes a message as one unsequenced self-describing frame (`seq`/`src`
/// zero) — the form every transport uses when no reliability layer is
/// stacked on top.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`].
pub fn encode_frame(msg: &Message) -> Bytes {
    encode_frame_seq(msg, 0, 0)
}

/// Encodes a message as one self-describing frame stamped with the sending
/// endpoint `src` and per-link sequence number `seq`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`].
pub fn encode_frame_seq(msg: &Message, src: u32, seq: u32) -> Bytes {
    encode_frame_stamped(msg, src, seq, 0)
}

/// Encodes a message as one self-describing frame stamped with `src`, `seq`
/// and the sender's membership `epoch`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`].
pub fn encode_frame_stamped(msg: &Message, src: u32, seq: u32, epoch: u32) -> Bytes {
    let header = encode_header_stamped(msg, src, seq, epoch);
    let data = msg.payload();
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_BYTES + data.len());
    buf.put_slice(&header);
    buf.put_slice(data);
    buf.freeze()
}

/// [`encode_header_stamped`] at membership epoch 0 — the spelling for
/// fixed-membership paths.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`].
pub fn encode_header_seq(msg: &Message, src: u32, seq: u32) -> [u8; FRAME_HEADER_BYTES] {
    encode_header_stamped(msg, src, seq, 0)
}

/// Encodes only the fixed header of the frame for `msg`; the payload is the
/// message's own [`Bytes`] (see
/// [`Message::payload`](crate::transport::Message::payload)). The vectored
/// write path uses this split so header and payload go to the socket as two
/// `IoSlice`s and the payload bytes are never copied into a frame buffer.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`].
pub fn encode_header_stamped(
    msg: &Message,
    src: u32,
    seq: u32,
    epoch: u32,
) -> [u8; FRAME_HEADER_BYTES] {
    let (tag, iter, layer_word, chunk) = match msg {
        Message::GradChunk {
            iter,
            layer,
            chunk,
            codec,
            ..
        } => (TAG_GRAD_CHUNK, *iter, pack_layer(*codec, *layer), *chunk),
        Message::ParamChunk {
            iter,
            layer,
            chunk,
            codec,
            ..
        } => (TAG_PARAM_CHUNK, *iter, pack_layer(*codec, *layer), *chunk),
        Message::SfPush { iter, layer, .. } => (
            TAG_SF_PUSH,
            *iter,
            pack_layer(Codec::Identity, *layer),
            LAYER_GRANULAR_CHUNK,
        ),
        Message::ParamMatrix { iter, layer, .. } => (
            TAG_PARAM_MATRIX,
            *iter,
            pack_layer(Codec::Identity, *layer),
            LAYER_GRANULAR_CHUNK,
        ),
        Message::Ack { upto } => (TAG_ACK, *upto, 0, LAYER_GRANULAR_CHUNK),
        Message::Nack { expect } => (TAG_NACK, *expect, 0, LAYER_GRANULAR_CHUNK),
        Message::Collective {
            iter,
            layer,
            route,
            codec,
            ..
        } => (TAG_COLLECTIVE, *iter, pack_layer(*codec, *layer), *route),
        Message::Handoff {
            iter, layer, chunk, ..
        } => (
            TAG_HANDOFF,
            *iter,
            pack_layer(Codec::Identity, *layer),
            *chunk,
        ),
    };
    let payload_len = msg.payload().len();
    assert!(
        payload_len <= MAX_FRAME_PAYLOAD,
        "payload of {payload_len} bytes exceeds the frame cap"
    );
    let mut hdr = [0u8; FRAME_HEADER_BYTES];
    hdr[0..2].copy_from_slice(&FRAME_MAGIC);
    hdr[2] = FRAME_VERSION;
    hdr[3] = tag;
    hdr[4..12].copy_from_slice(&iter.to_le_bytes());
    hdr[12..16].copy_from_slice(&layer_word.to_le_bytes());
    hdr[16..20].copy_from_slice(&chunk.to_le_bytes());
    hdr[20..24].copy_from_slice(&(payload_len as u32).to_le_bytes());
    hdr[24..28].copy_from_slice(&seq.to_le_bytes());
    hdr[28..32].copy_from_slice(&src.to_le_bytes());
    hdr[32..36].copy_from_slice(&epoch.to_le_bytes());
    hdr
}

/// Validates and parses a frame header.
pub fn parse_header(hdr: &[u8; FRAME_HEADER_BYTES]) -> Result<FrameHeader, FrameError> {
    if hdr[0..2] != FRAME_MAGIC {
        return Err(FrameError::BadMagic([hdr[0], hdr[1]]));
    }
    if hdr[2] != FRAME_VERSION {
        return Err(FrameError::BadVersion(hdr[2]));
    }
    let tag = hdr[3];
    if !(TAG_GRAD_CHUNK..=TAG_HANDOFF).contains(&tag) {
        return Err(FrameError::BadTag(tag));
    }
    let mut rest = &hdr[4..];
    let iter = rest.get_u64_le();
    let layer_word = rest.get_u32_le();
    let chunk = rest.get_u32_le();
    let payload_len = rest.get_u32_le() as usize;
    let seq = rest.get_u32_le();
    let src = rest.get_u32_le();
    let epoch = rest.get_u32_le();
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(payload_len));
    }
    let (codec_id, layer) = unpack_layer(layer_word);
    let codec = Codec::from_wire_id(codec_id).ok_or(FrameError::BadCodec(codec_id))?;
    Ok(FrameHeader {
        tag,
        iter,
        codec,
        layer,
        chunk,
        payload_len,
        seq,
        src,
        epoch,
    })
}

/// Rebuilds the message from a validated header and its payload.
///
/// # Panics
///
/// Panics if `payload` does not match the header's declared length.
pub fn assemble(header: &FrameHeader, payload: Bytes) -> Message {
    assert_eq!(
        payload.len(),
        header.payload_len,
        "payload length does not match the frame header"
    );
    match header.tag {
        TAG_GRAD_CHUNK => Message::GradChunk {
            iter: header.iter,
            layer: header.layer,
            chunk: header.chunk,
            codec: header.codec,
            data: payload,
        },
        TAG_PARAM_CHUNK => Message::ParamChunk {
            iter: header.iter,
            layer: header.layer,
            chunk: header.chunk,
            codec: header.codec,
            data: payload,
        },
        TAG_SF_PUSH => Message::SfPush {
            iter: header.iter,
            layer: header.layer,
            data: payload,
        },
        TAG_PARAM_MATRIX => Message::ParamMatrix {
            iter: header.iter,
            layer: header.layer,
            data: payload,
        },
        TAG_ACK => Message::Ack { upto: header.iter },
        TAG_NACK => Message::Nack {
            expect: header.iter,
        },
        TAG_COLLECTIVE => Message::Collective {
            iter: header.iter,
            layer: header.layer,
            route: header.chunk,
            codec: header.codec,
            data: payload,
        },
        TAG_HANDOFF => Message::Handoff {
            iter: header.iter,
            layer: header.layer,
            chunk: header.chunk,
            data: payload,
        },
        other => unreachable!("parse_header admitted tag {other}"),
    }
}

/// Decodes one frame from the front of `buf`.
///
/// Returns the message and the number of bytes consumed, or
/// [`FrameError::Incomplete`] when `buf` holds less than one whole frame.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Incomplete {
            needed: FRAME_HEADER_BYTES,
        });
    }
    let mut hdr = [0u8; FRAME_HEADER_BYTES];
    hdr.copy_from_slice(&buf[..FRAME_HEADER_BYTES]);
    let header = parse_header(&hdr)?;
    let total = FRAME_HEADER_BYTES + header.payload_len;
    if buf.len() < total {
        return Err(FrameError::Incomplete { needed: total });
    }
    let payload = Bytes::copy_from_slice(&buf[FRAME_HEADER_BYTES..total]);
    Ok((assemble(&header, payload), total))
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Encodes a flat f32 slice. Thin unpooled-naming wrapper over
/// [`encode_f32s_pooled`] — there is exactly one encode implementation, so
/// the two spellings can never drift byte-wise.
pub fn encode_f32s(vals: &[f32]) -> Bytes {
    encode_f32s_pooled(vals)
}

/// Encodes a flat f32 slice into a recycled
/// [`BufPool`](crate::pool::BufPool) lease: the backing buffer comes from
/// (and returns to) the global pool instead of the allocator. The runtime's
/// gradient/parameter hot paths use this form, and it is the single encode
/// path behind the identity codec in the registry.
pub fn encode_f32s_pooled(vals: &[f32]) -> Bytes {
    let mut lease = crate::pool::BufPool::global().get(vals.len() * 4);
    for (dst, v) in lease.chunks_exact_mut(4).zip(vals) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
    lease.freeze()
}

/// Per-codec dense/wire byte counters, resolved once per process and keyed
/// by [`Codec::wire_id`] so the per-frame paths stay registry-free. The
/// `codec` label drops top-k's permille (encoder-side parameter) to keep the
/// cardinality bounded by the enum.
fn codec_counters(codec: Codec) -> &'static (crate::metrics::Counter, crate::metrics::Counter) {
    static TABLE: std::sync::OnceLock<Vec<(crate::metrics::Counter, crate::metrics::Counter)>> =
        std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        ["identity", "onebit", "f16", "bf16", "topk"]
            .iter()
            .map(|name| {
                (
                    crate::metrics::counter("poseidon_codec_bytes_pre_total", &[("codec", name)]),
                    crate::metrics::counter("poseidon_codec_bytes_post_total", &[("codec", name)]),
                )
            })
            .collect()
    });
    &table[codec.wire_id() as usize]
}

/// Single sender-side entry point of the codec registry: encodes `vals`
/// through `comp`, routing the identity codec through the pooled fast path
/// (bitwise identical to [`encode_f32s_pooled`], zero-copy on the frame
/// write) and every lossy codec through its own [`Compressor::compress`].
pub fn encode_codec(comp: &mut dyn poseidon_tensor::compress::Compressor, vals: &[f32]) -> Bytes {
    let payload = if comp.codec() == Codec::Identity {
        encode_f32s_pooled(vals)
    } else {
        comp.compress(vals)
    };
    let (pre, post) = codec_counters(comp.codec());
    pre.add((vals.len() * 4) as u64);
    post.add(payload.len() as u64);
    payload
}

/// Single receiver-side entry point of the codec registry: decodes a payload
/// stamped with `codec` back to `expect_elems` dense f32s, surfacing
/// truncation/corruption as a [`CodecError`] instead of panicking.
pub fn decode_codec(codec: Codec, buf: &[u8], expect_elems: usize) -> Result<Vec<f32>, CodecError> {
    let vals = poseidon_tensor::compress::decompress(codec, buf, expect_elems)?;
    let (pre, post) = codec_counters(codec);
    pre.add((vals.len() * 4) as u64);
    post.add(buf.len() as u64);
    Ok(vals)
}

/// Fused decode-add-encode for the ring-allreduce hot path, leasing the
/// output from the **global** pool: interprets `payload` as little-endian
/// f32s, adds `own` elementwise, and writes the sums straight into a
/// [`get_dirty`](crate::pool::BufPool::get_dirty) lease — no intermediate
/// `Vec<f32>` and no per-hop copy; every byte of the lease is overwritten.
///
/// Returns `None` when the lengths disagree or `payload` is misaligned.
pub fn add_f32s_pooled(payload: &[u8], own: &[f32]) -> Option<Bytes> {
    add_f32s_pooled_with(crate::pool::BufPool::global(), payload, own)
}

/// [`add_f32s_pooled`] against an explicit pool (tests use a private pool to
/// assert steady-state hit rates without cross-test interference).
pub fn add_f32s_pooled_with(
    pool: &std::sync::Arc<crate::pool::BufPool>,
    payload: &[u8],
    own: &[f32],
) -> Option<Bytes> {
    if payload.len() != own.len() * 4 {
        return None;
    }
    let mut lease = pool.get_dirty(payload.len());
    for ((dst, src), v) in lease
        .chunks_exact_mut(4)
        .zip(payload.chunks_exact(4))
        .zip(own)
    {
        let x = f32::from_le_bytes([src[0], src[1], src[2], src[3]]);
        dst.copy_from_slice(&(x + v).to_le_bytes());
    }
    Some(lease.freeze())
}

/// Decodes a buffer produced by [`encode_f32s`].
///
/// Returns `None` if the length is not a multiple of 4.
pub fn decode_f32s(mut buf: &[u8]) -> Option<Vec<f32>> {
    if !buf.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(buf.len() / 4);
    while buf.has_remaining() {
        out.push(buf.get_f32_le());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::GradChunk {
                iter: 7,
                layer: 3,
                chunk: 2,
                codec: Codec::Identity,
                data: encode_f32s(&[1.0, -2.5, 3.25]),
            },
            Message::ParamChunk {
                iter: u64::MAX,
                layer: MAX_LAYER_INDEX,
                chunk: LAYER_GRANULAR_CHUNK,
                codec: Codec::OneBit,
                data: Bytes::new(),
            },
            Message::SfPush {
                iter: 0,
                layer: 0,
                data: Bytes::from(vec![9u8; 17]),
            },
            Message::ParamMatrix {
                iter: 42,
                layer: 1,
                data: encode_f32s(&[f32::MIN, f32::MAX, 0.0]),
            },
            Message::Ack { upto: 12345 },
            Message::Nack { expect: u64::MAX },
            Message::Collective {
                iter: 11,
                layer: 2,
                route: pack_collective(COLLECTIVE_DISTRIBUTE, 3, 5),
                codec: Codec::TopK { permille: 100 },
                data: encode_f32s(&[4.0, -8.0]),
            },
            Message::Handoff {
                iter: 9,
                layer: 4,
                chunk: 1,
                data: Bytes::from(vec![0xAB; 24]),
            },
        ]
    }

    fn payload_len_of(msg: &Message) -> usize {
        match msg {
            Message::GradChunk { data, .. }
            | Message::ParamChunk { data, .. }
            | Message::SfPush { data, .. }
            | Message::ParamMatrix { data, .. }
            | Message::Collective { data, .. }
            | Message::Handoff { data, .. } => data.len(),
            Message::Ack { .. } | Message::Nack { .. } => 0,
        }
    }

    #[test]
    fn frames_roundtrip_every_variant() {
        for msg in sample_messages() {
            let frame = encode_frame(&msg);
            assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload_len_of(&msg));
            let (decoded, consumed) = decode_frame(&frame).expect("clean frame");
            assert_eq!(consumed, frame.len());
            assert_eq!(encode_frame(&decoded), frame, "re-encode must be stable");
        }
    }

    #[test]
    fn decode_consumes_exactly_one_frame() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        let mut off = 0;
        for m in &msgs {
            let (decoded, used) = decode_frame(&stream[off..]).expect("frame");
            assert_eq!(encode_frame(&decoded), encode_frame(m));
            off += used;
        }
        assert_eq!(off, stream.len());
    }

    #[test]
    fn truncated_frames_are_incomplete_not_garbage() {
        let frame = encode_frame(&sample_messages()[0]);
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(FrameError::Incomplete { needed }) => assert!(needed > cut),
                other => panic!("prefix of {cut} bytes decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let frame = encode_frame(&sample_messages()[0]).to_vec();
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&bad),
            Err(FrameError::BadMagic([b'X', _]))
        ));
        let mut bad = frame.clone();
        bad[2] = FRAME_VERSION + 1;
        assert!(matches!(
            decode_frame(&bad),
            Err(FrameError::BadVersion(v)) if v == FRAME_VERSION + 1
        ));
        let mut bad = frame.clone();
        bad[3] = 200;
        assert!(matches!(decode_frame(&bad), Err(FrameError::BadTag(200))));
        let mut bad = frame;
        bad[20..24].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(decode_frame(&bad), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn seq_and_src_roundtrip_through_the_header() {
        let msg = sample_messages().remove(0);
        let frame = encode_frame_seq(&msg, 7, 0xDEAD_BEEF);
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        hdr.copy_from_slice(&frame[..FRAME_HEADER_BYTES]);
        let parsed = parse_header(&hdr).expect("clean header");
        assert_eq!(parsed.seq, 0xDEAD_BEEF);
        assert_eq!(parsed.src, 7);
        // The seq/src stamp never changes the reassembled message.
        let (decoded, _) = decode_frame(&frame).expect("clean frame");
        assert_eq!(encode_frame(&decoded), encode_frame(&msg));
        // Unsequenced frames carry zeros.
        let plain = encode_frame(&msg);
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        hdr.copy_from_slice(&plain[..FRAME_HEADER_BYTES]);
        let parsed = parse_header(&hdr).unwrap();
        assert_eq!((parsed.seq, parsed.src), (0, 0));
    }

    #[test]
    fn epoch_roundtrips_through_every_tag() {
        for msg in sample_messages() {
            let frame = encode_frame_stamped(&msg, 3, 1, 0xCAFE_F00D);
            let mut hdr = [0u8; FRAME_HEADER_BYTES];
            hdr.copy_from_slice(&frame[..FRAME_HEADER_BYTES]);
            let parsed = parse_header(&hdr).expect("clean header");
            assert_eq!(parsed.epoch, 0xCAFE_F00D);
            // The epoch stamp never changes the reassembled message.
            let (decoded, _) = decode_frame(&frame).expect("clean frame");
            assert_eq!(encode_frame(&decoded), encode_frame(&msg));
        }
        // The epoch-0 spellings are bitwise equivalent.
        let msg = sample_messages().remove(0);
        assert_eq!(
            encode_frame_seq(&msg, 7, 9),
            encode_frame_stamped(&msg, 7, 9, 0)
        );
    }

    #[test]
    fn control_frames_carry_their_operand_and_no_payload() {
        for (msg, operand) in [
            (Message::Ack { upto: 99 }, 99u64),
            (Message::Nack { expect: 3 }, 3u64),
        ] {
            let frame = encode_frame(&msg);
            assert_eq!(frame.len(), FRAME_HEADER_BYTES, "control frames are bare");
            let (decoded, used) = decode_frame(&frame).expect("clean frame");
            assert_eq!(used, FRAME_HEADER_BYTES);
            assert_eq!(decoded.iter(), operand);
            assert_eq!(encode_frame(&decoded), frame);
        }
    }

    #[test]
    fn collective_route_packs_and_unpacks() {
        for phase in [COLLECTIVE_REDUCE, COLLECTIVE_DISTRIBUTE] {
            for origin in [0usize, 1, 13, (1 << 14) - 1] {
                for seg in [0usize, 7, (1 << 16) - 1] {
                    let route = pack_collective(phase, origin, seg);
                    assert_ne!(route, LAYER_GRANULAR_CHUNK);
                    assert_eq!(unpack_collective(route), (phase, origin, seg));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "origin out of range")]
    fn oversized_collective_origin_rejected() {
        pack_collective(COLLECTIVE_REDUCE, 1 << 14, 0);
    }

    #[test]
    fn fused_pooled_add_matches_decode_add_encode() {
        let a = vec![1.5f32, -2.25, 0.0, f32::MAX, -0.0];
        let b = vec![0.5f32, 2.25, -0.0, f32::MIN, 0.0];
        let payload = encode_f32s(&a);
        let fused = add_f32s_pooled(&payload, &b).expect("aligned");
        let naive: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(fused, encode_f32s(&naive), "bitwise-equal to the slow path");
        // Length mismatch and misalignment refuse instead of corrupting.
        assert!(add_f32s_pooled(&payload, &b[..3]).is_none());
        assert!(add_f32s_pooled(&payload[..payload.len() - 1], &b).is_none());
    }

    #[test]
    fn fused_pooled_add_reaches_zero_miss_steady_state() {
        // Satellite: ring segments ≥ 8 KiB must recycle pool leases
        // end-to-end. After one warm-up lap per buffer, every further hop is
        // a pool hit — zero misses while the steady-state loop runs.
        let pool = crate::pool::BufPool::new();
        let own = vec![1.0f32; 4096]; // 16 KiB segment
        let seed = encode_f32s(&own);
        // Warm-up: the steady state rotates two buffers (the held hop input
        // and the fresh output), so prime the pool with both — each a miss.
        let w1 = add_f32s_pooled_with(&pool, &seed, &own).unwrap();
        let w2 = add_f32s_pooled_with(&pool, &w1, &own).unwrap();
        drop(w1);
        drop(w2);
        let misses_before = pool.stats().misses;
        let mut payload = seed;
        for _ in 0..64 {
            let next = add_f32s_pooled_with(&pool, &payload, &own).unwrap();
            payload = next; // dropping the previous lease returns it
        }
        let stats = pool.stats();
        assert_eq!(
            stats.misses, misses_before,
            "steady-state ring hops must never miss the pool"
        );
        assert!(stats.hits >= 64, "hits {}", stats.hits);
    }

    #[test]
    fn f32_roundtrip() {
        let vals = vec![1.5f32, -2.25, 0.0, f32::MAX];
        let bytes = encode_f32s(&vals);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_f32s(&bytes).unwrap(), vals);
    }

    #[test]
    fn f32_rejects_misaligned() {
        assert!(decode_f32s(&[0u8; 5]).is_none());
        assert_eq!(decode_f32s(&[]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn codec_id_rides_the_layer_word() {
        for codec in [
            Codec::Identity,
            Codec::OneBit,
            Codec::F16,
            Codec::Bf16,
            Codec::TopK { permille: 100 },
        ] {
            let msg = Message::GradChunk {
                iter: 5,
                layer: 1234,
                chunk: 0,
                codec,
                data: Bytes::from(vec![0u8; 8]),
            };
            let frame = encode_frame(&msg);
            let mut hdr = [0u8; FRAME_HEADER_BYTES];
            hdr.copy_from_slice(&frame[..FRAME_HEADER_BYTES]);
            let parsed = parse_header(&hdr).expect("clean header");
            assert_eq!(parsed.codec.wire_id(), codec.wire_id());
            assert_eq!(parsed.layer, 1234, "codec bits must not leak into layer");
            let (decoded, _) = decode_frame(&frame).expect("clean frame");
            assert_eq!(encode_frame(&decoded), frame);
        }
    }

    #[test]
    fn identity_frames_differ_from_v2_only_in_version_byte() {
        // Guards the bitwise-compat story: codec id 0 leaves every other
        // header byte exactly as version 2 wrote it.
        let msg = sample_messages().remove(0);
        let frame = encode_frame(&msg);
        assert_eq!(frame[2], FRAME_VERSION);
        let (_, layer) = unpack_layer(u32::from_le_bytes([
            frame[12], frame[13], frame[14], frame[15],
        ]));
        assert_eq!(layer, 3);
        assert_eq!(frame[15], 0, "identity codec id is zero");
    }

    #[test]
    fn unknown_codec_id_is_rejected() {
        let frame = encode_frame(&sample_messages()[0]).to_vec();
        let mut bad = frame;
        bad[15] = 0xEE; // top byte of the layer word (LE) = codec id
        assert!(matches!(
            decode_frame(&bad),
            Err(FrameError::BadCodec(0xEE))
        ));
    }

    #[test]
    #[should_panic(expected = "layer index out of range")]
    fn oversized_layer_index_rejected() {
        pack_layer(Codec::Identity, MAX_LAYER_INDEX + 1);
    }

    #[test]
    fn codec_registry_identity_is_bitwise_pooled_path() {
        let vals = vec![1.5f32, -2.25, 0.0, f32::MAX, -0.0];
        let mut comp = poseidon_tensor::compress::make_compressor(Codec::Identity, vals.len());
        let enc = encode_codec(comp.as_mut(), &vals);
        assert_eq!(enc, encode_f32s_pooled(&vals));
        let back = decode_codec(Codec::Identity, &enc, vals.len()).expect("clean");
        let bits: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn codec_registry_surfaces_corruption() {
        let vals = vec![0.25f32; 64];
        for codec in [Codec::OneBit, Codec::F16, Codec::TopK { permille: 500 }] {
            let mut comp = poseidon_tensor::compress::make_compressor(codec, vals.len());
            let enc = encode_codec(comp.as_mut(), &vals);
            assert!(decode_codec(codec, &enc, vals.len()).is_ok());
            assert!(decode_codec(codec, &enc[..enc.len() - 1], vals.len()).is_err());
        }
    }
}
