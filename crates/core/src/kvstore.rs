//! The bulk-synchronous KV-store shard state machine.
//!
//! Each shard holds the master copy of the KV pairs assigned to it and
//! implements the consistency protocol of Section 4.1: "the KV store
//! maintains a zero-initialized count value for each KV pair at the start of
//! each iteration. Every time an update is applied on a KV pair, its count
//! value is increased by 1. The KV pair will be broadcast via its Send API
//! when its count equals the number of workers."
//!
//! Aggregation is deterministic: per-worker gradients are buffered and summed
//! in worker-id order once complete, so two runs with identical inputs
//! produce bitwise-identical parameters (the distributed-equals-serial tests
//! rely on this).

use std::collections::HashMap;

/// Key of one KV pair: `(layer index, chunk index within the layer)`.
pub type KvKey = (u32, u32);

/// One shard of the globally-shared parameters.
#[derive(Debug)]
pub struct ShardState {
    workers: usize,
    /// `-lr / P` — the coefficient applied to the summed gradient. Negative
    /// because workers send raw loss gradients.
    update_scale: f32,
    /// Classical momentum coefficient µ (0 = plain SGD). The shard keeps one
    /// velocity buffer per KV pair in *scaled* form — `v ← µ·v + scale·Σg`,
    /// `θ += v` — which is exactly serial momentum SGD on the averaged
    /// gradient, and stays exact when the learning rate is rescheduled
    /// mid-run.
    momentum: f32,
    params: HashMap<KvKey, Vec<f32>>,
    velocity: HashMap<KvKey, Vec<f32>>,
    pending: HashMap<KvKey, Vec<Option<Vec<f32>>>>,
}

impl ShardState {
    /// Creates a shard expecting updates from `workers` workers per KV pair
    /// per iteration, applying `update_scale · Σ gradients` each round.
    pub fn new(workers: usize, update_scale: f32) -> Self {
        Self::with_momentum(workers, update_scale, 0.0)
    }

    /// Like [`Self::new`] but with server-side classical momentum.
    pub fn with_momentum(workers: usize, update_scale: f32, momentum: f32) -> Self {
        assert!(workers > 0, "shard needs at least one worker");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            workers,
            update_scale,
            momentum,
            params: HashMap::new(),
            velocity: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// Installs the initial master copy of a KV pair.
    pub fn init_pair(&mut self, key: KvKey, values: Vec<f32>) {
        self.params.insert(key, values);
    }

    /// Number of KV pairs hosted.
    pub fn num_pairs(&self) -> usize {
        self.params.len()
    }

    /// Read-only view of a KV pair's master copy.
    pub fn pair(&self, key: KvKey) -> Option<&[f32]> {
        self.params.get(&key).map(Vec::as_slice)
    }

    /// Receives one worker's gradient for a KV pair.
    ///
    /// Returns `Some(updated parameters)` when this was the last missing
    /// worker (count reached `P`): the summed gradient has been applied and
    /// the fresh master copy should be broadcast. Returns `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the pair was never initialised, the gradient length doesn't
    /// match, the worker id is out of range, or the same worker reports twice
    /// in one round (a BSP protocol violation).
    pub fn receive_grad(&mut self, worker: usize, key: KvKey, grad: &[f32]) -> Option<Vec<f32>> {
        if !self.stage_grad(worker, key, grad) {
            return None;
        }
        let delta = self.fold_velocity(key);
        Some(self.apply_delta(key, &delta))
    }

    /// Like [`Self::receive_grad`], but when the count reaches `P` it returns
    /// the folded **update delta** (the scaled velocity) *without* applying
    /// it to the master copy. The compression plane uses this to encode the
    /// delta lossily and then [`Self::apply_delta`] exactly what the workers
    /// will decode, keeping master and replicas bitwise in lockstep.
    pub fn receive_grad_deferred(
        &mut self,
        worker: usize,
        key: KvKey,
        grad: &[f32],
    ) -> Option<Vec<f32>> {
        if !self.stage_grad(worker, key, grad) {
            return None;
        }
        Some(self.fold_velocity(key))
    }

    /// Adds `delta` to a KV pair's master copy and returns the fresh copy —
    /// the second half of the deferred path.
    ///
    /// # Panics
    ///
    /// Panics if the pair was never initialised or the length mismatches.
    pub fn apply_delta(&mut self, key: KvKey, delta: &[f32]) -> Vec<f32> {
        let master = self
            .params
            .get_mut(&key)
            .unwrap_or_else(|| panic!("KV pair {key:?} not initialised on this shard"));
        assert_eq!(
            delta.len(),
            master.len(),
            "delta length mismatch for {key:?}"
        );
        for (p, &v) in master.iter_mut().zip(delta.iter()) {
            *p += v;
        }
        master.clone()
    }

    /// Buffers one worker's gradient; `true` when the count reached `P`.
    fn stage_grad(&mut self, worker: usize, key: KvKey, grad: &[f32]) -> bool {
        assert!(worker < self.workers, "worker {worker} out of range");
        let master = self
            .params
            .get(&key)
            .unwrap_or_else(|| panic!("KV pair {key:?} not initialised on this shard"));
        assert_eq!(
            grad.len(),
            master.len(),
            "gradient length mismatch for {key:?}"
        );

        let slots = self
            .pending
            .entry(key)
            .or_insert_with(|| vec![None; self.workers]);
        assert!(
            slots[worker].is_none(),
            "worker {worker} sent two updates for {key:?} in one BSP round"
        );
        slots[worker] = Some(grad.to_vec());
        slots.iter().all(Option::is_some)
    }

    /// Folds the completed round's gradients in worker-id order
    /// (deterministic) into the scaled velocity, resets the round, and
    /// returns the velocity — the exact `θ`-delta for this round.
    fn fold_velocity(&mut self, key: KvKey) -> Vec<f32> {
        let slots = self.pending.remove(&key).expect("round not complete");
        let len = self.params[&key].len();
        let velocity = self.velocity.entry(key).or_insert_with(|| vec![0.0; len]);
        if self.momentum != 0.0 {
            for v in velocity.iter_mut() {
                *v *= self.momentum;
            }
        } else {
            velocity.fill(0.0);
        }
        for g in slots.into_iter().map(|s| s.expect("checked complete")) {
            for (v, gv) in velocity.iter_mut().zip(&g) {
                *v += self.update_scale * gv;
            }
        }
        velocity.clone()
    }

    /// Changes the update scale (`-lr / P`), e.g. when a learning-rate
    /// schedule steps between BSP rounds. The scaled velocity is untouched —
    /// exactly how a serial optimiser decays its learning rate.
    pub fn set_update_scale(&mut self, scale: f32) {
        self.update_scale = scale;
    }

    /// Number of workers that have reported for `key` in the current round.
    pub fn pending_count(&self, key: KvKey) -> usize {
        self.pending
            .get(&key)
            .map_or(0, |slots| slots.iter().filter(|s| s.is_some()).count())
    }

    /// Every hosted pair's key in sorted order — the deterministic iteration
    /// order for handoffs and checkpoints.
    pub fn sorted_keys(&self) -> Vec<KvKey> {
        let mut keys: Vec<KvKey> = self.params.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Exports one pair's full optimiser state `(params, velocity)` for an
    /// elastic handoff or checkpoint. The velocity is empty when no round has
    /// folded yet (the new owner starts it at zeros, exactly like this shard
    /// would have).
    pub fn export_pair(&self, key: KvKey) -> Option<(Vec<f32>, Vec<f32>)> {
        let params = self.params.get(&key)?.clone();
        let velocity = self.velocity.get(&key).cloned().unwrap_or_default();
        Some((params, velocity))
    }

    /// Installs a pair exported by [`Self::export_pair`] — master copy plus
    /// optimiser velocity (empty = never folded).
    ///
    /// # Panics
    ///
    /// Panics if the pair already exists here, or on a velocity length
    /// mismatch.
    pub fn install_pair(&mut self, key: KvKey, params: Vec<f32>, velocity: Vec<f32>) {
        assert!(
            !self.params.contains_key(&key),
            "KV pair {key:?} already hosted on this shard"
        );
        if !velocity.is_empty() {
            assert_eq!(
                velocity.len(),
                params.len(),
                "velocity length mismatch for {key:?}"
            );
            self.velocity.insert(key, velocity);
        }
        self.params.insert(key, params);
    }

    /// Drops a pair whose ownership moved to another shard.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not hosted here or a BSP round is in flight for
    /// it (handoffs happen only at quiesced iteration boundaries).
    pub fn remove_pair(&mut self, key: KvKey) {
        assert!(
            self.pending.remove(&key).is_none(),
            "KV pair {key:?} handed off mid-round"
        );
        assert!(
            self.params.remove(&key).is_some(),
            "KV pair {key:?} not hosted on this shard"
        );
        self.velocity.remove(&key);
    }

    /// Applies one worker's gradient immediately (no update counting) and
    /// returns the fresh master copy — the bounded-asynchronous path
    /// (Section 3 notes Poseidon's design "can easily be applied to
    /// asynchronous or bounded-asynchronous consistency models"; staleness
    /// enforcement lives with the workers' clock, not the shard).
    ///
    /// # Panics
    ///
    /// Panics if the pair was never initialised or the length mismatches.
    pub fn receive_grad_async(&mut self, _worker: usize, key: KvKey, grad: &[f32]) -> Vec<f32> {
        let master = self
            .params
            .get_mut(&key)
            .unwrap_or_else(|| panic!("KV pair {key:?} not initialised on this shard"));
        assert_eq!(
            grad.len(),
            master.len(),
            "gradient length mismatch for {key:?}"
        );
        for (p, g) in master.iter_mut().zip(grad) {
            *p += self.update_scale * g;
        }
        master.clone()
    }

    /// Serialises the master copies of every KV pair — the shard's
    /// fault-tolerance checkpoint ("it will regularly checkpoint current
    /// parameter states", Section 4.1). In-flight (pending) gradients are
    /// deliberately *not* checkpointed: under BSP a restore rolls back to the
    /// last completed round and workers resend.
    pub fn checkpoint(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut keys: Vec<KvKey> = self.params.keys().copied().collect();
        keys.sort_unstable();
        let mut buf = bytes::BytesMut::new();
        buf.put_u32_le(keys.len() as u32);
        for key in keys {
            let values = &self.params[&key];
            buf.put_u32_le(key.0);
            buf.put_u32_le(key.1);
            buf.put_u32_le(values.len() as u32);
            for &v in values {
                buf.put_f32_le(v);
            }
        }
        buf.to_vec()
    }

    /// Restores the master copies from a [`Self::checkpoint`] buffer,
    /// replacing all current pairs and clearing any pending round.
    ///
    /// Returns the number of pairs restored, or `None` if the buffer is
    /// corrupt (in which case the shard is left unchanged).
    pub fn restore(&mut self, checkpoint: &[u8]) -> Option<usize> {
        use bytes::Buf;
        let mut buf = checkpoint;
        if buf.remaining() < 4 {
            return None;
        }
        let count = buf.get_u32_le() as usize;
        let mut params = HashMap::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 12 {
                return None;
            }
            let layer = buf.get_u32_le();
            let chunk = buf.get_u32_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len * 4 {
                return None;
            }
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(buf.get_f32_le());
            }
            params.insert((layer, chunk), values);
        }
        if buf.has_remaining() {
            return None;
        }
        self.params = params;
        self.pending.clear();
        self.velocity.clear();
        Some(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_fires_only_when_all_workers_reported() {
        let mut shard = ShardState::new(3, -1.0);
        shard.init_pair((0, 0), vec![10.0, 20.0]);
        assert!(shard.receive_grad(0, (0, 0), &[1.0, 1.0]).is_none());
        assert_eq!(shard.pending_count((0, 0)), 1);
        assert!(shard.receive_grad(2, (0, 0), &[2.0, 2.0]).is_none());
        let updated = shard.receive_grad(1, (0, 0), &[3.0, 3.0]).unwrap();
        assert_eq!(updated, vec![10.0 - 6.0, 20.0 - 6.0]);
        assert_eq!(
            shard.pending_count((0, 0)),
            0,
            "round resets after broadcast"
        );
    }

    #[test]
    fn pair_handoff_moves_optimizer_state_exactly() {
        // Fold one momentum round on shard A, move the pair to shard B, and
        // check the next round folds bitwise-identically to never moving.
        let mut stay = ShardState::with_momentum(2, -0.5, 0.9);
        stay.init_pair((0, 0), vec![1.0, 2.0]);
        let mut a = ShardState::with_momentum(2, -0.5, 0.9);
        a.init_pair((0, 0), vec![1.0, 2.0]);
        for shard in [&mut stay, &mut a] {
            shard.receive_grad(0, (0, 0), &[1.0, -1.0]);
            shard.receive_grad(1, (0, 0), &[3.0, 0.5]);
        }
        let (params, velocity) = a.export_pair((0, 0)).unwrap();
        a.remove_pair((0, 0));
        assert_eq!(a.num_pairs(), 0);
        assert!(a.export_pair((0, 0)).is_none());
        let mut b = ShardState::with_momentum(2, -0.5, 0.9);
        b.install_pair((0, 0), params, velocity);
        for shard in [&mut stay, &mut b] {
            shard.receive_grad(0, (0, 0), &[0.25, 4.0]);
            shard.receive_grad(1, (0, 0), &[-2.0, 1.0]);
        }
        let bits = |s: &ShardState| -> Vec<u32> {
            s.pair((0, 0))
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(&stay), bits(&b), "handoff changed the trajectory");
    }

    #[test]
    fn sorted_keys_is_deterministic() {
        let mut shard = ShardState::new(1, -1.0);
        shard.init_pair((2, 0), vec![0.0]);
        shard.init_pair((0, 1), vec![0.0]);
        shard.init_pair((0, 0), vec![0.0]);
        assert_eq!(shard.sorted_keys(), vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    #[should_panic(expected = "handed off mid-round")]
    fn mid_round_handoff_panics() {
        let mut shard = ShardState::new(2, -1.0);
        shard.init_pair((0, 0), vec![0.0]);
        shard.receive_grad(0, (0, 0), &[1.0]);
        shard.remove_pair((0, 0));
    }

    #[test]
    fn update_scale_is_applied() {
        let mut shard = ShardState::new(2, -0.5);
        shard.init_pair((1, 0), vec![0.0]);
        shard.receive_grad(0, (1, 0), &[4.0]);
        let updated = shard.receive_grad(1, (1, 0), &[6.0]).unwrap();
        assert_eq!(updated, vec![-5.0]);
    }

    #[test]
    fn aggregation_order_is_worker_id_not_arrival() {
        // With f32 the fold order matters; arrival order must not.
        let run = |order: &[usize]| {
            let mut shard = ShardState::new(3, 1.0);
            shard.init_pair((0, 0), vec![0.0]);
            let grads = [1.0e-8f32, 1.0f32, -1.0f32];
            let mut out = None;
            for &w in order {
                out = shard.receive_grad(w, (0, 0), &[grads[w]]);
            }
            out.unwrap()[0]
        };
        assert_eq!(run(&[0, 1, 2]).to_bits(), run(&[2, 1, 0]).to_bits());
        assert_eq!(run(&[1, 0, 2]).to_bits(), run(&[2, 0, 1]).to_bits());
    }

    #[test]
    fn independent_pairs_progress_independently() {
        let mut shard = ShardState::new(2, -1.0);
        shard.init_pair((0, 0), vec![1.0]);
        shard.init_pair((5, 3), vec![2.0]);
        assert!(shard.receive_grad(0, (0, 0), &[1.0]).is_none());
        assert!(shard.receive_grad(0, (5, 3), &[1.0]).is_none());
        assert!(shard.receive_grad(1, (5, 3), &[1.0]).is_some());
        assert!(shard.receive_grad(1, (0, 0), &[1.0]).is_some());
        assert_eq!(shard.num_pairs(), 2);
    }

    #[test]
    fn multiple_rounds_accumulate() {
        let mut shard = ShardState::new(1, -1.0);
        shard.init_pair((0, 0), vec![10.0]);
        shard.receive_grad(0, (0, 0), &[1.0]);
        shard.receive_grad(0, (0, 0), &[1.0]);
        assert_eq!(shard.pair((0, 0)).unwrap(), &[8.0]);
    }

    #[test]
    fn deferred_path_matches_receive_grad_when_delta_applied_verbatim() {
        let mut direct = ShardState::with_momentum(2, -0.5, 0.9);
        let mut deferred = ShardState::with_momentum(2, -0.5, 0.9);
        for s in [&mut direct, &mut deferred] {
            s.init_pair((0, 0), vec![1.0, -2.0, 3.0]);
        }
        for round in 0..3 {
            let g0 = [1.0 + round as f32, 0.5, -1.0];
            let g1 = [0.25, -0.125, 2.0];
            let a = {
                direct.receive_grad(0, (0, 0), &g0);
                direct.receive_grad(1, (0, 0), &g1).unwrap()
            };
            let b = {
                deferred.receive_grad_deferred(0, (0, 0), &g0);
                let delta = deferred.receive_grad_deferred(1, (0, 0), &g1).unwrap();
                deferred.apply_delta((0, 0), &delta)
            };
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "round {round}");
        }
    }

    #[test]
    fn deferred_delta_is_the_scaled_velocity_not_the_params() {
        let mut shard = ShardState::new(1, -1.0);
        shard.init_pair((0, 0), vec![10.0]);
        let delta = shard.receive_grad_deferred(0, (0, 0), &[4.0]).unwrap();
        assert_eq!(delta, vec![-4.0], "delta is -lr·Σg");
        assert_eq!(shard.pair((0, 0)).unwrap(), &[10.0], "master untouched");
        let fresh = shard.apply_delta((0, 0), &delta);
        assert_eq!(fresh, vec![6.0]);
    }

    #[test]
    fn momentum_accumulates_velocity_across_rounds() {
        // v1 = g = 4; theta = -4*0.25... scale -1: theta1 = 10 - 4 = 6.
        // v2 = 0.5*4 + 4 = 6; theta2 = 6 - 6 = 0.
        let mut shard = ShardState::with_momentum(1, -1.0, 0.5);
        shard.init_pair((0, 0), vec![10.0]);
        let t1 = shard.receive_grad(0, (0, 0), &[4.0]).unwrap();
        assert_eq!(t1, vec![6.0]);
        let t2 = shard.receive_grad(0, (0, 0), &[4.0]).unwrap();
        assert_eq!(t2, vec![0.0]);
    }

    #[test]
    fn zero_momentum_matches_plain_shard() {
        let mut plain = ShardState::new(2, -0.5);
        let mut with = ShardState::with_momentum(2, -0.5, 0.0);
        for s in [&mut plain, &mut with] {
            s.init_pair((0, 0), vec![1.0, 2.0]);
            s.receive_grad(0, (0, 0), &[1.0, -1.0]);
            s.receive_grad(1, (0, 0), &[3.0, 1.0]);
        }
        assert_eq!(plain.pair((0, 0)), with.pair((0, 0)));
    }

    #[test]
    fn restore_resets_velocity() {
        let mut shard = ShardState::with_momentum(1, -1.0, 0.9);
        shard.init_pair((0, 0), vec![0.0]);
        let ckpt = shard.checkpoint();
        shard.receive_grad(0, (0, 0), &[1.0]);
        shard.restore(&ckpt).unwrap();
        // After restore, velocity must start from zero again.
        let t = shard.receive_grad(0, (0, 0), &[1.0]).unwrap();
        assert_eq!(t, vec![-1.0], "no stale velocity after rollback");
    }

    #[test]
    fn checkpoint_roundtrips_master_state() {
        let mut shard = ShardState::new(2, -1.0);
        shard.init_pair((0, 0), vec![1.0, 2.0]);
        shard.init_pair((3, 1), vec![-4.5]);
        let ckpt = shard.checkpoint();

        let mut restored = ShardState::new(2, -1.0);
        assert_eq!(restored.restore(&ckpt), Some(2));
        assert_eq!(restored.pair((0, 0)).unwrap(), &[1.0, 2.0]);
        assert_eq!(restored.pair((3, 1)).unwrap(), &[-4.5]);
    }

    #[test]
    fn restore_discards_pending_round() {
        let mut shard = ShardState::new(2, -1.0);
        shard.init_pair((0, 0), vec![0.0]);
        let ckpt = shard.checkpoint();
        shard.receive_grad(0, (0, 0), &[5.0]);
        assert_eq!(shard.pending_count((0, 0)), 1);
        shard.restore(&ckpt).unwrap();
        assert_eq!(
            shard.pending_count((0, 0)),
            0,
            "in-flight gradients roll back"
        );
        // The same worker may now resend without a protocol violation.
        shard.receive_grad(0, (0, 0), &[5.0]);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_without_damage() {
        let mut shard = ShardState::new(1, -1.0);
        shard.init_pair((0, 0), vec![7.0]);
        let mut ckpt = shard.checkpoint();
        ckpt.truncate(ckpt.len() - 1);
        assert_eq!(shard.restore(&ckpt), None);
        assert_eq!(
            shard.pair((0, 0)).unwrap(),
            &[7.0],
            "failed restore must not corrupt"
        );
        // Trailing garbage is also rejected.
        let mut long = shard.checkpoint();
        long.push(0);
        assert_eq!(shard.restore(&long), None);
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let mut a = ShardState::new(1, -1.0);
        a.init_pair((2, 0), vec![1.0]);
        a.init_pair((1, 0), vec![2.0]);
        let mut b = ShardState::new(1, -1.0);
        b.init_pair((1, 0), vec![2.0]);
        b.init_pair((2, 0), vec![1.0]);
        assert_eq!(a.checkpoint(), b.checkpoint(), "key order must not leak");
    }

    #[test]
    #[should_panic(expected = "two updates")]
    fn double_report_is_a_protocol_violation() {
        let mut shard = ShardState::new(2, -1.0);
        shard.init_pair((0, 0), vec![0.0]);
        shard.receive_grad(0, (0, 0), &[1.0]);
        shard.receive_grad(0, (0, 0), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "not initialised")]
    fn unknown_pair_panics() {
        let mut shard = ShardState::new(1, -1.0);
        shard.receive_grad(0, (9, 9), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let mut shard = ShardState::new(1, -1.0);
        shard.init_pair((0, 0), vec![0.0, 0.0]);
        shard.receive_grad(0, (0, 0), &[1.0]);
    }
}
