//! Per-peer health verdicts derived from the metrics plane.
//!
//! Poseidon's evaluation is about *where time goes* (§5); this module is the
//! first consumer of the [`crate::metrics`] snapshot API that turns those
//! distributions into actionable verdicts: a **straggler detector** flagging
//! workers whose per-iteration busy time diverges from the mesh median by a
//! configurable factor.
//!
//! Why busy time and not sync wait: under BSP the straggler's *own* sync
//! wait is the smallest in the mesh — everyone else is waiting for it, so
//! the delayed worker finds its parameters nearly ready when it finally
//! asks. The tell is the p50 of the worker's busy span (forward + backward +
//! any injected delay), which is exactly what the runtime records into
//! `poseidon_busy_time_ns{worker}`. The detector compares each worker's
//! busy p50 against the mesh median and flags ratios above
//! [`HealthConfig::straggler_factor`].
//!
//! Surfaced in [`TrainResult::health`](crate::runtime::TrainResult) and
//! printed by the `poseidon-node` launcher (which reconstructs the same
//! verdict across OS processes from each child's reported busy p50).

use crate::metrics::MetricsSnapshot;

/// Health-plane knobs, carried on
/// [`RuntimeConfig`](crate::runtime::RuntimeConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// A worker is a straggler when its busy-time p50 exceeds the mesh
    /// median by this factor.
    pub straggler_factor: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            straggler_factor: 2.0,
        }
    }
}

/// One worker's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerVerdict {
    /// Worker index.
    pub worker: usize,
    /// This worker's per-iteration busy-time p50 (ns).
    pub busy_p50_ns: u64,
    /// Ratio of this worker's p50 to the mesh median.
    pub ratio: f64,
    /// Whether the ratio exceeded the configured factor.
    pub straggler: bool,
}

/// The mesh-wide health verdict.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// One verdict per worker, sorted by worker index.
    pub verdicts: Vec<PeerVerdict>,
    /// The mesh median busy p50 the ratios are relative to (ns).
    pub median_busy_p50_ns: u64,
    /// The factor verdicts were judged against.
    pub straggler_factor: f64,
}

impl HealthReport {
    /// Workers flagged as stragglers.
    pub fn stragglers(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .filter(|v| v.straggler)
            .map(|v| v.worker)
            .collect()
    }

    /// One line per worker plus a mesh summary, launcher-printable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.verdicts {
            out.push_str(&format!(
                "health worker={} busy_p50={:.2}ms x{:.2}{}\n",
                v.worker,
                v.busy_p50_ns as f64 / 1e6,
                v.ratio,
                if v.straggler { " STRAGGLER" } else { "" }
            ));
        }
        let s = self.stragglers();
        if s.is_empty() {
            out.push_str("health=ok\n");
        } else {
            out.push_str(&format!(
                "health=straggler workers={}\n",
                s.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
            ));
        }
        out
    }
}

/// Lower median of a non-empty slice (sorted copy, index `(n-1)/2`): robust
/// against a single inflated straggler at even worker counts — the upper
/// median at P=2 would *be* the straggler.
fn median(mut vals: Vec<u64>) -> u64 {
    vals.sort_unstable();
    vals[(vals.len() - 1) / 2]
}

/// Judges each `(worker, busy_p50_ns)` pair against the mesh median.
pub fn detect(busy_p50: &[(usize, u64)], factor: f64) -> HealthReport {
    if busy_p50.is_empty() {
        return HealthReport {
            verdicts: Vec::new(),
            median_busy_p50_ns: 0,
            straggler_factor: factor,
        };
    }
    let med = median(busy_p50.iter().map(|&(_, v)| v).collect());
    let mut verdicts: Vec<PeerVerdict> = busy_p50
        .iter()
        .map(|&(worker, p50)| {
            let ratio = if med == 0 {
                if p50 == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                p50 as f64 / med as f64
            };
            PeerVerdict {
                worker,
                busy_p50_ns: p50,
                ratio,
                straggler: ratio > factor,
            }
        })
        .collect();
    verdicts.sort_by_key(|v| v.worker);
    HealthReport {
        verdicts,
        median_busy_p50_ns: med,
        straggler_factor: factor,
    }
}

/// [`detect`] over a metrics snapshot: reads every
/// `poseidon_busy_time_ns{worker}` histogram's p50. This is the live-mesh
/// entry point — point it at a scraped-and-parsed snapshot or a local
/// [`crate::metrics::snapshot`].
pub fn from_snapshot(snap: &MetricsSnapshot, factor: f64) -> HealthReport {
    let mut busy: Vec<(usize, u64)> = Vec::new();
    if let Some(fam) = snap.family("poseidon_busy_time_ns") {
        for s in &fam.samples {
            let worker = s
                .labels
                .iter()
                .find(|(k, _)| *k == "worker")
                .and_then(|(_, v)| v.parse::<usize>().ok());
            if let (Some(w), crate::metrics::SampleValue::Hist(h)) = (worker, &s.value) {
                busy.push((w, h.quantile(0.5)));
            }
        }
    }
    detect(&busy, factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_only_the_delayed_worker() {
        let report = detect(&[(0, 1_000_000), (1, 5_000_000), (2, 1_100_000)], 2.0);
        assert_eq!(report.stragglers(), vec![1]);
        assert_eq!(report.median_busy_p50_ns, 1_100_000);
        let text = report.render();
        assert!(text.contains("health worker=1"), "{text}");
        assert!(text.contains("STRAGGLER"), "{text}");
        assert!(text.contains("health=straggler workers=1"), "{text}");
    }

    #[test]
    fn uniform_mesh_is_healthy() {
        let report = detect(&[(0, 1_000_000), (1, 1_050_000)], 2.0);
        assert!(report.stragglers().is_empty());
        assert!(report.render().contains("health=ok"));
    }

    #[test]
    fn lower_median_survives_a_straggler_at_p2() {
        // With 2 workers the upper median would be the straggler itself,
        // hiding it (ratio 1.0). The lower median catches it.
        let report = detect(&[(0, 1_000_000), (1, 10_000_000)], 2.0);
        assert_eq!(report.stragglers(), vec![1]);
    }

    #[test]
    fn from_snapshot_reads_busy_histograms() {
        let reg = crate::metrics::Registry::new();
        for _ in 0..10 {
            reg.histogram("poseidon_busy_time_ns", &[("worker", "0")])
                .observe(1_000_000);
            reg.histogram("poseidon_busy_time_ns", &[("worker", "1")])
                .observe(60_000_000);
        }
        let report = from_snapshot(&reg.snapshot(), 2.0);
        assert_eq!(report.stragglers(), vec![1]);
    }
}
