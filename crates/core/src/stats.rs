//! Report formatting and speedup helpers shared by the experiment binaries.

/// A speedup series: throughput at each node count relative to the 1-node
/// baseline.
#[derive(Clone, Debug)]
pub struct SpeedupSeries {
    /// Series label (e.g. "Poseidon", "Caffe+PS").
    pub label: String,
    /// `(nodes, speedup)` points.
    pub points: Vec<(usize, f64)>,
}

impl SpeedupSeries {
    /// Builds a series from raw throughputs; the first entry is the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `throughputs` is empty or the baseline is non-positive.
    pub fn from_throughputs(label: impl Into<String>, points: &[(usize, f64)]) -> Self {
        assert!(!points.is_empty(), "empty series");
        let base = points[0].1;
        assert!(base > 0.0, "baseline throughput must be positive");
        Self {
            label: label.into(),
            points: points.iter().map(|&(n, t)| (n, t / base)).collect(),
        }
    }

    /// The speedup at `nodes`, if present.
    pub fn at(&self, nodes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(n, _)| n == nodes)
            .map(|&(_, s)| s)
    }
}

/// Renders aligned text rows: a header then one row per entry, columns padded
/// to the widest cell. Used by every experiment binary so figures print as
/// the same kind of table the paper's plots encode.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |row: &[String]| -> String {
        row.iter()
            .enumerate()
            .map(|(i, cell)| format!("{cell:>width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a byte count as gigabits (the unit of Figure 10).
pub fn bytes_to_gbit(bytes: u64) -> f64 {
    bytes as f64 * 8.0 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_normalises_to_first_point() {
        let s = SpeedupSeries::from_throughputs("x", &[(1, 50.0), (2, 95.0), (4, 180.0)]);
        assert_eq!(s.at(1), Some(1.0));
        assert_eq!(s.at(2), Some(1.9));
        assert_eq!(s.at(4), Some(3.6));
        assert_eq!(s.at(8), None);
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["nodes".into(), "speedup".into()],
            &[
                vec!["1".into(), "1.00".into()],
                vec!["32".into(), "31.50".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("nodes"));
        assert!(lines[3].trim_start().starts_with("32"));
        // Columns align: both data rows have the same length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn gbit_conversion() {
        assert!((bytes_to_gbit(1_250_000_000) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }
}
