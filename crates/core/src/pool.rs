//! Pooled buffer plane: reusable, size-classed byte buffers for the comm
//! hot path.
//!
//! Every gradient/parameter payload used to be built in a fresh allocation,
//! copied into a frame, copied again into the reader's reassembly buffer,
//! and finally handed to the runtime as yet another `Vec`. The pool collapses
//! that churn: serialisation writes into a [`PooledBuf`] lease, the lease is
//! frozen into [`Bytes`] (zero-copy — `Bytes::from_owner` keeps the lease
//! alive as the backing store), and when the last reference drops the buffer
//! returns to its size class for the next frame.
//!
//! Design constraints (DESIGN.md §2.4):
//!
//! * **Never blocks, never fails.** A `get` on an empty class falls back to a
//!   fresh allocation; a `put` on a full class drops the buffer. Exhaustion
//!   degrades to the old allocation behaviour, byte-for-byte.
//! * **Size classes are powers of two** from [`MIN_CLASS_BYTES`] to
//!   [`MAX_CLASS_BYTES`]; larger requests are plain allocations that never
//!   return to the pool (they would pin too much memory).
//! * **Leases are exact-length.** `get(len)` hands out a buffer whose visible
//!   length is exactly `len` (zero-filled), backed by a class-sized
//!   capacity, so codecs can index it like a fresh `vec![0; len]`. Hot paths
//!   that provably overwrite every byte use [`BufPool::get_dirty`], which
//!   skips the zeroing `memset` entirely — a recycled lease costs no writes.
//!
//! The pool is process-global ([`BufPool::global`]) so the transport's read
//! path, the wire codecs, and the runtime all recycle through one set of
//! classes. Occupancy is observable via [`BufPool::stats`] and surfaces in
//! telemetry as the `pool.occupancy` counter (emitted by the transport when
//! tracing is enabled).

use bytes::Bytes;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Smallest pooled size class.
pub const MIN_CLASS_BYTES: usize = 1 << 10; // 1 KiB
/// Largest pooled size class; bigger buffers bypass the pool.
pub const MAX_CLASS_BYTES: usize = 1 << 22; // 4 MiB
/// Buffers retained per class before `put` starts dropping.
const CLASS_CAP: usize = 32;

const NUM_CLASSES: usize = (MAX_CLASS_BYTES.ilog2() - MIN_CLASS_BYTES.ilog2() + 1) as usize;

struct PoolClass {
    size: usize,
    bufs: Mutex<Vec<Vec<u8>>>,
}

/// Counters describing pool behaviour since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from a pooled buffer.
    pub hits: u64,
    /// `get` calls that fell back to a fresh allocation.
    pub misses: u64,
    /// Buffers currently resident (idle) across all classes.
    pub resident: u64,
    /// Idle bytes currently held across all classes.
    pub resident_bytes: u64,
}

/// A size-classed pool of reusable byte buffers. See the module docs.
pub struct BufPool {
    classes: Vec<PoolClass>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl BufPool {
    /// A fresh, empty pool. Most callers want [`BufPool::global`].
    pub fn new() -> Arc<BufPool> {
        let classes = (0..NUM_CLASSES)
            .map(|i| PoolClass {
                size: MIN_CLASS_BYTES << i,
                bufs: Mutex::new(Vec::new()),
            })
            .collect();
        Arc::new(BufPool {
            classes,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The process-wide pool shared by the wire codecs and every transport.
    pub fn global() -> &'static Arc<BufPool> {
        static GLOBAL: OnceLock<Arc<BufPool>> = OnceLock::new();
        GLOBAL.get_or_init(BufPool::new)
    }

    fn class_of(len: usize) -> Option<usize> {
        if len > MAX_CLASS_BYTES {
            return None;
        }
        let size = len.max(MIN_CLASS_BYTES).next_power_of_two();
        Some((size.ilog2() - MIN_CLASS_BYTES.ilog2()) as usize)
    }

    /// Leases a zero-filled buffer of exactly `len` visible bytes. Falls back
    /// to a fresh allocation when the class is empty or `len` exceeds
    /// [`MAX_CLASS_BYTES`]; never blocks beyond the class mutex.
    pub fn get(self: &Arc<Self>, len: usize) -> PooledBuf {
        let mut lease = self.get_dirty(len);
        lease.fill(0);
        lease
    }

    /// Like [`get`](BufPool::get), but the lease contents are unspecified
    /// (stale bytes from an earlier lease, or zeros when freshly allocated).
    /// The transport read path uses this: it overwrites every visible byte
    /// before freezing, so the `memset` that `get` pays per lease — 64 KiB
    /// per large frame — would be pure waste. Callers that do not provably
    /// overwrite the whole lease must use `get` instead.
    pub fn get_dirty(self: &Arc<Self>, len: usize) -> PooledBuf {
        use std::sync::atomic::Ordering;
        let class = Self::class_of(len);
        let data = match class {
            Some(c) => {
                let reused = self.classes[c].bufs.lock().expect("pool poisoned").pop();
                match reused {
                    // Recycled buffers are stored at full class length, so a
                    // hit reuses the initialised bytes as-is: no writes at all.
                    Some(buf) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        debug_assert_eq!(buf.len(), self.classes[c].size);
                        buf
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        vec![0u8; self.classes[c].size]
                    }
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0u8; len]
            }
        };
        PooledBuf {
            data,
            visible: len,
            pool: class.map(|c| (Arc::downgrade(self), c)),
        }
    }

    fn put(&self, class: usize, buf: Vec<u8>) {
        let mut bufs = self.classes[class].bufs.lock().expect("pool poisoned");
        if bufs.len() < CLASS_CAP {
            bufs.push(buf);
        }
    }

    /// Current pool counters.
    pub fn stats(&self) -> PoolStats {
        use std::sync::atomic::Ordering;
        let mut resident = 0u64;
        let mut resident_bytes = 0u64;
        for c in &self.classes {
            let n = c.bufs.lock().expect("pool poisoned").len() as u64;
            resident += n;
            resident_bytes += n * c.size as u64;
        }
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            resident,
            resident_bytes,
        }
    }
}

/// An exclusive lease on a pool buffer. Deref to `[u8]` for writing; call
/// [`freeze`](PooledBuf::freeze) to hand it off as zero-copy [`Bytes`]. The
/// backing buffer returns to its class when the lease (or the last `Bytes`
/// clone holding it) drops.
///
/// The backing `Vec` stays at full class length for its whole pooled life;
/// `visible` is the exact length the caller asked for, and every access
/// window (`Deref`, `AsRef`, the frozen `Bytes`) ends there.
pub struct PooledBuf {
    data: Vec<u8>,
    visible: usize,
    pool: Option<(Weak<BufPool>, usize)>,
}

impl PooledBuf {
    /// Freezes the lease into immutable [`Bytes`] without copying; the lease
    /// itself becomes the owned backing store.
    pub fn freeze(self) -> Bytes {
        if self.visible == 0 {
            return Bytes::new();
        }
        Bytes::from_owner(self)
    }

    /// Visible length of the lease.
    pub fn len(&self) -> usize {
        self.visible
    }

    /// Whether the lease is zero-length.
    pub fn is_empty(&self) -> bool {
        self.visible == 0
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[..self.visible]
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[..self.visible]
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data[..self.visible]
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some((pool, class)) = self.pool.take() {
            if let Some(pool) = pool.upgrade() {
                pool.put(class, std::mem::take(&mut self.data));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_buffers_within_a_class() {
        let pool = BufPool::new();
        let a = pool.get(1000);
        drop(a);
        let stats = pool.stats();
        assert_eq!(stats.resident, 1);
        let b = pool.get(900); // same 1 KiB class
        assert_eq!(b.len(), 900);
        assert_eq!(pool.stats().resident, 0);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn leases_are_zero_filled_after_reuse() {
        let pool = BufPool::new();
        let mut a = pool.get(64);
        a.iter_mut().for_each(|b| *b = 0xFF);
        drop(a);
        let b = pool.get(64);
        assert!(b.iter().all(|&x| x == 0), "reused lease must be zeroed");
    }

    #[test]
    fn dirty_leases_skip_zeroing_but_stay_exact_length() {
        let pool = BufPool::new();
        let mut a = pool.get_dirty(100);
        a.iter_mut().for_each(|b| *b = 0xAB);
        drop(a);
        let b = pool.get_dirty(64); // same 1 KiB class
        assert_eq!(b.len(), 64);
        assert_eq!(pool.stats().hits, 1);
        assert!(
            b.iter().all(|&x| x == 0xAB),
            "recycled dirty lease keeps stale bytes as-is"
        );
    }

    #[test]
    fn oversized_requests_bypass_the_pool() {
        let pool = BufPool::new();
        let a = pool.get(MAX_CLASS_BYTES + 1);
        assert_eq!(a.len(), MAX_CLASS_BYTES + 1);
        drop(a);
        assert_eq!(pool.stats().resident, 0, "oversized buffers never pool");
    }

    #[test]
    fn freeze_preserves_bytes_and_returns_on_drop() {
        let pool = BufPool::new();
        let mut lease = pool.get(16);
        lease.copy_from_slice(&[7u8; 16]);
        let bytes = lease.freeze();
        let clone = bytes.clone();
        drop(bytes);
        assert_eq!(pool.stats().resident, 0, "clone still pins the buffer");
        assert_eq!(&clone[..], &[7u8; 16]);
        drop(clone);
        assert_eq!(pool.stats().resident, 1, "last drop recycles the buffer");
    }

    #[test]
    fn class_cap_bounds_resident_memory() {
        let pool = BufPool::new();
        let leases: Vec<_> = (0..CLASS_CAP + 8).map(|_| pool.get(128)).collect();
        drop(leases);
        assert_eq!(pool.stats().resident as usize, CLASS_CAP);
    }

    #[test]
    fn empty_lease_freezes_to_empty_bytes() {
        let pool = BufPool::new();
        assert!(pool.get(0).freeze().is_empty());
    }
}
