//! The KV-store shard.
//!
//! Each shard owns a [`ShardState`] holding the master copy of its KV pairs
//! (plus any layer-granular masters for the Adam path), consumes gradient
//! messages from workers, and broadcasts fresh parameters when a pair's
//! update count reaches the number of workers (BSP). Like the worker, the
//! shard is written against the [`Transport`] trait and runs unchanged over
//! in-process channels or TCP.
//!
//! Gradient compression rides the codec plane: every gradient frame carries
//! its codec in the header, the shard decodes whatever arrives (so
//! mixed-codec meshes interoperate), and a lossy chunk replies with the
//! compressed *velocity delta* instead of fresh parameters — double error
//! feedback, CNTK-style, with the master advanced by the decoded bytes the
//! workers will apply so replicas and master stay bitwise consistent.
//!
//! Elastic membership rides the epoch plane: when the shard's
//! [`MembershipSchedule`] is non-trivial, the serving loop is segmented by
//! membership epoch. At each boundary the shard first bumps its transport
//! epoch (so every frame it emits from then on carries the new epoch), then
//! streams the KV pairs it no longer owns to their new owners as
//! [`Message::Handoff`] frames — params, optimizer velocity, and the
//! reply-compressor residual, so the lossy byte stream continues bitwise —
//! and blocks until every pair it newly owns has arrived, stashing any
//! early gradient pushes from fast workers. BSP quiescence makes the
//! boundary deterministic: a worker only reaches the boundary iteration
//! after every shard folded the previous one, so no pre-boundary frame can
//! chase a handed-off pair.

use crate::checkpoint::{self, PairState, ShardCheckpoint};
use crate::chunk::Chunk;
use crate::kvstore::ShardState;
use crate::membership::MembershipSchedule;
use crate::telemetry;
use crate::transport::{Envelope, Message, Transport, TransportError};
use crate::wire::{self, Codec, LAYER_GRANULAR_CHUNK};
use poseidon_tensor::compress::{make_compressor, Compressor};
use poseidon_tensor::Matrix;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A layer synchronised at layer granularity by this shard (the Adam
/// SF-push / matrix-pull baseline).
#[derive(Clone, Debug)]
pub(crate) struct LayerGranular {
    pub layer: usize,
    /// `(M, N)` weight shape — needed to reconstruct factors into gradients.
    pub fc_shape: (usize, usize),
    /// Flattened parameter length (`M·N + M`).
    pub param_elems: usize,
}

/// Everything one shard needs.
pub(crate) struct ServerPlan {
    /// Home KV pairs: `(within-layer chunk index, chunk, reply codec)`.
    pub ps_chunks: Vec<(u32, Chunk, Codec)>,
    /// Owned layer-granular layers.
    pub layer_granular: Vec<LayerGranular>,
    /// Initial values for every home pair, same order as `ps_chunks` then
    /// `layer_granular`.
    pub init_values: Vec<Vec<f32>>,
    /// Worker count (`P1`).
    pub workers: usize,
    /// `-learning_rate / P1`.
    pub update_scale: f32,
    /// Classical momentum on the aggregated gradient.
    pub momentum: f32,
    /// Learning-rate schedule (scales `update_scale` per iteration).
    pub lr_schedule: crate::runtime::LrSchedule,
    /// Training iterations to serve.
    pub iterations: usize,
    /// Stale-synchronous mode: apply each worker's gradient eagerly and reply
    /// to that worker only (no per-pair barrier).
    pub ssp: bool,
    /// Transport receive timeout before declaring a worker lost.
    pub comm_timeout: std::time::Duration,
    /// This shard's id in `0..P` (endpoint id minus `workers`).
    pub me_shard: usize,
    /// Membership schedule shared by the whole mesh.
    pub schedule: Arc<MembershipSchedule>,
    /// First absolute iteration of this run segment.
    pub start_iter: usize,
    /// Every PS chunk in the mesh with its reply codec — the ownership
    /// universe under elastic membership. Empty when membership is fixed.
    pub all_chunks: Vec<(u32, Chunk, Codec)>,
    /// Initial values aligned with `all_chunks` (elastic runs only).
    pub all_init: Vec<Vec<f32>>,
    /// Restore shard state from a previous segment instead of initialising.
    pub restore: Option<ShardCheckpoint>,
    /// Export a [`ShardCheckpoint`] at the end of the run.
    pub export_state: bool,
}

impl ServerPlan {
    /// A plain run needs none of the elastic machinery — serve it with the
    /// original count-driven loop (bitwise and perf-identical to before the
    /// elastic plane existed, and the only loop that supports SSP).
    fn is_plain(&self) -> bool {
        self.schedule.is_trivial()
            && self.start_iter == 0
            && self.restore.is_none()
            && !self.export_state
    }
}

/// What one shard hands back to the harness.
pub(crate) struct ShardOutput {
    pub checkpoint: Option<ShardCheckpoint>,
}

/// Sends or panics with enough context to name the broken link.
fn must_send<T: Transport>(endpoint: &T, to: usize, msg: Message) {
    if let Err(e) = endpoint.send(to, msg) {
        panic!(
            "shard endpoint {}: send to endpoint {to} failed: {e}",
            endpoint.endpoint_id()
        );
    }
}

/// Runs one shard to completion.
pub(crate) fn run_server<T: Transport>(mut plan: ServerPlan, mut endpoint: T) -> ShardOutput {
    telemetry::set_thread_track(format!("shard e{}", endpoint.endpoint_id()));
    // Serve-latency histogram, resolved once so the serving loop records
    // registry-free.
    let shard_label = endpoint.endpoint_id().to_string();
    let m_serve = crate::metrics::histogram("poseidon_serve_ns", &[("shard", &shard_label)]);
    let mut state = ShardState::with_momentum(plan.workers, plan.update_scale, plan.momentum);
    // Per-chunk serving metadata: expected element count and the codec this
    // shard replies with. Decoding always follows the *frame's* codec.
    let mut chunk_info: HashMap<(u32, u32), (usize, Codec)> = HashMap::new();
    // Per-chunk aggregate compressors (error feedback on the reply path);
    // created lazily, only lossy chunks ever allocate one.
    let mut reply_comp: HashMap<(u32, u32), Box<dyn Compressor>> = HashMap::new();

    if plan.is_plain() {
        let init = std::mem::take(&mut plan.init_values);
        let mut init = init.into_iter();
        for &(idx, chunk, codec) in &plan.ps_chunks {
            chunk_info.insert((chunk.layer as u32, idx), (chunk.len, codec));
            state.init_pair(
                (chunk.layer as u32, idx),
                init.next().expect("init value per ps chunk"),
            );
        }
        for lg in &plan.layer_granular {
            let flat = init.next().expect("init value per layer-granular layer");
            state.init_pair((lg.layer as u32, LAYER_GRANULAR_CHUNK), flat);
        }

        // Every owned pair receives exactly `workers` gradient messages per
        // iteration; serve that many envelopes, then exit. Control frames (a
        // peer acking over a bare transport) don't count against the budget,
        // and neither do poisoned frames — counted separately and dropped.
        let pairs = plan.ps_chunks.len() + plan.layer_granular.len();
        let expected = pairs * plan.workers * plan.iterations;
        let mut served = 0usize;
        while served < expected {
            let env = must_recv(&endpoint, plan.comm_timeout, served, expected);
            if env.msg.is_control() {
                continue;
            }
            if serve_envelope(
                &endpoint,
                &plan,
                &mut state,
                &chunk_info,
                &mut reply_comp,
                &m_serve,
                env,
            ) {
                served += 1;
            }
        }
        endpoint.shutdown().unwrap_or_else(|e| {
            panic!("shard transport shutdown failed: {e}");
        });
        return ShardOutput { checkpoint: None };
    }

    run_server_elastic(plan, endpoint, state, chunk_info, reply_comp, m_serve)
}

/// The epoch-segmented serving loop: checkpoint restore/export, shard-level
/// join/leave with deterministic KV handoff, or both.
fn run_server_elastic<T: Transport>(
    mut plan: ServerPlan,
    mut endpoint: T,
    mut state: ShardState,
    mut chunk_info: HashMap<(u32, u32), (usize, Codec)>,
    mut reply_comp: HashMap<(u32, u32), Box<dyn Compressor>>,
    m_serve: crate::metrics::Histogram,
) -> ShardOutput {
    assert!(
        !plan.ssp,
        "elastic membership and checkpointing require BSP"
    );
    let me = plan.me_shard;
    let sched = Arc::clone(&plan.schedule);
    assert!(
        sched.is_trivial() || plan.layer_granular.is_empty(),
        "elastic membership does not support layer-granular (AdamSf) shards"
    );
    let m_handoff = crate::metrics::counter("poseidon_handoff_pairs_total", &[]);

    // The ownership universe: under a non-trivial schedule every shard knows
    // every PS chunk (`all_chunks`); under a trivial schedule (checkpoint-only
    // runs) the home set is the universe.
    let home_only = plan.all_chunks.is_empty();
    let universe: Vec<(u32, Chunk, Codec)> = if home_only {
        plan.ps_chunks.clone()
    } else {
        std::mem::take(&mut plan.all_chunks)
    };
    let universe_init: Vec<Vec<f32>> = if home_only {
        // Trivial schedule: init_values is ps_chunks-then-layer-granular.
        plan.init_values[..plan.ps_chunks.len()].to_vec()
    } else {
        std::mem::take(&mut plan.all_init)
    };
    assert_eq!(
        universe.len(),
        universe_init.len(),
        "one init value per chunk in the ownership universe"
    );
    for &(idx, chunk, codec) in &universe {
        chunk_info.insert((chunk.layer as u32, idx), (chunk.len, codec));
    }
    // Keys grouped by home shard, in deterministic (sorted) order — the order
    // handoff frames are emitted in.
    let mut home_keys: HashMap<usize, Vec<(u32, u32)>> = HashMap::new();
    for &(idx, chunk, _) in &universe {
        home_keys
            .entry(chunk.shard)
            .or_default()
            .push((chunk.layer as u32, idx));
    }
    for keys in home_keys.values_mut() {
        keys.sort_unstable();
    }

    let start = plan.start_iter;
    let end = start + plan.iterations;
    let mut epoch = sched.epoch_at(start);
    endpoint.set_epoch(epoch);

    // Populate owned pairs: from the checkpoint when restoring, from the
    // deterministic init tables otherwise.
    let owned_now: Vec<(u32, u32)> = universe
        .iter()
        .filter(|(_, chunk, _)| sched.owner(chunk.shard, epoch) == me)
        .map(|&(idx, chunk, _)| (chunk.layer as u32, idx))
        .collect();
    if let Some(ck) = plan.restore.take() {
        assert_eq!(ck.shard, me as u32, "checkpoint belongs to another shard");
        assert_eq!(
            ck.next_iter, start as u64,
            "checkpoint resumes at a different iteration than this segment starts"
        );
        let mut restored: Vec<(u32, u32)> = Vec::with_capacity(ck.pairs.len());
        for pair in ck.pairs {
            restored.push(pair.key);
            install_pair_state(&mut state, &mut reply_comp, &chunk_info, pair);
        }
        restored.sort_unstable();
        let mut expected_keys = owned_now.clone();
        for lg in &plan.layer_granular {
            expected_keys.push((lg.layer as u32, LAYER_GRANULAR_CHUNK));
        }
        expected_keys.sort_unstable();
        assert_eq!(
            restored, expected_keys,
            "checkpoint pair set does not match the pairs owned at the resume epoch"
        );
    } else {
        assert_eq!(
            start, 0,
            "a mid-run segment (start_iter > 0) must restore from a checkpoint"
        );
        for (&(idx, chunk, _), init) in universe.iter().zip(universe_init.iter()) {
            if sched.owner(chunk.shard, epoch) == me {
                state.init_pair((chunk.layer as u32, idx), init.clone());
            }
        }
        let mut lg_init = plan.init_values[plan.ps_chunks.len()..].iter();
        for lg in &plan.layer_granular {
            let flat = lg_init.next().expect("init value per layer-granular layer");
            state.init_pair((lg.layer as u32, LAYER_GRANULAR_CHUNK), flat.clone());
        }
    }

    // Gradient frames that raced ahead of a handoff install: replayed before
    // reading fresh envelopes in the next segment.
    let mut stash: VecDeque<Envelope> = VecDeque::new();
    let mut it = start;
    while it < end {
        // Serve until the next membership boundary (or the end of the run).
        let seg_end = if (epoch as usize) + 1 < sched.epochs() {
            sched.epoch_start(epoch + 1).min(end)
        } else {
            end
        };
        let owned = universe
            .iter()
            .filter(|(_, chunk, _)| sched.owner(chunk.shard, epoch) == me)
            .count()
            + plan.layer_granular.len();
        let expected = owned * plan.workers * (seg_end - it);
        let mut served = 0usize;
        while served < expected {
            let env = match stash.pop_front() {
                Some(env) => env,
                None => must_recv(&endpoint, plan.comm_timeout, served, expected),
            };
            if env.msg.is_control() {
                continue;
            }
            if serve_envelope(
                &endpoint,
                &plan,
                &mut state,
                &chunk_info,
                &mut reply_comp,
                &m_serve,
                env,
            ) {
                served += 1;
            }
        }
        it = seg_end;
        if it >= end {
            break;
        }

        // Membership boundary. Bump the epoch *first* so every frame sent
        // from here on (handoffs included) carries the new epoch, then
        // stream out the pairs this shard no longer owns and block for the
        // ones it just acquired.
        while epoch < sched.epoch_at(it) {
            let next = epoch + 1;
            endpoint.set_epoch(next);
            for (home, new_owner) in sched.handoffs_out(me, next) {
                for &key in home_keys.get(&home).map(|v| v.as_slice()).unwrap_or(&[]) {
                    let (params, velocity) = state
                        .export_pair(key)
                        .expect("handoff of a pair this shard does not hold");
                    let residual = reply_comp
                        .get(&key)
                        .map(|c| c.residual())
                        .unwrap_or_default();
                    must_send(
                        &endpoint,
                        plan.workers + new_owner,
                        Message::Handoff {
                            iter: it as u64,
                            layer: key.0,
                            chunk: key.1,
                            data: checkpoint::encode_pair_state(&params, &velocity, &residual),
                        },
                    );
                    state.remove_pair(key);
                    reply_comp.remove(&key);
                    m_handoff.inc();
                }
            }
            let expect_in: usize = sched
                .handoffs_in(me, next)
                .iter()
                .map(|(home, _)| home_keys.get(home).map(|v| v.len()).unwrap_or(0))
                .sum();
            let mut got = 0usize;
            while got < expect_in {
                let env = must_recv(&endpoint, plan.comm_timeout, got, expect_in);
                if env.msg.is_control() {
                    continue;
                }
                match env.msg {
                    Message::Handoff {
                        iter,
                        layer,
                        chunk,
                        data,
                    } => {
                        assert_eq!(iter, it as u64, "handoff stamped with the wrong boundary");
                        let (params, velocity, residual) =
                            checkpoint::decode_pair_state(&data).expect("corrupt handoff payload");
                        install_pair_state(
                            &mut state,
                            &mut reply_comp,
                            &chunk_info,
                            PairState {
                                key: (layer, chunk),
                                params,
                                velocity,
                                residual,
                            },
                        );
                        got += 1;
                        m_handoff.inc();
                    }
                    // A fast worker already pushed a gradient for the pair we
                    // are still installing — hold it for the next segment.
                    _ => stash.push_back(env),
                }
            }
            epoch = next;
        }
    }

    let checkpoint = plan.export_state.then(|| ShardCheckpoint {
        shard: me as u32,
        next_iter: end as u64,
        epoch,
        pairs: state
            .sorted_keys()
            .into_iter()
            .map(|key| {
                let (params, velocity) = state.export_pair(key).expect("key just listed");
                let residual = reply_comp
                    .get(&key)
                    .map(|c| c.residual())
                    .unwrap_or_default();
                PairState {
                    key,
                    params,
                    velocity,
                    residual,
                }
            })
            .collect(),
    });

    endpoint.shutdown().unwrap_or_else(|e| {
        panic!("shard transport shutdown failed: {e}");
    });
    ShardOutput { checkpoint }
}

/// Installs one pair (params + velocity + reply-compressor residual) into
/// the shard, recreating the lossy reply compressor so the byte stream
/// continues exactly where the previous owner left it.
fn install_pair_state(
    state: &mut ShardState,
    reply_comp: &mut HashMap<(u32, u32), Box<dyn Compressor>>,
    chunk_info: &HashMap<(u32, u32), (usize, Codec)>,
    pair: PairState,
) {
    state.install_pair(pair.key, pair.params, pair.velocity);
    if !pair.residual.is_empty() {
        let &(elems, codec) = chunk_info
            .get(&pair.key)
            .expect("installed pair missing from the chunk table");
        let mut comp = make_compressor(codec, elems);
        comp.set_residual(&pair.residual);
        reply_comp.insert(pair.key, comp);
    }
}

/// Receives one envelope or panics with enough context to triage a starve.
fn must_recv<T: Transport>(
    endpoint: &T,
    timeout: std::time::Duration,
    done: usize,
    expected: usize,
) -> Envelope {
    match crate::runtime::recv_with_retry(endpoint, timeout) {
        Ok(env) => env,
        Err(e @ (TransportError::Timeout(_) | TransportError::Closed)) => panic!(
            "shard endpoint {} starved after {done}/{expected} messages — a worker died \
             or stalled: {e}",
            endpoint.endpoint_id()
        ),
        Err(e) => panic!(
            "shard endpoint {} transport failed: {e}",
            endpoint.endpoint_id()
        ),
    }
}

/// Applies one non-control envelope to the shard. Returns `false` when the
/// frame was poisoned (dropped and counted elsewhere, not served).
fn serve_envelope<T: Transport>(
    endpoint: &T,
    plan: &ServerPlan,
    state: &mut ShardState,
    chunk_info: &HashMap<(u32, u32), (usize, Codec)>,
    reply_comp: &mut HashMap<(u32, u32), Box<dyn Compressor>>,
    m_serve: &crate::metrics::Histogram,
    env: Envelope,
) -> bool {
    // Per-iteration learning-rate schedule: messages carry their BSP
    // round, so the scale for this update is exact even under SSP.
    let _serve_span = telemetry::span("serve.apply", env.msg.layer() as u64, env.msg.iter());
    let serve_started = std::time::Instant::now();
    let scale = plan.update_scale * plan.lr_schedule.multiplier(env.msg.iter() as usize);
    state.set_update_scale(scale);
    match env.msg {
        Message::GradChunk {
            iter,
            layer,
            chunk,
            codec,
            data,
        } => {
            let &(elems, reply_codec) = chunk_info
                .get(&(layer, chunk))
                .expect("gradient push for a chunk this shard does not own");
            // Decode by the frame's own codec tag, whatever the worker
            // chose to send.
            let grad = match wire::decode_codec(codec, &data, elems) {
                Ok(grad) => grad,
                Err(e) => {
                    crate::runtime::note_poisoned_frame(
                        endpoint.endpoint_id(),
                        env.from,
                        "gradient",
                        &e,
                    );
                    return false;
                }
            };
            if plan.ssp {
                let updated = state.receive_grad_async(env.from, (layer, chunk), &grad);
                must_send(
                    endpoint,
                    env.from,
                    Message::ParamChunk {
                        iter,
                        layer,
                        chunk,
                        codec: Codec::Identity,
                        data: wire::encode_f32s_pooled(&updated),
                    },
                );
            } else if reply_codec == Codec::Identity {
                if let Some(updated) = state.receive_grad(env.from, (layer, chunk), &grad) {
                    for w in 0..plan.workers {
                        must_send(
                            endpoint,
                            w,
                            Message::ParamChunk {
                                iter,
                                layer,
                                chunk,
                                codec: Codec::Identity,
                                data: wire::encode_f32s_pooled(&updated),
                            },
                        );
                    }
                }
            } else if let Some(delta) = state.receive_grad_deferred(env.from, (layer, chunk), &grad)
            {
                // Lossy reply: compress the scaled velocity delta (with
                // error feedback), then advance the master by the *decoded*
                // bytes so it tracks exactly what every replica applies.
                let comp = reply_comp
                    .entry((layer, chunk))
                    .or_insert_with(|| make_compressor(reply_codec, elems));
                let payload = comp.compress(&delta);
                let applied = wire::decode_codec(reply_codec, &payload, elems)
                    .expect("shard's own encoding must decode");
                state.apply_delta((layer, chunk), &applied);
                for w in 0..plan.workers {
                    must_send(
                        endpoint,
                        w,
                        Message::ParamChunk {
                            iter,
                            layer,
                            chunk,
                            codec: reply_codec,
                            data: payload.clone(),
                        },
                    );
                }
            }
        }
        Message::SfPush { iter, layer, data } => {
            // Adam path: reconstruct the dense gradient from the factors.
            let lg = plan
                .layer_granular
                .iter()
                .find(|lg| lg.layer as u32 == layer)
                .expect("SF push for a layer this shard does not own");
            let batch =
                poseidon_tensor::bytesio::decode_sf_batch(&data).expect("corrupt SF payload");
            let (m, n) = lg.fc_shape;
            let mut grad_w = Matrix::zeros(m, n);
            batch.accumulate_into(&mut grad_w, 1.0);
            let mut flat = grad_w.as_slice().to_vec();
            let mut bias = vec![0.0f32; m];
            for sf in batch.factors() {
                for (b, &u) in bias.iter_mut().zip(&sf.u) {
                    *b += u;
                }
            }
            flat.extend_from_slice(&bias);
            assert_eq!(
                flat.len(),
                lg.param_elems,
                "reconstructed gradient size mismatch"
            );
            if let Some(updated) =
                state.receive_grad(env.from, (layer, LAYER_GRANULAR_CHUNK), &flat)
            {
                broadcast_matrix(endpoint, plan.workers, iter, layer, &updated);
            }
        }
        other => panic!("server received unexpected message {other:?}"),
    }
    m_serve.record(serve_started.elapsed().as_nanos() as u64);
    true
}

fn broadcast_matrix<T: Transport>(
    endpoint: &T,
    workers: usize,
    iter: u64,
    layer: u32,
    flat: &[f32],
) {
    for w in 0..workers {
        must_send(
            endpoint,
            w,
            Message::ParamMatrix {
                iter,
                layer,
                data: wire::encode_f32s_pooled(flat),
            },
        );
    }
}
