//! The KV-store shard.
//!
//! Each shard owns a [`ShardState`] holding the master copy of its KV pairs
//! (plus any layer-granular masters for the Adam/1-bit paths), consumes
//! gradient messages from workers, and broadcasts fresh parameters when a
//! pair's update count reaches the number of workers (BSP). Like the worker,
//! the shard is written against the [`Transport`] trait and runs unchanged
//! over in-process channels or TCP.

use crate::chunk::Chunk;
use crate::kvstore::ShardState;
use crate::telemetry;
use crate::transport::{Envelope, Message, Transport, TransportError};
use crate::wire::{self, LAYER_GRANULAR_CHUNK};
use poseidon_tensor::quantize::OneBitQuantizer;
use poseidon_tensor::Matrix;
use std::collections::HashMap;

/// A layer synchronised at layer granularity by this shard (Adam or 1-bit).
#[derive(Clone, Debug)]
pub(crate) struct LayerGranular {
    pub layer: usize,
    /// `(M, N)` weight shape — needed to reconstruct factors into gradients.
    pub fc_shape: (usize, usize),
    /// Flattened parameter length (`M·N + M`).
    pub param_elems: usize,
    /// `true` for Adam (SF push), `false` for 1-bit (quantized push).
    pub adam: bool,
}

/// Everything one shard needs.
pub(crate) struct ServerPlan {
    /// Owned KV pairs: `(within-layer chunk index, chunk)`.
    pub ps_chunks: Vec<(u32, Chunk)>,
    /// Owned layer-granular layers.
    pub layer_granular: Vec<LayerGranular>,
    /// Initial values for every owned pair, same order as `ps_chunks` then
    /// `layer_granular`.
    pub init_values: Vec<Vec<f32>>,
    /// Worker count (`P1`).
    pub workers: usize,
    /// `-learning_rate / P1`.
    pub update_scale: f32,
    /// Classical momentum on the aggregated gradient.
    pub momentum: f32,
    /// Learning-rate schedule (scales `update_scale` per iteration).
    pub lr_schedule: crate::runtime::LrSchedule,
    /// Training iterations to serve.
    pub iterations: usize,
    /// Stale-synchronous mode: apply each worker's gradient eagerly and reply
    /// to that worker only (no per-pair barrier).
    pub ssp: bool,
    /// Transport receive timeout before declaring a worker lost.
    pub comm_timeout: std::time::Duration,
}

/// Server-side state for one 1-bit layer: the master copy, the aggregate
/// quantizer with its error residual, and the per-round pending gradients.
struct OneBitState {
    fc_shape: (usize, usize),
    master_weights: Matrix,
    master_bias: Vec<f32>,
    quantizer: OneBitQuantizer,
    velocity_w: Matrix,
    velocity_b: Vec<f32>,
    pending: Vec<Option<(Matrix, Vec<f32>)>>,
}

/// Sends or panics with enough context to name the broken link.
fn must_send<T: Transport>(endpoint: &T, to: usize, msg: Message) {
    if let Err(e) = endpoint.send(to, msg) {
        panic!(
            "shard endpoint {}: send to endpoint {to} failed: {e}",
            endpoint.endpoint_id()
        );
    }
}

/// Runs one shard to completion.
pub(crate) fn run_server<T: Transport>(plan: ServerPlan, mut endpoint: T) {
    telemetry::set_thread_track(format!("shard e{}", endpoint.endpoint_id()));
    let mut state = ShardState::with_momentum(plan.workers, plan.update_scale, plan.momentum);
    let mut onebit: HashMap<u32, OneBitState> = HashMap::new();
    let mut init = plan.init_values.into_iter();
    for &(idx, chunk) in &plan.ps_chunks {
        state.init_pair(
            (chunk.layer as u32, idx),
            init.next().expect("init value per ps chunk"),
        );
    }
    for lg in &plan.layer_granular {
        let flat = init.next().expect("init value per layer-granular layer");
        if lg.adam {
            state.init_pair((lg.layer as u32, LAYER_GRANULAR_CHUNK), flat);
        } else {
            let (m, n) = lg.fc_shape;
            onebit.insert(
                lg.layer as u32,
                OneBitState {
                    fc_shape: (m, n),
                    master_weights: Matrix::from_vec(m, n, flat[..m * n].to_vec()),
                    master_bias: flat[m * n..].to_vec(),
                    quantizer: OneBitQuantizer::new(m, n),
                    velocity_w: Matrix::zeros(m, n),
                    velocity_b: vec![0.0; m],
                    pending: (0..plan.workers).map(|_| None).collect(),
                },
            );
        }
    }

    // Every owned pair receives exactly `workers` gradient messages per
    // iteration; serve that many envelopes, then exit. Control frames (a
    // peer acking over a bare transport) don't count against the budget.
    let pairs = plan.ps_chunks.len() + plan.layer_granular.len();
    let expected = pairs * plan.workers * plan.iterations;
    let mut served = 0usize;
    while served < expected {
        let env: Envelope = match crate::runtime::recv_with_retry(&endpoint, plan.comm_timeout) {
            Ok(env) => env,
            Err(e @ (TransportError::Timeout(_) | TransportError::Closed)) => panic!(
                "shard endpoint {} starved after {served}/{expected} messages — a worker died \
                 or stalled: {e}",
                endpoint.endpoint_id()
            ),
            Err(e) => panic!(
                "shard endpoint {} transport failed: {e}",
                endpoint.endpoint_id()
            ),
        };
        if env.msg.is_control() {
            continue;
        }
        served += 1;
        // Per-iteration learning-rate schedule: messages carry their BSP
        // round, so the scale for this update is exact even under SSP.
        let _serve_span = telemetry::span("serve.apply", env.msg.layer() as u64, env.msg.iter());
        let scale = plan.update_scale * plan.lr_schedule.multiplier(env.msg.iter() as usize);
        state.set_update_scale(scale);
        match env.msg {
            Message::GradChunk {
                iter,
                layer,
                chunk,
                data,
            } => {
                if chunk == LAYER_GRANULAR_CHUNK {
                    // 1-bit path (CNTK baseline, Seide et al.): dequantize the
                    // P worker pushes, fold them, then quantize the aggregated
                    // update as well before broadcasting — double error
                    // feedback, so worker replicas and the master stay
                    // bitwise consistent while both directions stay 1-bit.
                    let ob = onebit
                        .get_mut(&layer)
                        .expect("1-bit push for a layer this shard does not own");
                    let (quant, bias) = wire::decode_onebit(&data).expect("corrupt 1-bit payload");
                    assert!(
                        ob.pending[env.from].is_none(),
                        "worker {} sent two 1-bit updates in one round",
                        env.from
                    );
                    ob.pending[env.from] = Some((quant.dequantize(), bias));
                    if ob.pending.iter().all(Option::is_some) {
                        let (m, n) = ob.fc_shape;
                        let mut grad_w = Matrix::zeros(m, n);
                        let mut grad_b = vec![0.0f32; m];
                        for slot in ob.pending.iter_mut() {
                            let (w, b) = slot.take().expect("checked complete");
                            grad_w.add_assign(&w);
                            for (acc, v) in grad_b.iter_mut().zip(&b) {
                                *acc += v;
                            }
                        }
                        // Fold the aggregate into the velocity, pre-scale,
                        // then quantize (weights only; the bias delta is tiny
                        // and travels dense).
                        ob.velocity_w.scale(plan.momentum);
                        ob.velocity_w.add_assign(&grad_w);
                        for (v, g) in ob.velocity_b.iter_mut().zip(&grad_b) {
                            *v = plan.momentum * *v + g;
                        }
                        let mut delta_w = ob.velocity_w.clone();
                        delta_w.scale(scale);
                        grad_b = ob.velocity_b.iter().map(|&v| v * scale).collect();
                        let agg_quant = ob.quantizer.quantize(&delta_w);
                        let decoded = agg_quant.dequantize();
                        // Keep the master consistent with what workers apply.
                        for (mv, d) in ob
                            .master_weights
                            .as_mut_slice()
                            .iter_mut()
                            .zip(decoded.as_slice())
                        {
                            *mv += d;
                        }
                        for (mv, d) in ob.master_bias.iter_mut().zip(&grad_b) {
                            *mv += d;
                        }
                        let payload = wire::encode_onebit_pooled(&agg_quant, &grad_b);
                        for w in 0..plan.workers {
                            must_send(
                                &endpoint,
                                w,
                                Message::GradChunk {
                                    iter,
                                    layer,
                                    chunk: LAYER_GRANULAR_CHUNK,
                                    data: payload.clone(),
                                },
                            );
                        }
                    }
                } else {
                    let grad = wire::decode_f32s(&data).expect("corrupt gradient payload");
                    if plan.ssp {
                        let updated = state.receive_grad_async(env.from, (layer, chunk), &grad);
                        must_send(
                            &endpoint,
                            env.from,
                            Message::ParamChunk {
                                iter,
                                layer,
                                chunk,
                                data: wire::encode_f32s_pooled(&updated),
                            },
                        );
                    } else if let Some(updated) =
                        state.receive_grad(env.from, (layer, chunk), &grad)
                    {
                        for w in 0..plan.workers {
                            must_send(
                                &endpoint,
                                w,
                                Message::ParamChunk {
                                    iter,
                                    layer,
                                    chunk,
                                    data: wire::encode_f32s_pooled(&updated),
                                },
                            );
                        }
                    }
                }
            }
            Message::SfPush { iter, layer, data } => {
                // Adam path: reconstruct the dense gradient from the factors.
                let lg = plan
                    .layer_granular
                    .iter()
                    .find(|lg| lg.layer as u32 == layer && lg.adam)
                    .expect("SF push for a layer this shard does not own");
                let batch =
                    poseidon_tensor::bytesio::decode_sf_batch(&data).expect("corrupt SF payload");
                let (m, n) = lg.fc_shape;
                let mut grad_w = Matrix::zeros(m, n);
                batch.accumulate_into(&mut grad_w, 1.0);
                let mut flat = grad_w.as_slice().to_vec();
                let mut bias = vec![0.0f32; m];
                for sf in batch.factors() {
                    for (b, &u) in bias.iter_mut().zip(&sf.u) {
                        *b += u;
                    }
                }
                flat.extend_from_slice(&bias);
                assert_eq!(
                    flat.len(),
                    lg.param_elems,
                    "reconstructed gradient size mismatch"
                );
                if let Some(updated) =
                    state.receive_grad(env.from, (layer, LAYER_GRANULAR_CHUNK), &flat)
                {
                    broadcast_matrix(&endpoint, plan.workers, iter, layer, &updated);
                }
            }
            other => panic!("server received unexpected message {other:?}"),
        }
    }

    endpoint.shutdown().unwrap_or_else(|e| {
        panic!("shard transport shutdown failed: {e}");
    });
}

fn broadcast_matrix<T: Transport>(
    endpoint: &T,
    workers: usize,
    iter: u64,
    layer: u32,
    flat: &[f32],
) {
    for w in 0..workers {
        must_send(
            endpoint,
            w,
            Message::ParamMatrix {
                iter,
                layer,
                data: wire::encode_f32s_pooled(flat),
            },
        );
    }
}
