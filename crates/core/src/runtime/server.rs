//! The KV-store shard.
//!
//! Each shard owns a [`ShardState`] holding the master copy of its KV pairs
//! (plus any layer-granular masters for the Adam path), consumes gradient
//! messages from workers, and broadcasts fresh parameters when a pair's
//! update count reaches the number of workers (BSP). Like the worker, the
//! shard is written against the [`Transport`] trait and runs unchanged over
//! in-process channels or TCP.
//!
//! Gradient compression rides the codec plane: every gradient frame carries
//! its codec in the header, the shard decodes whatever arrives (so
//! mixed-codec meshes interoperate), and a lossy chunk replies with the
//! compressed *velocity delta* instead of fresh parameters — double error
//! feedback, CNTK-style, with the master advanced by the decoded bytes the
//! workers will apply so replicas and master stay bitwise consistent.

use crate::chunk::Chunk;
use crate::kvstore::ShardState;
use crate::telemetry;
use crate::transport::{Envelope, Message, Transport, TransportError};
use crate::wire::{self, Codec, LAYER_GRANULAR_CHUNK};
use poseidon_tensor::compress::{make_compressor, Compressor};
use poseidon_tensor::Matrix;
use std::collections::HashMap;

/// A layer synchronised at layer granularity by this shard (the Adam
/// SF-push / matrix-pull baseline).
#[derive(Clone, Debug)]
pub(crate) struct LayerGranular {
    pub layer: usize,
    /// `(M, N)` weight shape — needed to reconstruct factors into gradients.
    pub fc_shape: (usize, usize),
    /// Flattened parameter length (`M·N + M`).
    pub param_elems: usize,
}

/// Everything one shard needs.
pub(crate) struct ServerPlan {
    /// Owned KV pairs: `(within-layer chunk index, chunk, reply codec)`.
    pub ps_chunks: Vec<(u32, Chunk, Codec)>,
    /// Owned layer-granular layers.
    pub layer_granular: Vec<LayerGranular>,
    /// Initial values for every owned pair, same order as `ps_chunks` then
    /// `layer_granular`.
    pub init_values: Vec<Vec<f32>>,
    /// Worker count (`P1`).
    pub workers: usize,
    /// `-learning_rate / P1`.
    pub update_scale: f32,
    /// Classical momentum on the aggregated gradient.
    pub momentum: f32,
    /// Learning-rate schedule (scales `update_scale` per iteration).
    pub lr_schedule: crate::runtime::LrSchedule,
    /// Training iterations to serve.
    pub iterations: usize,
    /// Stale-synchronous mode: apply each worker's gradient eagerly and reply
    /// to that worker only (no per-pair barrier).
    pub ssp: bool,
    /// Transport receive timeout before declaring a worker lost.
    pub comm_timeout: std::time::Duration,
}

/// Sends or panics with enough context to name the broken link.
fn must_send<T: Transport>(endpoint: &T, to: usize, msg: Message) {
    if let Err(e) = endpoint.send(to, msg) {
        panic!(
            "shard endpoint {}: send to endpoint {to} failed: {e}",
            endpoint.endpoint_id()
        );
    }
}

/// Runs one shard to completion.
pub(crate) fn run_server<T: Transport>(plan: ServerPlan, mut endpoint: T) {
    telemetry::set_thread_track(format!("shard e{}", endpoint.endpoint_id()));
    // Serve-latency histogram, resolved once so the serving loop records
    // registry-free.
    let shard_label = endpoint.endpoint_id().to_string();
    let m_serve = crate::metrics::histogram("poseidon_serve_ns", &[("shard", &shard_label)]);
    let mut state = ShardState::with_momentum(plan.workers, plan.update_scale, plan.momentum);
    // Per-chunk serving metadata: expected element count and the codec this
    // shard replies with. Decoding always follows the *frame's* codec.
    let mut chunk_info: HashMap<(u32, u32), (usize, Codec)> = HashMap::new();
    // Per-chunk aggregate compressors (error feedback on the reply path);
    // created lazily, only lossy chunks ever allocate one.
    let mut reply_comp: HashMap<(u32, u32), Box<dyn Compressor>> = HashMap::new();
    let mut init = plan.init_values.into_iter();
    for &(idx, chunk, codec) in &plan.ps_chunks {
        chunk_info.insert((chunk.layer as u32, idx), (chunk.len, codec));
        state.init_pair(
            (chunk.layer as u32, idx),
            init.next().expect("init value per ps chunk"),
        );
    }
    for lg in &plan.layer_granular {
        let flat = init.next().expect("init value per layer-granular layer");
        state.init_pair((lg.layer as u32, LAYER_GRANULAR_CHUNK), flat);
    }

    // Every owned pair receives exactly `workers` gradient messages per
    // iteration; serve that many envelopes, then exit. Control frames (a
    // peer acking over a bare transport) don't count against the budget, and
    // neither do poisoned frames — they are counted separately and dropped.
    let pairs = plan.ps_chunks.len() + plan.layer_granular.len();
    let expected = pairs * plan.workers * plan.iterations;
    let mut served = 0usize;
    while served < expected {
        let env: Envelope = match crate::runtime::recv_with_retry(&endpoint, plan.comm_timeout) {
            Ok(env) => env,
            Err(e @ (TransportError::Timeout(_) | TransportError::Closed)) => panic!(
                "shard endpoint {} starved after {served}/{expected} messages — a worker died \
                 or stalled: {e}",
                endpoint.endpoint_id()
            ),
            Err(e) => panic!(
                "shard endpoint {} transport failed: {e}",
                endpoint.endpoint_id()
            ),
        };
        if env.msg.is_control() {
            continue;
        }
        served += 1;
        // Per-iteration learning-rate schedule: messages carry their BSP
        // round, so the scale for this update is exact even under SSP.
        let _serve_span = telemetry::span("serve.apply", env.msg.layer() as u64, env.msg.iter());
        let serve_started = std::time::Instant::now();
        let scale = plan.update_scale * plan.lr_schedule.multiplier(env.msg.iter() as usize);
        state.set_update_scale(scale);
        match env.msg {
            Message::GradChunk {
                iter,
                layer,
                chunk,
                codec,
                data,
            } => {
                let &(elems, reply_codec) = chunk_info
                    .get(&(layer, chunk))
                    .expect("gradient push for a chunk this shard does not own");
                // Decode by the frame's own codec tag, whatever the worker
                // chose to send.
                let grad = match wire::decode_codec(codec, &data, elems) {
                    Ok(grad) => grad,
                    Err(e) => {
                        crate::runtime::note_poisoned_frame(
                            endpoint.endpoint_id(),
                            env.from,
                            "gradient",
                            &e,
                        );
                        served -= 1;
                        continue;
                    }
                };
                if plan.ssp {
                    let updated = state.receive_grad_async(env.from, (layer, chunk), &grad);
                    must_send(
                        &endpoint,
                        env.from,
                        Message::ParamChunk {
                            iter,
                            layer,
                            chunk,
                            codec: Codec::Identity,
                            data: wire::encode_f32s_pooled(&updated),
                        },
                    );
                } else if reply_codec == Codec::Identity {
                    if let Some(updated) = state.receive_grad(env.from, (layer, chunk), &grad) {
                        for w in 0..plan.workers {
                            must_send(
                                &endpoint,
                                w,
                                Message::ParamChunk {
                                    iter,
                                    layer,
                                    chunk,
                                    codec: Codec::Identity,
                                    data: wire::encode_f32s_pooled(&updated),
                                },
                            );
                        }
                    }
                } else if let Some(delta) =
                    state.receive_grad_deferred(env.from, (layer, chunk), &grad)
                {
                    // Lossy reply: compress the scaled velocity delta (with
                    // error feedback), then advance the master by the *decoded*
                    // bytes so it tracks exactly what every replica applies.
                    let comp = reply_comp
                        .entry((layer, chunk))
                        .or_insert_with(|| make_compressor(reply_codec, elems));
                    let payload = comp.compress(&delta);
                    let applied = wire::decode_codec(reply_codec, &payload, elems)
                        .expect("shard's own encoding must decode");
                    state.apply_delta((layer, chunk), &applied);
                    for w in 0..plan.workers {
                        must_send(
                            &endpoint,
                            w,
                            Message::ParamChunk {
                                iter,
                                layer,
                                chunk,
                                codec: reply_codec,
                                data: payload.clone(),
                            },
                        );
                    }
                }
            }
            Message::SfPush { iter, layer, data } => {
                // Adam path: reconstruct the dense gradient from the factors.
                let lg = plan
                    .layer_granular
                    .iter()
                    .find(|lg| lg.layer as u32 == layer)
                    .expect("SF push for a layer this shard does not own");
                let batch =
                    poseidon_tensor::bytesio::decode_sf_batch(&data).expect("corrupt SF payload");
                let (m, n) = lg.fc_shape;
                let mut grad_w = Matrix::zeros(m, n);
                batch.accumulate_into(&mut grad_w, 1.0);
                let mut flat = grad_w.as_slice().to_vec();
                let mut bias = vec![0.0f32; m];
                for sf in batch.factors() {
                    for (b, &u) in bias.iter_mut().zip(&sf.u) {
                        *b += u;
                    }
                }
                flat.extend_from_slice(&bias);
                assert_eq!(
                    flat.len(),
                    lg.param_elems,
                    "reconstructed gradient size mismatch"
                );
                if let Some(updated) =
                    state.receive_grad(env.from, (layer, LAYER_GRANULAR_CHUNK), &flat)
                {
                    broadcast_matrix(&endpoint, plan.workers, iter, layer, &updated);
                }
            }
            other => panic!("server received unexpected message {other:?}"),
        }
        m_serve.record(serve_started.elapsed().as_nanos() as u64);
    }

    endpoint.shutdown().unwrap_or_else(|e| {
        panic!("shard transport shutdown failed: {e}");
    });
}

fn broadcast_matrix<T: Transport>(
    endpoint: &T,
    workers: usize,
    iter: u64,
    layer: u32,
    flat: &[f32],
) {
    for w in 0..workers {
        must_send(
            endpoint,
            w,
            Message::ParamMatrix {
                iter,
                layer,
                data: wire::encode_f32s_pooled(flat),
            },
        );
    }
}
