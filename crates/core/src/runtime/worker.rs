//! The worker: Algorithm 2 of the paper.
//!
//! Per iteration: forward, then backward with syncer `Send`s fired from the
//! per-layer gradient callback (wait-free backpropagation — communication of
//! upper layers proceeds while lower layers are still computing), then a
//! receive loop that drains the endpoint until every syncer reports complete
//! (the completion vector `C` is all ones), applying each layer's outcome as
//! it finishes.
//!
//! The worker is transport-agnostic: the same loop drives an in-process
//! channel endpoint (threaded [`train`](crate::runtime::train)) or a TCP
//! endpoint (the `poseidon-node` process runtime). A peer that stops talking
//! surfaces as a [`TransportError::Timeout`] panic naming this worker, its
//! iteration and its sync progress — never a silent hang. A frame whose
//! payload fails codec decode is poisoned: counted, diagnosed and dropped,
//! never a process abort at the decode site.

use crate::checkpoint::{LayerCheckpoint, WorkerCheckpoint};
use crate::chunk::Chunk;
use crate::config::CommScheme;
use crate::coordinator::Coordinator;
use crate::membership::MembershipSchedule;
use crate::metrics;
use crate::serving::{Snapshot, SnapshotCell};
use crate::syncer::{self, SyncOutcome, Syncer};
use crate::telemetry;
use crate::transport::{Message, Transport, TransportError};
use crate::wire;
use poseidon_nn::data::Dataset;
use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::Model;
use poseidon_tensor::bytesio;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// What one worker reports back.
pub(crate) struct WorkerOutput<M: Model> {
    /// Mean training loss per iteration (this worker's minibatches).
    pub losses: Vec<f32>,
    /// `(iteration, top-1 error)` on the eval set (worker 0 only).
    pub test_errors: Vec<(usize, f32)>,
    /// The final model replica.
    pub net: M,
    /// Wall time this worker spent on its own training loop (under SSP fast
    /// workers finish well before a straggler; under BSP they pace it).
    pub wall: std::time::Duration,
    /// Per-iteration busy-time distribution (forward + backward + any
    /// injected delay) — the straggler detector's input. Recorded into a
    /// private histogram so the verdict is independent of the global
    /// metrics gate.
    pub busy: metrics::HistogramSnapshot,
    /// Full training state at the end of the run (`export_state` runs only).
    pub checkpoint: Option<WorkerCheckpoint>,
}

/// Per-worker configuration slice.
pub(crate) struct WorkerConfig {
    pub me: usize,
    pub iterations: usize,
    pub batch: usize,
    pub update_scale: f32,
    pub momentum: f32,
    pub lr_schedule: crate::runtime::LrSchedule,
    pub eval_every: usize,
    /// `Some(staleness)` enables the SSP clock protocol.
    pub ssp_staleness: Option<u64>,
    /// Artificial per-iteration delay (straggler injection for experiments).
    pub straggler_delay: Option<std::time::Duration>,
    /// Uniform random per-iteration delay bound in microseconds (jitter
    /// injection for the SSP experiments).
    pub jitter_us: Option<u64>,
    /// This worker's share of the compute-thread budget for layer kernels.
    pub compute_threads: usize,
    /// Transport receive timeout before declaring a peer lost.
    pub comm_timeout: std::time::Duration,
    /// First absolute iteration of this run segment (checkpoint resume).
    pub start_iter: usize,
    /// Membership schedule shared by the whole mesh: iteration → epoch and
    /// epoch → shard-ownership map. Trivial for fixed-membership runs.
    pub schedule: Arc<MembershipSchedule>,
    /// Restore worker state exported by a previous segment.
    pub restore: Option<WorkerCheckpoint>,
    /// Export a [`WorkerCheckpoint`] at the end of the run.
    pub export_state: bool,
    /// Publish a parameter [`Snapshot`] after every iteration (the serving
    /// front door reads these; worker 0 only, by caller convention).
    pub snapshots: Option<Arc<SnapshotCell>>,
}

/// Sends or panics with enough context to name the broken link.
fn must_send<T: Transport>(endpoint: &T, me: usize, to: usize, msg: Message) {
    if let Err(e) = endpoint.send(to, msg) {
        panic!("worker {me}: send to endpoint {to} failed: {e}");
    }
}

/// Runs one worker to completion.
pub(crate) fn run_worker<M: Model, T: Transport>(
    mut cfg: WorkerConfig,
    coordinator: &Coordinator,
    mut net: M,
    data: Dataset,
    eval: Option<Dataset>,
    mut endpoint: T,
    clock: std::sync::Arc<crate::runtime::clock::SspClock>,
) -> WorkerOutput<M> {
    let workers = coordinator.cluster().workers;
    telemetry::set_thread_track(format!("worker {}", cfg.me));
    // Pin this worker thread's share of the compute budget; the layer
    // kernels read it thread-locally when fanning out batch work.
    poseidon_nn::parallel::set_compute_threads(cfg.compute_threads.max(1));
    let head = SoftmaxCrossEntropy;

    // One syncer per trainable layer — each carries its scheme, its codec
    // (with per-chunk error-feedback state for lossy codecs) — plus SFB
    // velocity buffers (identical on every replica).
    let mut syncers: HashMap<usize, Syncer> = HashMap::new();
    let mut sf_velocity: HashMap<usize, (poseidon_tensor::Matrix, Vec<f32>)> = HashMap::new();
    for (l, scheme) in coordinator.scheme_assignment() {
        let info = &coordinator.layers()[l];
        let chunks = coordinator.chunk_table().layer_chunks(l);
        syncers.insert(
            l,
            Syncer::new(l, scheme, chunks, info.param_elems, workers, cfg.me)
                .with_momentum(cfg.momentum)
                .with_codec(coordinator.best_codec(l)),
        );
    }
    let num_syncers = syncers.len();

    // Resume: overwrite the fresh replica with the checkpointed one —
    // params, SFB velocity, and every syncer's lossy-codec stream state —
    // so the segmented run is bitwise-identical to an uninterrupted one.
    if let Some(ck) = cfg.restore.take() {
        assert_eq!(
            ck.worker, cfg.me as u32,
            "checkpoint belongs to another worker"
        );
        assert_eq!(
            ck.next_iter, cfg.start_iter as u64,
            "checkpoint resumes at a different iteration than this segment starts"
        );
        assert_eq!(
            ck.layers.len(),
            num_syncers,
            "checkpoint layer set does not match the model"
        );
        for lc in ck.layers {
            let l = lc.layer as usize;
            let params = net
                .slot_mut(l)
                .and_then(|x| x.params_mut())
                .expect("checkpointed layer is trainable");
            syncer::write_params_flat(params, &lc.params);
            if let Some((rows, cols, vw, vb)) = lc.sf_velocity {
                sf_velocity.insert(
                    l,
                    (
                        poseidon_tensor::Matrix::from_vec(rows as usize, cols as usize, vw),
                        vb,
                    ),
                );
            }
            syncers
                .get_mut(&l)
                .expect("checkpointed layer has a syncer")
                .import_state(lc.syncer);
        }
    }

    // Metrics handles resolved once per worker, so recording inside the
    // loop never touches the registry mutex. The busy histogram is also
    // kept privately (unconditional `observe`) because the health verdict
    // must not flicker with the global metrics gate.
    let worker_label = cfg.me.to_string();
    let m_step = metrics::histogram("poseidon_step_time_ns", &[("worker", &worker_label)]);
    let m_busy = metrics::histogram("poseidon_busy_time_ns", &[("worker", &worker_label)]);
    let m_apply = metrics::histogram("poseidon_apply_ns", &[("worker", &worker_label)]);
    let m_sync: HashMap<usize, metrics::Histogram> = syncers
        .keys()
        .map(|&l| {
            let layer_label = l.to_string();
            (
                l,
                metrics::histogram(
                    "poseidon_sync_wait_ns",
                    &[("worker", &worker_label), ("layer", &layer_label)],
                ),
            )
        })
        .collect();
    let busy_local = metrics::Histogram::new();
    let max_layer = syncers.keys().copied().max().unwrap_or(0);
    let mut sync_started: Vec<Option<std::time::Instant>> = vec![None; max_layer + 1];

    let started = std::time::Instant::now();
    let mut jitter_rng = cfg.jitter_us.map(|_| {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0x5A17 + cfg.me as u64)
    });
    let mut losses = Vec::with_capacity(cfg.iterations);
    let mut test_errors = Vec::new();
    // Messages that arrived early for a future iteration (SFB peers can run
    // one iteration ahead of us).
    let mut stashed: VecDeque<(usize, Message)> = VecDeque::new();

    let m_epoch = metrics::gauge("poseidon_membership_epoch", &[]);
    for iter in cfg.start_iter..cfg.start_iter + cfg.iterations {
        let _iter_span = telemetry::span("iter", cfg.me as u64, iter as u64);
        // Membership epoch for this iteration: bump the transport stamp at
        // the boundary so everything sent from here on carries the new
        // epoch, and anything still addressed to the old ownership map is
        // recognisably stale.
        let epoch = cfg.schedule.epoch_at(iter);
        if endpoint.current_epoch() != epoch {
            endpoint.set_epoch(epoch);
            m_epoch.set(epoch as u64);
        }
        if let Some(staleness) = cfg.ssp_staleness {
            clock.wait_until_allowed(cfg.me, iter as u64, staleness);
        }
        for s in syncers.values_mut() {
            s.begin_iteration();
        }
        let iter_started = std::time::Instant::now();

        if let Some(delay) = cfg.straggler_delay {
            std::thread::sleep(delay);
        }
        if let (Some(bound), Some(rng)) = (cfg.jitter_us, jitter_rng.as_mut()) {
            use rand::Rng;
            std::thread::sleep(std::time::Duration::from_micros(rng.gen_range(0..bound)));
        }
        let (x, y) = data.minibatch(iter * cfg.batch, cfg.batch);
        let logits = net.forward(&x);
        let out = head.evaluate(&logits, &y);
        losses.push(out.loss);

        // Backward with WFBP sends: layer l's Send fires the moment bˡ done.
        net.backward_with(&out.grad, &mut |l, layer| {
            let Some(s) = syncers.get_mut(&l) else {
                return;
            };
            let params = layer.params().expect("trainable layer");
            match s.scheme() {
                CommScheme::Ps => {
                    let flat = syncer::flatten_grads(params);
                    let codec = s.codec();
                    // Snapshot the chunk table first: `encode_push` needs the
                    // syncer mutably (per-chunk error-feedback state).
                    let chunks: Vec<Chunk> = s.chunks().to_vec();
                    for (idx, chunk) in chunks.into_iter().enumerate() {
                        let payload =
                            s.encode_push(idx, &flat[chunk.offset..chunk.offset + chunk.len]);
                        must_send(
                            &endpoint,
                            cfg.me,
                            workers + cfg.schedule.owner(chunk.shard, epoch),
                            Message::GradChunk {
                                iter: iter as u64,
                                layer: l as u32,
                                chunk: idx as u32,
                                codec,
                                data: payload,
                            },
                        );
                    }
                }
                CommScheme::Sfb => {
                    let batch = layer
                        .sufficient_factors()
                        .expect("SFB requires sufficient factors");
                    let payload = bytesio::encode_sf_batch(&batch);
                    for peer in 0..workers {
                        if peer != cfg.me {
                            must_send(
                                &endpoint,
                                cfg.me,
                                peer,
                                Message::SfPush {
                                    iter: iter as u64,
                                    layer: l as u32,
                                    data: payload.clone(),
                                },
                            );
                        }
                    }
                    s.set_own_sf(batch);
                }
                CommScheme::AdamSf => {
                    let batch = layer
                        .sufficient_factors()
                        .expect("Adam requires sufficient factors");
                    let owner = cfg.schedule.owner(l % workers, epoch);
                    must_send(
                        &endpoint,
                        cfg.me,
                        workers + owner,
                        Message::SfPush {
                            iter: iter as u64,
                            layer: l as u32,
                            data: bytesio::encode_sf_batch(&batch),
                        },
                    );
                }
                CommScheme::Ring | CommScheme::Tree => {
                    // Scale client-side with the same f32 product the PS
                    // shard uses (`update_scale · lr multiplier`), so the
                    // collective fold is bitwise-identical to the server's.
                    let flat = syncer::flatten_grads(params);
                    let scale = cfg.update_scale * cfg.lr_schedule.multiplier(iter);
                    let scaled: Vec<f32> = flat.iter().map(|g| scale * g).collect();
                    let codec = s.codec();
                    for send in s.set_collective_grad(scaled) {
                        must_send(
                            &endpoint,
                            cfg.me,
                            send.to_worker,
                            Message::Collective {
                                iter: iter as u64,
                                layer: l as u32,
                                route: send.route,
                                codec,
                                data: send.data,
                            },
                        );
                    }
                }
            }
            // The layer's sync window opens the instant its gradient left
            // (WFBP); it closes when the outcome is applied below. The span
            // lives on the layer's own lane because windows of different
            // layers overlap.
            if telemetry::is_enabled() {
                telemetry::instant("grad.ready", l as u64, iter as u64);
                telemetry::span_begin_lane("wfbp.sync", l as u32, l as u64, iter as u64);
            }
            sync_started[l] = Some(std::time::Instant::now());
        });
        // Busy window: everything this worker computed for the step
        // (injected delay included — that is exactly what a straggler looks
        // like to the mesh).
        let busy_ns = iter_started.elapsed().as_nanos() as u64;
        m_busy.record(busy_ns);
        busy_local.observe(busy_ns);

        // Receive until the completion vector is all ones. Replay anything
        // stashed for this iteration first, in arrival order — the transports
        // guarantee per-link FIFO and the collective chains rely on it (a
        // segment's DISTRIBUTE must not overtake its REDUCE on replay).
        let mut completed = 0usize;
        let mut pending: VecDeque<(usize, Message)> = std::mem::take(&mut stashed);
        while completed < num_syncers {
            let (from, msg) = if let Some(p) = pending.pop_front() {
                p
            } else {
                match crate::runtime::recv_with_retry(&endpoint, cfg.comm_timeout) {
                    Ok(env) => (env.from, env.msg),
                    Err(e @ (TransportError::Timeout(_) | TransportError::Closed)) => panic!(
                        "worker {} starved at iteration {iter} with {completed}/{num_syncers} \
                         layers synced — a peer died or stalled: {e}",
                        cfg.me
                    ),
                    Err(e) => panic!(
                        "worker {} transport failed at iteration {iter}: {e}",
                        cfg.me
                    ),
                }
            };
            // Control traffic is consumed by the reliability layer; any that
            // surfaces here (a peer acking over a bare transport) carries no
            // training state and is dropped before the iteration bookkeeping.
            if msg.is_control() {
                continue;
            }
            let msg_iter = msg.iter() as usize;
            if msg_iter > iter {
                stashed.push_back((from, msg));
                continue;
            }
            assert_eq!(msg_iter, iter, "stale message from a past iteration");
            let layer = match &msg {
                Message::GradChunk { layer, .. }
                | Message::ParamChunk { layer, .. }
                | Message::SfPush { layer, .. }
                | Message::ParamMatrix { layer, .. }
                | Message::Collective { layer, .. } => *layer as usize,
                Message::Handoff { .. } => {
                    // Shard-to-shard state transfer; a worker is never a
                    // handoff destination. Arriving here means a routing bug.
                    panic!("worker {} received a shard handoff frame", cfg.me)
                }
                Message::Ack { .. } | Message::Nack { .. } => {
                    unreachable!("control frames are filtered before dispatch")
                }
            };
            let s = syncers.get_mut(&layer).expect("message for unknown layer");
            let was_complete = s.is_complete();
            match msg {
                Message::ParamChunk {
                    chunk, codec, data, ..
                } => {
                    // Decode by the frame's codec tag; identity carries fresh
                    // params, a lossy codec carries the compressed delta (the
                    // syncer's outcome type follows its own codec).
                    let elems = s.chunks()[chunk as usize].len;
                    match wire::decode_codec(codec, &data, elems) {
                        Ok(vals) => s.on_param_chunk(chunk as usize, vals),
                        Err(e) => {
                            crate::runtime::note_poisoned_frame(
                                endpoint.endpoint_id(),
                                from,
                                "param chunk",
                                &e,
                            );
                            continue;
                        }
                    }
                }
                Message::ParamMatrix { data, .. } => {
                    s.on_param_matrix(wire::decode_f32s(&data).expect("corrupt param matrix"));
                }
                Message::SfPush { data, .. } => {
                    s.on_peer_sf(
                        from,
                        bytesio::decode_sf_batch(&data).expect("corrupt SF payload"),
                    );
                }
                Message::Collective { route, data, .. } => {
                    let codec = s.codec();
                    match s.on_collective(from, route, data) {
                        Ok(sends) => {
                            for send in sends {
                                must_send(
                                    &endpoint,
                                    cfg.me,
                                    send.to_worker,
                                    Message::Collective {
                                        iter: iter as u64,
                                        layer: layer as u32,
                                        route: send.route,
                                        codec,
                                        data: send.data,
                                    },
                                );
                            }
                        }
                        Err(e) => {
                            crate::runtime::note_poisoned_frame(
                                endpoint.endpoint_id(),
                                from,
                                "collective",
                                &e,
                            );
                            continue;
                        }
                    }
                }
                Message::GradChunk { .. } => {
                    panic!("worker {} received an unexpected gradient chunk", cfg.me)
                }
                Message::Handoff { .. } => {
                    unreachable!("handoff frames are rejected before dispatch")
                }
                Message::Ack { .. } | Message::Nack { .. } => {
                    unreachable!("control frames are filtered before dispatch")
                }
            }
            if !was_complete && s.is_complete() {
                telemetry::span_begin("apply", layer as u64, iter as u64);
                let apply_started = std::time::Instant::now();
                let outcome = s.take_outcome();
                let params = net
                    .slot_mut(layer)
                    .and_then(|l| l.params_mut())
                    .expect("trainable layer");
                match outcome {
                    SyncOutcome::FreshParams(flat) => syncer::write_params_flat(params, &flat),
                    SyncOutcome::ApplyDelta(flat) => syncer::apply_delta_flat(params, &flat),
                    SyncOutcome::SfApply(batches) => {
                        let scale = cfg.update_scale * cfg.lr_schedule.multiplier(iter);
                        let (rows, cols) = params.weights.shape();
                        let (grad_w, grad_b) = syncer::reconstruct_sf_batches(&batches, rows, cols);
                        let (vw, vb) = sf_velocity.entry(layer).or_insert_with(|| {
                            (poseidon_tensor::Matrix::zeros(rows, cols), vec![0.0; rows])
                        });
                        vw.scale(cfg.momentum);
                        vw.axpy(scale, &grad_w);
                        for (v, g) in vb.iter_mut().zip(&grad_b) {
                            *v = cfg.momentum * *v + scale * g;
                        }
                        params.weights.add_assign(vw);
                        for (i, &v) in vb.iter().enumerate() {
                            params.bias[(0, i)] += v;
                        }
                    }
                }
                telemetry::span_end("apply", layer as u64, iter as u64);
                telemetry::span_end_lane("wfbp.sync", layer as u32, layer as u64, iter as u64);
                m_apply.record(apply_started.elapsed().as_nanos() as u64);
                if let Some(t0) = sync_started.get_mut(layer).and_then(Option::take) {
                    if let Some(h) = m_sync.get(&layer) {
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                }
                completed += 1;
            }
        }

        m_step.record(iter_started.elapsed().as_nanos() as u64);

        if cfg.ssp_staleness.is_some() {
            clock.advance(cfg.me, iter as u64);
        }

        // Periodic evaluation (worker 0 only, by convention of the caller
        // passing `eval` only to worker 0).
        if let Some(eval_set) = &eval {
            if cfg.eval_every > 0 && (iter + 1) % cfg.eval_every == 0 {
                let err = evaluate_error(&mut net, eval_set);
                test_errors.push((iter + 1, err));
            }
        }

        // Serving: publish this iteration's replica under snapshot
        // isolation. In-flight requests keep reading the version they
        // pinned; new requests see this one.
        if let Some(cell) = &cfg.snapshots {
            cell.publish(Snapshot {
                iter: iter as u64,
                epoch,
                params: crate::runtime::flatten_model_params(&net),
            });
        }
    }

    let wall = started.elapsed();
    endpoint
        .shutdown()
        .unwrap_or_else(|e| panic!("worker {}: transport shutdown failed: {e}", cfg.me));

    // Export: the complete per-layer state a future segment needs to resume
    // bitwise-identically — replica params, SFB velocity, syncer stream
    // state (collective velocity + lossy-codec residuals).
    let checkpoint = cfg.export_state.then(|| {
        let next_iter = cfg.start_iter + cfg.iterations;
        let mut layer_ids: Vec<usize> = syncers.keys().copied().collect();
        layer_ids.sort_unstable();
        WorkerCheckpoint {
            worker: cfg.me as u32,
            next_iter: next_iter as u64,
            epoch: cfg.schedule.epoch_at(next_iter),
            layers: layer_ids
                .into_iter()
                .map(|l| LayerCheckpoint {
                    layer: l as u32,
                    params: syncer::flatten_params(
                        net.slot(l)
                            .and_then(|x| x.params())
                            .expect("trainable layer"),
                    ),
                    sf_velocity: sf_velocity.get(&l).map(|(vw, vb)| {
                        let (rows, cols) = vw.shape();
                        (rows as u32, cols as u32, vw.as_slice().to_vec(), vb.clone())
                    }),
                    syncer: syncers[&l].export_state(),
                })
                .collect(),
        }
    });

    WorkerOutput {
        losses,
        test_errors,
        net,
        wall,
        busy: busy_local.snapshot(),
        checkpoint,
    }
}

/// Top-1 error of `net` on `data` (whole set, one batch of all samples).
pub fn evaluate_error<M: Model>(net: &mut M, data: &Dataset) -> f32 {
    let (x, y) = data.minibatch(0, data.len());
    let logits = net.forward(&x);
    let out = SoftmaxCrossEntropy.evaluate(&logits, &y);
    1.0 - out.correct as f32 / data.len() as f32
}
