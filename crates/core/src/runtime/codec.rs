//! Payload codecs for the runtime's wire messages.
//!
//! Dense payloads are raw little-endian f32 arrays (the header fields travel
//! in the [`crate::transport::Message`] envelope); the 1-bit payload bundles
//! the quantized weight gradient with the uncompressed bias gradient.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use poseidon_tensor::quantize::QuantizedGrad;

/// Chunk id marking a layer-granular message (Adam / 1-bit paths), which
/// bypasses KV-pair chunking.
pub const LAYER_GRANULAR_CHUNK: u32 = u32::MAX;

/// Encodes a flat f32 slice.
pub fn encode_f32s(vals: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(vals.len() * 4);
    for &v in vals {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode_f32s`].
///
/// Returns `None` if the length is not a multiple of 4.
pub fn decode_f32s(mut buf: &[u8]) -> Option<Vec<f32>> {
    if buf.len() % 4 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(buf.len() / 4);
    while buf.has_remaining() {
        out.push(buf.get_f32_le());
    }
    Some(out)
}

/// Encodes a 1-bit payload: `u32 qlen ++ quantized weights ++ bias f32s`.
pub fn encode_onebit(quant: &QuantizedGrad, bias_grad: &[f32]) -> Bytes {
    let q = quant.to_bytes();
    let mut buf = BytesMut::with_capacity(4 + q.len() + bias_grad.len() * 4);
    buf.put_u32_le(q.len() as u32);
    buf.put_slice(&q);
    for &v in bias_grad {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode_onebit`].
pub fn decode_onebit(mut buf: &[u8]) -> Option<(QuantizedGrad, Vec<f32>)> {
    if buf.remaining() < 4 {
        return None;
    }
    let qlen = buf.get_u32_le() as usize;
    if buf.remaining() < qlen {
        return None;
    }
    let quant = QuantizedGrad::from_bytes(&buf[..qlen])?;
    buf.advance(qlen);
    let bias = decode_f32s(buf)?;
    Some((quant, bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_tensor::quantize::OneBitQuantizer;
    use poseidon_tensor::Matrix;

    #[test]
    fn f32_roundtrip() {
        let vals = vec![1.5f32, -2.25, 0.0, f32::MAX];
        let bytes = encode_f32s(&vals);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_f32s(&bytes).unwrap(), vals);
    }

    #[test]
    fn f32_rejects_misaligned() {
        assert!(decode_f32s(&[0u8; 5]).is_none());
        assert_eq!(decode_f32s(&[]).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn onebit_roundtrip() {
        let g = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0]);
        let mut quantizer = OneBitQuantizer::new(2, 3);
        let quant = quantizer.quantize(&g);
        let bias = vec![0.5f32, -0.5];
        let bytes = encode_onebit(&quant, &bias);
        let (q2, b2) = decode_onebit(&bytes).unwrap();
        assert_eq!(q2, quant);
        assert_eq!(b2, bias);
    }

    #[test]
    fn onebit_rejects_truncation() {
        let g = Matrix::filled(4, 4, 1.0);
        let quant = OneBitQuantizer::new(4, 4).quantize(&g);
        let bytes = encode_onebit(&quant, &[1.0]);
        assert!(decode_onebit(&bytes[..3]).is_none());
        assert!(decode_onebit(&bytes[..bytes.len() - 2]).is_none());
    }

    #[test]
    fn onebit_payload_is_compressed() {
        let g = Matrix::filled(128, 128, 1.0);
        let quant = OneBitQuantizer::new(128, 128).quantize(&g);
        let bytes = encode_onebit(&quant, &[0.0; 128]);
        let dense = 128 * 128 * 4;
        assert!(bytes.len() < dense / 10, "{} vs {dense}", bytes.len());
    }
}
