//! The distributed-training runtime.
//!
//! This backend executes Poseidon's protocol for real: `P` workers train real
//! [`poseidon_nn::Network`] replicas on disjoint data shards, and `P`
//! KV-store shards (colocated: shard *i* shares physical node *i* with worker
//! *i*) hold the master parameters. All synchronisation flows as serialised
//! byte messages over a pluggable [`crate::transport::Transport`] — the
//! threaded [`train`] entry point wires everything over
//! [`InProcTransport`](crate::transport::InProcTransport) channels, while
//! [`run_endpoint`] drives a *single* endpoint so one OS process per
//! worker/shard can form the same protocol over
//! [`TcpTransport`](crate::transport::TcpTransport) (see the `poseidon-node`
//! binary). Either way the traffic the integration tests measure is the
//! traffic the analytic cost model predicts.
//!
//! The runtime implements synchronous (BSP) data-parallel SGD exactly as in
//! the paper: per-KV-pair update counts on the server side, a per-layer
//! completion vector on the worker side, and gradient averaging such that the
//! distributed trajectory equals single-node large-batch SGD.

mod clock;
mod node;
mod server;
mod worker;

pub use crate::wire::LAYER_GRANULAR_CHUNK;
pub use clock::SspClock;
pub use node::{flatten_model_params, install_model_params, run_endpoint, NodeOutcome};
pub use worker::evaluate_error;

use crate::chunk::Chunk;
use crate::config::{
    ClusterConfig, Codec, CodecPolicy, CommScheme, ComputeConfig, Consistency, Partition,
    SchemePolicy,
};
use crate::coordinator::Coordinator;
use crate::faults::{FaultPlan, FaultyTransport, FiredFault};
use crate::runtime::server::{LayerGranular, ServerPlan};
use crate::runtime::worker::{WorkerConfig, WorkerOutput};
use crate::syncer;
use crate::telemetry::{self, TelemetryConfig};
use crate::transport::{
    self, Envelope, ReliabilityConfig, ReliabilityStats, ReliableTransport, TrafficCounters,
    Transport, TransportError,
};
use poseidon_nn::data::Dataset;
use poseidon_nn::Model;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Process-wide count of frames dropped because their payload failed codec
/// decode (a "poisoned" frame). Decode corruption is surfaced — counted here,
/// emitted as a `frame.poisoned` telemetry instant and a stderr diagnostic —
/// instead of aborting the process at the decode site; a run that then starves
/// still fails within `comm_timeout` with the usual starvation diagnosis.
static POISONED_FRAMES: AtomicU64 = AtomicU64::new(0);

/// Total poisoned (undecodable) frames dropped by workers and shards since
/// process start.
pub fn poisoned_frames() -> u64 {
    POISONED_FRAMES.load(Ordering::Relaxed)
}

/// Records one poisoned frame: bumps the process-wide counter and names the
/// link and decode error on stderr/telemetry. The caller drops the frame.
pub(crate) fn note_poisoned_frame(
    endpoint: usize,
    from: usize,
    what: &str,
    err: &crate::wire::CodecError,
) {
    POISONED_FRAMES.fetch_add(1, Ordering::Relaxed);
    // Cold path (a frame just failed to decode) — the inline registry lookup
    // is fine here.
    crate::metrics::counter("poseidon_poisoned_frames_total", &[]).inc();
    if telemetry::is_enabled() {
        telemetry::instant("frame.poisoned", endpoint as u64, from as u64);
    }
    eprintln!(
        "poseidon: endpoint {endpoint}: poisoned {what} frame from endpoint {from} dropped: {err}"
    );
}

/// A learning-rate schedule evaluated per BSP iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate (the default).
    Constant,
    /// Multiply the learning rate by `factor` every `every` iterations
    /// (Caffe's `step` policy, used by the paper's solvers).
    Step {
        /// Iterations between decays.
        every: usize,
        /// Multiplicative factor (e.g. 0.1).
        factor: f32,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier at `iter`.
    pub fn multiplier(&self, iter: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { every, factor } => factor.powi((iter / every.max(1)) as i32),
        }
    }
}

/// Fault-injection and recovery knobs of a run (the chaos plane).
///
/// With either field set, every endpoint's transport is wrapped as
/// `Reliable(Faulty(transport))`: the [`FaultyTransport`] executes the plan
/// on the send path (an empty plan when only `reliability` is set), and the
/// [`ReliableTransport`] above it heals whatever the plan breaks — so the
/// run either converges bitwise identical to the fault-free run, or (for
/// unrecoverable plans like a black-holed link) aborts within
/// [`RuntimeConfig::comm_timeout`] with a
/// [`TimeoutDiag`](crate::transport::TimeoutDiag)-bearing panic.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// The scripted faults, if any.
    pub plan: Option<FaultPlan>,
    /// Reliability-layer tuning; `None` means
    /// [`ReliabilityConfig::default`] when the chaos plane is active.
    pub reliability: Option<ReliabilityConfig>,
}

impl FaultConfig {
    /// Whether the chaos plane (fault wrapper + reliability layer) is on.
    pub fn active(&self) -> bool {
        self.plan.is_some() || self.reliability.is_some()
    }
}

/// What the chaos plane observed during a run: every fault that fired, and
/// the recovery work the reliability layer did to survive it, summed over
/// all endpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Every fired fault, ordered by (sender, receiver, frame index).
    pub fired: Vec<FiredFault>,
    /// Data frames retransmitted in response to nacks.
    pub retransmits: u64,
    /// Duplicate data frames dropped.
    pub dups_dropped: u64,
    /// Gap nacks sent.
    pub nacks_sent: u64,
    /// Cumulative acks sent.
    pub acks_sent: u64,
    /// Tail-loss probe rounds.
    pub probes_sent: u64,
    /// Out-of-order frames stashed for reordering.
    pub reorders_stashed: u64,
}

impl ChaosReport {
    /// Sum of repair actions (retransmits + dup drops + reorders + nacks) —
    /// non-zero iff the reliability layer ever had to fix anything.
    pub fn recovery_actions(&self) -> u64 {
        self.retransmits + self.dups_dropped + self.nacks_sent + self.reorders_stashed
    }
}

/// Configuration of a distributed training run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of workers (`P1`); shards are colocated, so also `P2`.
    pub workers: usize,
    /// Per-worker minibatch size (`K`).
    pub batch_per_worker: usize,
    /// Learning rate applied to the *averaged* gradient, so the distributed
    /// update equals a single-node step on the `K·P` global batch.
    pub learning_rate: f32,
    /// Classical momentum µ applied to the aggregated gradient (0 = plain
    /// SGD, the default). PS/Adam layers keep velocity on their server shard,
    /// SFB layers keep identical velocity on every replica, 1-bit layers on
    /// the aggregate before its quantization. Unsupported under SSP.
    pub momentum: f32,
    /// Learning-rate schedule applied on top of `learning_rate`.
    pub lr_schedule: LrSchedule,
    /// Layer-to-scheme policy.
    pub policy: SchemePolicy,
    /// Layer-to-codec policy, orthogonal to the scheme policy. The default
    /// [`CodecPolicy::Identity`] is bitwise identical to the pre-codec wire;
    /// [`SchemePolicy::OneBit`] overrides this with [`Codec::OneBit`] on FC
    /// layers regardless (the named CNTK baseline). Lossy codecs require BSP.
    pub codec: CodecPolicy,
    /// Parameter partitioning across shards.
    pub partition: Partition,
    /// Training iterations.
    pub iterations: usize,
    /// Evaluate the eval set every this many iterations (0 = never).
    pub eval_every: usize,
    /// Consistency model. [`Consistency::Ssp`] requires
    /// [`SchemePolicy::AlwaysPs`]: SFB, Adam and 1-bit are synchronous
    /// protocols (they barrier on all workers' contributions).
    pub consistency: Consistency,
    /// Inject a straggler for experiments: `(worker, extra ms per iteration)`.
    pub straggler_delay_ms: Option<(usize, u64)>,
    /// Inject per-iteration compute jitter for experiments: every worker
    /// sleeps a uniformly random `0..jitter` microseconds each iteration
    /// (deterministic per worker id). This is the workload SSP absorbs.
    pub jitter_us: Option<u64>,
    /// Compute-thread budget for the layer kernels, divided evenly across
    /// worker threads so nested parallelism stays bounded. Thread count
    /// never affects results (kernels are bitwise thread-count independent).
    pub compute: ComputeConfig,
    /// How long a worker or shard waits on its transport before declaring a
    /// peer lost. A stalled run fails with a diagnosable
    /// [`TransportError::Timeout`](crate::transport::TransportError::Timeout)
    /// naming the starved endpoint instead of hanging forever.
    pub comm_timeout: Duration,
    /// Telemetry recorder knobs. Disabled by default; enabling records
    /// per-layer compute spans, WFBP sync windows and transport counters into
    /// [`TrainResult::trace`] without perturbing the numerics (runs are
    /// bitwise identical either way).
    pub telemetry: TelemetryConfig,
    /// The chaos plane: scripted fault injection plus the reliability layer
    /// that heals it. Off by default; with faults scripted the run must
    /// still produce bitwise-identical results (or abort bounded, for
    /// unrecoverable plans). See [`FaultConfig`].
    pub faults: FaultConfig,
    /// Health-plane knobs (straggler detection threshold). The verdicts land
    /// in [`TrainResult::health`]; detection reads per-worker busy-time
    /// distributions recorded run-locally, so it works with the global
    /// metrics gate off and never perturbs numerics.
    pub health: crate::health::HealthConfig,
    /// Scripted elastic-membership plan (shard joins/leaves/restarts at
    /// logical iterations). Empty = fixed membership. Non-trivial plans
    /// require BSP and exclude layer-granular (AdamSf) shards; workers are
    /// never elastic (the mesh stays `2P` endpoints), only KV ownership
    /// moves, so the elastic run is bitwise-identical to the fixed one.
    pub membership: crate::membership::MembershipPlan,
    /// First absolute iteration of this run segment. Non-zero requires
    /// [`RuntimeConfig::resume`] — parameters and optimizer state must come
    /// from the checkpoint for the segmented run to continue bitwise.
    pub start_iter: usize,
    /// Training state exported by a previous segment's `export_state` run.
    pub resume: Option<crate::checkpoint::TrainingCheckpoint>,
    /// Export the full training state (worker replicas + syncer stream
    /// state + shard masters) into [`TrainResult::checkpoint`].
    pub export_state: bool,
    /// Publish worker 0's parameters after every iteration into this cell —
    /// the serving front door ([`crate::serving`]) answers against it under
    /// snapshot isolation while training continues.
    pub serve_snapshots: Option<Arc<crate::serving::SnapshotCell>>,
}

impl RuntimeConfig {
    /// A reasonable default: hybrid policy, 2 MB KV pairs, no evaluation.
    pub fn new(
        workers: usize,
        batch_per_worker: usize,
        learning_rate: f32,
        iterations: usize,
    ) -> Self {
        Self {
            workers,
            batch_per_worker,
            learning_rate,
            momentum: 0.0,
            lr_schedule: LrSchedule::Constant,
            policy: SchemePolicy::Hybrid,
            codec: CodecPolicy::Identity,
            partition: Partition::default_kv_pairs(),
            iterations,
            eval_every: 0,
            consistency: Consistency::Bsp,
            straggler_delay_ms: None,
            jitter_us: None,
            compute: ComputeConfig::default(),
            comm_timeout: Duration::from_secs(30),
            telemetry: TelemetryConfig::default(),
            faults: FaultConfig::default(),
            health: Default::default(),
            membership: crate::membership::MembershipPlan::empty(),
            start_iter: 0,
            resume: None,
            export_state: false,
            serve_snapshots: None,
        }
    }
}

/// The result of a distributed training run.
pub struct TrainResult<M: Model> {
    /// Mean training loss per iteration, averaged over workers.
    pub losses: Vec<f32>,
    /// `(iteration, top-1 error)` samples from worker 0 on the eval set.
    pub test_errors: Vec<(usize, f32)>,
    /// Worker 0's final replica (all replicas are identical under BSP).
    pub net: M,
    /// Per-node traffic counters for the whole run.
    pub traffic: Arc<TrafficCounters>,
    /// The scheme the coordinator chose per trainable layer.
    pub schemes: Vec<(usize, CommScheme)>,
    /// The gradient codec the coordinator chose per trainable layer.
    pub codecs: Vec<(usize, Codec)>,
    /// Largest clock spread observed between the fastest and slowest worker
    /// (0 under BSP; bounded by `staleness + 1` under SSP).
    pub max_staleness_spread: u64,
    /// Per-worker wall time of the training loop, seconds. Under BSP every
    /// worker paces the slowest; under SSP fast workers finish early.
    pub worker_wall_s: Vec<f64>,
    /// Everything the telemetry recorder captured, when
    /// [`RuntimeConfig::telemetry`] was enabled (`None` otherwise). Export
    /// with [`crate::telemetry::chrome::to_chrome_json`] or summarise with
    /// [`crate::telemetry::report::summarize`].
    pub trace: Option<telemetry::Trace>,
    /// What the chaos plane did, when [`RuntimeConfig::faults`] was active
    /// (`None` otherwise): the fired fault events and the summed recovery
    /// work of every endpoint's reliability layer.
    pub fault_report: Option<ChaosReport>,
    /// Per-worker health verdicts: each worker's busy-time p50 judged
    /// against the mesh median with
    /// [`HealthConfig::straggler_factor`](crate::health::HealthConfig).
    pub health: crate::health::HealthReport,
    /// Full training state at `start_iter + iterations`, when
    /// [`RuntimeConfig::export_state`] was set (`None` otherwise). Feed it
    /// to a later segment's [`RuntimeConfig::resume`] to continue the run
    /// bitwise-identically.
    pub checkpoint: Option<crate::checkpoint::TrainingCheckpoint>,
}

/// How many slices a blocking receive's `comm_timeout` budget is cut into.
/// Each expired slice is surfaced as a `comm.retry` telemetry instant and
/// retried, letting the layers below (reliability probes, TCP redials) keep
/// working; the budget itself is unchanged, so a genuinely dead peer still
/// produces a verdict within `comm_timeout`.
pub(crate) const COMM_RETRY_ROUNDS: u32 = 4;

/// Blocking receive with `comm_timeout` sliced into [`COMM_RETRY_ROUNDS`]
/// retry rounds. Returns the last round's [`TransportError::Timeout`] (its
/// [`TimeoutDiag`](crate::transport::TimeoutDiag) carries the recovery
/// attempt count) once the whole budget is spent.
pub(crate) fn recv_with_retry<T: Transport>(
    endpoint: &T,
    timeout: Duration,
) -> Result<Envelope, TransportError> {
    let slice = (timeout / COMM_RETRY_ROUNDS).max(Duration::from_millis(1));
    let mut last = None;
    for round in 1..=COMM_RETRY_ROUNDS {
        match endpoint.recv_timeout(slice) {
            Err(TransportError::Timeout(diag)) => {
                if round < COMM_RETRY_ROUNDS && telemetry::is_enabled() {
                    telemetry::instant("comm.retry", endpoint.endpoint_id() as u64, round as u64);
                }
                last = Some(TransportError::Timeout(diag));
            }
            other => return other,
        }
    }
    Err(last.expect("at least one retry round ran"))
}

/// Validates the consistency configuration, returning the SSP staleness
/// bound if enabled.
fn ssp_mode(cfg: &RuntimeConfig) -> Option<u64> {
    match cfg.consistency {
        Consistency::Bsp => None,
        Consistency::Ssp { staleness } => {
            assert_eq!(
                cfg.policy,
                SchemePolicy::AlwaysPs,
                "SSP supports the PS path only; SFB/Adam/1-bit are synchronous protocols"
            );
            assert_eq!(cfg.momentum, 0.0, "momentum is not supported under SSP");
            Some(staleness as u64)
        }
    }
}

/// Everything derived from the model + config that every participant (worker
/// or shard, in-process or remote) must agree on: the scheme assignment, the
/// chunk tables, and each shard's serving plan with initial master values.
pub(crate) struct RunPlan {
    pub coordinator: Coordinator,
    pub schemes: Vec<(usize, CommScheme)>,
    pub codecs: Vec<(usize, Codec)>,
    pub plans: Vec<ServerPlan>,
    pub update_scale: f32,
    /// The resolved membership schedule every participant routes by.
    pub schedule: Arc<crate::membership::MembershipSchedule>,
}

/// Builds the shared run plan deterministically from the reference replica.
pub(crate) fn build_run_plan<M: Model>(reference: &M, cfg: &RuntimeConfig, ssp: bool) -> RunPlan {
    let p = cfg.workers;
    let cluster = ClusterConfig::colocated(p, cfg.batch_per_worker);
    let coordinator = Coordinator::from_model(reference, cluster, cfg.policy, cfg.partition)
        .with_codec_policy(cfg.codec);
    let schemes = coordinator.scheme_assignment();
    let codecs = coordinator.codec_assignment();
    let update_scale = -cfg.learning_rate / p as f32;
    let schedule = crate::membership::MembershipSchedule::resolve(&cfg.membership, p)
        .unwrap_or_else(|e| panic!("invalid membership plan: {e}"));
    if !schedule.is_trivial() {
        assert!(!ssp, "elastic membership requires BSP");
    }
    assert!(
        cfg.start_iter == 0 || cfg.resume.is_some(),
        "a mid-run segment (start_iter > 0) must resume from a checkpoint"
    );
    if cfg.start_iter > 0 || cfg.resume.is_some() || cfg.export_state {
        assert!(!ssp, "checkpoint/restore requires BSP");
    }

    let mut plans: Vec<ServerPlan> = (0..p)
        .map(|shard| ServerPlan {
            ps_chunks: Vec::new(),
            layer_granular: Vec::new(),
            init_values: Vec::new(),
            workers: p,
            update_scale,
            momentum: cfg.momentum,
            lr_schedule: cfg.lr_schedule,
            iterations: cfg.iterations,
            ssp,
            comm_timeout: cfg.comm_timeout,
            me_shard: shard,
            schedule: Arc::clone(&schedule),
            start_iter: cfg.start_iter,
            all_chunks: Vec::new(),
            all_init: Vec::new(),
            restore: None,
            export_state: cfg.export_state,
        })
        .collect();
    for &(l, scheme) in &schemes {
        let info = &coordinator.layers()[l];
        match scheme {
            CommScheme::Ps => {
                let codec = coordinator.best_codec(l);
                if ssp {
                    assert_eq!(
                        codec,
                        Codec::Identity,
                        "SSP supports the identity codec only; lossy error feedback needs the \
                         BSP barrier"
                    );
                }
                for (idx, chunk) in coordinator.chunk_table().layer_chunks(l).iter().enumerate() {
                    plans[chunk.shard]
                        .ps_chunks
                        .push((idx as u32, *chunk, codec));
                }
            }
            CommScheme::AdamSf => {
                let owner = l % p;
                plans[owner].layer_granular.push(LayerGranular {
                    layer: l,
                    fc_shape: info.fc_shape.expect("layer-granular schemes need FC shape"),
                    param_elems: info.param_elems,
                });
            }
            // Peer-to-peer schemes; no server state.
            CommScheme::Sfb | CommScheme::Ring | CommScheme::Tree => {}
        }
    }
    // Initial master values in the servers' canonical order: all PS chunks,
    // then all layer-granular layers.
    for plan in &mut plans {
        let mut ordered = Vec::with_capacity(plan.ps_chunks.len() + plan.layer_granular.len());
        for &(_, chunk, _) in &plan.ps_chunks {
            let flat = syncer::flatten_params(
                reference
                    .slot(chunk.layer)
                    .and_then(|l| l.params())
                    .expect("trainable layer"),
            );
            ordered.push(flat[chunk.offset..chunk.offset + chunk.len].to_vec());
        }
        for lg in &plan.layer_granular {
            ordered.push(syncer::flatten_params(
                reference
                    .slot(lg.layer)
                    .and_then(|l| l.params())
                    .expect("trainable layer"),
            ));
        }
        plan.init_values = ordered;
    }

    // Elastic membership: every shard must know the full ownership universe
    // (every PS chunk and its deterministic initial value) — a shard that is
    // inactive at epoch 0 owns nothing, so its home pairs are initialised by
    // whoever owns them.
    if !schedule.is_trivial() {
        assert!(
            plans.iter().all(|plan| plan.layer_granular.is_empty()),
            "elastic membership does not support layer-granular (AdamSf) shards"
        );
        let mut all_chunks: Vec<(u32, Chunk, Codec)> = Vec::new();
        for plan in &plans {
            all_chunks.extend(plan.ps_chunks.iter().copied());
        }
        all_chunks.sort_unstable_by_key(|&(idx, chunk, _)| (chunk.layer, idx));
        let all_init: Vec<Vec<f32>> = all_chunks
            .iter()
            .map(|&(_, chunk, _)| {
                let flat = syncer::flatten_params(
                    reference
                        .slot(chunk.layer)
                        .and_then(|l| l.params())
                        .expect("trainable layer"),
                );
                flat[chunk.offset..chunk.offset + chunk.len].to_vec()
            })
            .collect();
        for plan in &mut plans {
            plan.all_chunks = all_chunks.clone();
            plan.all_init = all_init.clone();
        }
    }

    RunPlan {
        coordinator,
        schemes,
        codecs,
        plans,
        update_scale,
        schedule,
    }
}

/// The per-worker configuration slice for worker `w`.
fn worker_config(
    cfg: &RuntimeConfig,
    w: usize,
    update_scale: f32,
    ssp: Option<u64>,
    compute_threads: usize,
    schedule: &Arc<crate::membership::MembershipSchedule>,
    restore: Option<crate::checkpoint::WorkerCheckpoint>,
) -> WorkerConfig {
    WorkerConfig {
        me: w,
        iterations: cfg.iterations,
        batch: cfg.batch_per_worker,
        update_scale,
        momentum: cfg.momentum,
        lr_schedule: cfg.lr_schedule,
        eval_every: cfg.eval_every,
        ssp_staleness: ssp,
        straggler_delay: match cfg.straggler_delay_ms {
            Some((node, ms)) if node == w => Some(Duration::from_millis(ms)),
            _ => None,
        },
        jitter_us: cfg.jitter_us,
        compute_threads,
        comm_timeout: cfg.comm_timeout,
        start_iter: cfg.start_iter,
        schedule: Arc::clone(schedule),
        restore,
        export_state: cfg.export_state,
        snapshots: if w == 0 {
            cfg.serve_snapshots.clone()
        } else {
            None
        },
    }
}

/// Trains `net_factory()`-built replicas on `data` across threads.
///
/// `net_factory` must be deterministic — every worker builds its replica from
/// it and the replicas must start identical (same seed). The training set is
/// partitioned into `workers` contiguous shards; `eval` (if any) is scored by
/// worker 0 every [`RuntimeConfig::eval_every`] iterations.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero workers/iterations) or the
/// dataset is smaller than the worker count.
pub fn train<M: Model>(
    net_factory: &(dyn Fn() -> M + Sync),
    data: &Dataset,
    eval: Option<&Dataset>,
    cfg: &RuntimeConfig,
) -> TrainResult<M> {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.iterations > 0, "need at least one iteration");
    let p = cfg.workers;

    let ssp = ssp_mode(cfg);
    let clock = Arc::new(clock::SspClock::new(p));
    telemetry::configure(&cfg.telemetry);

    let reference = net_factory();
    let plan = build_run_plan(&reference, cfg, ssp.is_some());
    let coordinator = plan.coordinator;
    let schemes = plan.schemes;
    let codecs = plan.codecs;
    let schedule = plan.schedule;

    // Endpoints 0..P are workers on nodes 0..P; endpoints P..2P are shards
    // colocated on the same nodes.
    let node_ids: Vec<usize> = (0..p).chain(0..p).collect();
    let (endpoints, traffic) = transport::fabric_with_nodes(&node_ids);

    let shards = data.partition(p);
    let compute_threads = cfg.compute.threads_per_worker(p);

    let (worker_outputs, shard_outputs, fault_report) = if cfg.faults.active() {
        // Chaos plane on: every endpoint becomes Reliable(Faulty(channel)).
        // The fault layer breaks originals on the way out; the reliability
        // layer above it (whose retransmits pass the fault layer unfaulted)
        // heals the stream before the runtime sees it.
        let fplan = cfg.faults.plan.clone().unwrap_or_default();
        let rcfg = cfg.faults.reliability.clone().unwrap_or_default();
        let mut logs = Vec::with_capacity(2 * p);
        let mut stats: Vec<Arc<ReliabilityStats>> = Vec::with_capacity(2 * p);
        let wrapped: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                let faulty = FaultyTransport::new(ep, &fplan);
                logs.push(faulty.log());
                let reliable = ReliableTransport::new(faulty, rcfg.clone());
                stats.push(reliable.stats());
                reliable
            })
            .collect();
        let (outputs, shard_outs) = run_fabric(
            net_factory,
            cfg,
            &coordinator,
            plan.plans,
            plan.update_scale,
            &schedule,
            shards,
            eval,
            ssp,
            &clock,
            compute_threads,
            wrapped,
        );
        let mut fired: Vec<FiredFault> = logs
            .iter()
            .flat_map(|l| l.lock().expect("fault log lock").clone())
            .collect();
        fired.sort_by_key(|f| (f.from, f.to, f.frame));
        let mut report = ChaosReport {
            fired,
            ..ChaosReport::default()
        };
        use std::sync::atomic::Ordering::Relaxed;
        for s in &stats {
            report.retransmits += s.retransmits.load(Relaxed);
            report.dups_dropped += s.dups_dropped.load(Relaxed);
            report.nacks_sent += s.nacks_sent.load(Relaxed);
            report.acks_sent += s.acks_sent.load(Relaxed);
            report.probes_sent += s.probes_sent.load(Relaxed);
            report.reorders_stashed += s.reorders_stashed.load(Relaxed);
        }
        (outputs, shard_outs, Some(report))
    } else {
        let (outputs, shard_outs) = run_fabric(
            net_factory,
            cfg,
            &coordinator,
            plan.plans,
            plan.update_scale,
            &schedule,
            shards,
            eval,
            ssp,
            &clock,
            compute_threads,
            endpoints,
        );
        (outputs, shard_outs, None)
    };

    // Workers and shards are joined, so every recording thread has flushed;
    // collect the trace before anything else runs in this process.
    let trace = if cfg.telemetry.enabled {
        telemetry::disable();
        Some(telemetry::drain())
    } else {
        None
    };

    let outputs: Vec<WorkerOutput<M>> = worker_outputs;
    let worker_wall_s: Vec<f64> = outputs.iter().map(|o| o.wall.as_secs_f64()).collect();
    // Health verdicts from each worker's run-local busy histogram — immune to
    // the global metrics gate and to whatever earlier runs left in the
    // process-global registry.
    let busy_p50: Vec<(usize, u64)> = outputs
        .iter()
        .enumerate()
        .map(|(w, o)| (w, o.busy.quantile(0.5)))
        .collect();
    let health = crate::health::detect(&busy_p50, cfg.health.straggler_factor);
    let iters = cfg.iterations;
    let losses: Vec<f32> = (0..iters)
        .map(|i| outputs.iter().map(|o| o.losses[i]).sum::<f32>() / p as f32)
        .collect();
    let mut outputs = outputs;
    // Assemble the full-mesh checkpoint before worker 0's output is consumed.
    let checkpoint = cfg
        .export_state
        .then(|| crate::checkpoint::TrainingCheckpoint {
            next_iter: (cfg.start_iter + cfg.iterations) as u64,
            workers: outputs
                .iter_mut()
                .map(|o| {
                    o.checkpoint
                        .take()
                        .expect("export_state run yields worker checkpoints")
                })
                .collect(),
            shards: shard_outputs
                .into_iter()
                .map(|o| {
                    o.checkpoint
                        .expect("export_state run yields shard checkpoints")
                })
                .collect(),
        });
    let first = outputs.remove(0);

    TrainResult {
        losses,
        test_errors: first.test_errors,
        net: first.net,
        traffic,
        schemes,
        codecs,
        max_staleness_spread: clock.max_spread_observed(),
        worker_wall_s,
        trace,
        fault_report,
        health,
        checkpoint,
    }
}

/// Spawns one thread per endpoint (shards then workers, endpoints ordered
/// workers `0..P` then shards `P..2P`), joins them all, and returns the
/// worker outputs in worker order. Generic over the transport so the same
/// fabric runs bare channels or the chaos-wrapped stack.
#[allow(clippy::too_many_arguments)]
fn run_fabric<M: Model, T: Transport + Send>(
    net_factory: &(dyn Fn() -> M + Sync),
    cfg: &RuntimeConfig,
    coordinator: &Coordinator,
    mut server_plans: Vec<ServerPlan>,
    update_scale: f32,
    schedule: &Arc<crate::membership::MembershipSchedule>,
    shards: Vec<Dataset>,
    eval: Option<&Dataset>,
    ssp: Option<u64>,
    clock: &Arc<clock::SspClock>,
    compute_threads: usize,
    mut endpoints: Vec<T>,
) -> (Vec<WorkerOutput<M>>, Vec<server::ShardOutput>) {
    let p = cfg.workers;
    let shard_endpoints: Vec<T> = endpoints.split_off(p);
    let worker_endpoints = endpoints;
    let mut worker_outputs: Vec<Option<WorkerOutput<M>>> = (0..p).map(|_| None).collect();

    // Split the resume checkpoint into per-endpoint slices.
    let mut resume_workers: Vec<Option<crate::checkpoint::WorkerCheckpoint>> =
        (0..p).map(|_| None).collect();
    if let Some(ck) = cfg.resume.clone() {
        assert_eq!(
            ck.next_iter, cfg.start_iter as u64,
            "resume checkpoint was taken at a different iteration than this segment starts"
        );
        for w in ck.workers {
            let id = w.worker as usize;
            assert!(id < p, "resume checkpoint names worker {id} of {p}");
            resume_workers[id] = Some(w);
        }
        for s in ck.shards {
            let id = s.shard as usize;
            assert!(id < p, "resume checkpoint names shard {id} of {p}");
            server_plans[id].restore = Some(s);
        }
    }

    let mut shard_outputs: Vec<Option<server::ShardOutput>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut server_handles = Vec::new();
        for (sp, endpoint) in server_plans.into_iter().zip(shard_endpoints) {
            server_handles.push(scope.spawn(move || server::run_server(sp, endpoint)));
        }
        let mut worker_handles = Vec::new();
        for (w, (shard, endpoint)) in shards.into_iter().zip(worker_endpoints).enumerate() {
            let eval_set = if w == 0 { eval.cloned() } else { None };
            let wc = worker_config(
                cfg,
                w,
                update_scale,
                ssp,
                compute_threads,
                schedule,
                resume_workers[w].take(),
            );
            let clock = Arc::clone(clock);
            worker_handles.push(scope.spawn(move || {
                worker::run_worker(
                    wc,
                    coordinator,
                    net_factory(),
                    shard,
                    eval_set,
                    endpoint,
                    clock,
                )
            }));
        }
        for (w, h) in worker_handles.into_iter().enumerate() {
            worker_outputs[w] = Some(h.join().expect("worker thread panicked"));
        }
        for (s, h) in server_handles.into_iter().enumerate() {
            shard_outputs[s] = Some(h.join().expect("server thread panicked"));
        }
    });

    (
        worker_outputs
            .into_iter()
            .map(|o| o.expect("joined"))
            .collect(),
        shard_outputs
            .into_iter()
            .map(|o| o.expect("joined"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_nn::layer::TensorShape;
    use poseidon_nn::presets;
    use poseidon_nn::Network;

    fn dataset() -> Dataset {
        Dataset::gaussian_clusters(TensorShape::flat(8), 3, 64, 0.3, 7)
    }

    fn factory() -> Network {
        presets::mlp(&[8, 12, 3], 99)
    }

    /// Single-node large-batch SGD reference trajectory.
    fn serial_train(iters: usize, batch: usize, lr: f32) -> Network {
        let data = dataset();
        let mut net = factory();
        let head = poseidon_nn::loss::SoftmaxCrossEntropy;
        for it in 0..iters {
            let (x, y) = data.minibatch(it * batch, batch);
            let logits = net.forward(&x);
            let out = head.evaluate(&logits, &y);
            net.backward(&out.grad);
            net.apply_own_grads(-lr);
        }
        net
    }

    fn distributed(policy: SchemePolicy, workers: usize) -> TrainResult<Network> {
        let cfg = RuntimeConfig {
            policy,
            partition: Partition::KvPairs { pair_elems: 50 },
            ..RuntimeConfig::new(workers, 8, 0.2, 5)
        };
        train(&factory, &dataset(), None, &cfg)
    }

    /// The headline correctness property: P workers over disjoint shards with
    /// gradient averaging produce (nearly) the same parameters as one worker
    /// on the concatenated batch — for the PS path.
    ///
    /// Exact equality does not hold because the data shards differ from the
    /// serial minibatch windows; instead we check the *protocol* by running
    /// distributed with 1 worker, which must match serial exactly.
    #[test]
    fn single_worker_distributed_equals_serial() {
        let result = distributed(SchemePolicy::AlwaysPs, 1);
        let serial = serial_train(5, 8, 0.2);
        assert!(
            result.net.max_param_diff(&serial) < 1e-6,
            "diff {}",
            result.net.max_param_diff(&serial)
        );
        // One colocated node: zero network traffic.
        assert_eq!(result.traffic.total_bytes(), 0);
    }

    #[test]
    fn ps_and_sfb_agree() {
        let ps = distributed(SchemePolicy::AlwaysPs, 4);
        let sfb = distributed(SchemePolicy::AlwaysSfbForFc, 4);
        let diff = ps.net.max_param_diff(&sfb.net);
        assert!(diff < 1e-4, "PS and SFB trajectories diverged by {diff}");
        // And SFB on this small model moves fewer bytes than... not
        // necessarily; just check both actually trained.
        assert!(ps.losses[4] < ps.losses[0]);
        assert!(sfb.traffic.total_bytes() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = distributed(SchemePolicy::Hybrid, 3);
        let b = distributed(SchemePolicy::Hybrid, 3);
        assert_eq!(
            a.net.max_param_diff(&b.net),
            0.0,
            "BSP runs must be bitwise identical"
        );
        assert_eq!(a.losses, b.losses);
    }

    #[test]
    fn adam_strategy_trains() {
        let r = distributed(SchemePolicy::AdamSf, 2);
        assert!(r.losses[4] < r.losses[0], "losses {:?}", r.losses);
        // Adam matches the exact schemes' trajectory (it is exact too).
        let ps = distributed(SchemePolicy::AlwaysPs, 2);
        assert!(r.net.max_param_diff(&ps.net) < 1e-4);
    }

    #[test]
    fn one_bit_trains_but_differs() {
        let r = distributed(SchemePolicy::OneBit, 2);
        assert!(r.losses[4] < r.losses[0] * 1.5, "1-bit should still learn");
        // The named baseline is PS scheme + OneBit codec on FC layers.
        assert!(r.schemes.iter().all(|&(_, s)| s == CommScheme::Ps));
        assert!(r.codecs.iter().all(|&(_, c)| c == Codec::OneBit));
        let ps = distributed(SchemePolicy::AlwaysPs, 2);
        assert!(
            r.net.max_param_diff(&ps.net) > 1e-6,
            "1-bit is lossy and must not match the exact trajectory"
        );
    }

    #[test]
    fn explicit_identity_codec_matches_default_bitwise() {
        let base = distributed(SchemePolicy::Hybrid, 3);
        let cfg = RuntimeConfig {
            policy: SchemePolicy::Hybrid,
            codec: CodecPolicy::Always(Codec::Identity),
            partition: Partition::KvPairs { pair_elems: 50 },
            ..RuntimeConfig::new(3, 8, 0.2, 5)
        };
        let explicit = train(&factory, &dataset(), None, &cfg);
        assert_eq!(
            base.net.max_param_diff(&explicit.net),
            0.0,
            "explicit identity codec must be bitwise identical to the default"
        );
        assert_eq!(base.losses, explicit.losses);
        assert!(explicit.codecs.iter().all(|&(_, c)| c == Codec::Identity));
    }

    fn ps_with_codec(codec: Codec) -> TrainResult<Network> {
        let cfg = RuntimeConfig {
            policy: SchemePolicy::AlwaysPs,
            codec: CodecPolicy::Always(codec),
            partition: Partition::KvPairs { pair_elems: 50 },
            ..RuntimeConfig::new(3, 8, 0.2, 5)
        };
        train(&factory, &dataset(), None, &cfg)
    }

    #[test]
    fn lossy_ps_codecs_cut_traffic_and_stay_deterministic() {
        let identity = distributed(SchemePolicy::AlwaysPs, 3);
        for codec in [Codec::OneBit, Codec::F16, Codec::TopK { permille: 100 }] {
            let a = ps_with_codec(codec);
            assert!(
                a.losses.iter().all(|l| l.is_finite()),
                "{codec}: non-finite loss"
            );
            assert!(
                a.traffic.total_bytes() < identity.traffic.total_bytes(),
                "{codec} moved {} bytes, identity moved {}",
                a.traffic.total_bytes(),
                identity.traffic.total_bytes()
            );
            let b = ps_with_codec(codec);
            assert_eq!(
                a.net.max_param_diff(&b.net),
                0.0,
                "{codec}: lossy BSP runs must be bitwise reproducible"
            );
            assert_eq!(a.losses, b.losses);
        }
    }

    #[test]
    fn lossy_collectives_train_and_are_reproducible() {
        let mk = || {
            let cfg = RuntimeConfig {
                policy: SchemePolicy::AlwaysRing,
                codec: CodecPolicy::Always(Codec::Bf16),
                partition: Partition::KvPairs { pair_elems: 50 },
                ..RuntimeConfig::new(3, 8, 0.2, 5)
            };
            train(&factory, &dataset(), None, &cfg)
        };
        let a = mk();
        let b = mk();
        assert_eq!(
            a.net.max_param_diff(&b.net),
            0.0,
            "lossy ring runs must be bitwise reproducible"
        );
        assert_eq!(a.losses, b.losses);
        assert!(a.losses.iter().all(|l| l.is_finite()));
        assert!(a.codecs.iter().all(|&(_, c)| c == Codec::Bf16));
        let identity = distributed(SchemePolicy::AlwaysRing, 3);
        assert!(
            a.traffic.total_bytes() < identity.traffic.total_bytes(),
            "bf16 ring moved {} bytes, identity moved {}",
            a.traffic.total_bytes(),
            identity.traffic.total_bytes()
        );
    }

    /// The mixed-codec mesh: conv layers ride identity while FC layers ride
    /// 1-bit (the `OneBit` policy), in the same run, against the same shards —
    /// and the ledger shows the traffic reduction.
    #[test]
    fn mixed_codec_mesh_trains_with_reduced_traffic() {
        use poseidon_nn::layer::TensorShape;
        let shape = TensorShape::new(3, 8, 8);
        let conv_factory = move || presets::cifar_quick_scaled(shape, 4, 3, 42);
        let data = Dataset::gaussian_clusters(shape, 3, 32, 0.3, 11);
        let mk = |codec_policy| {
            let cfg = RuntimeConfig {
                policy: SchemePolicy::OneBit,
                codec: codec_policy,
                partition: Partition::KvPairs { pair_elems: 100 },
                ..RuntimeConfig::new(2, 4, 0.05, 3)
            };
            train(&conv_factory, &data, None, &cfg)
        };
        let mixed = mk(CodecPolicy::Identity);
        // The OneBit policy puts the codec on FC layers only; conv stays raw.
        assert!(mixed.codecs.iter().any(|&(_, c)| c == Codec::OneBit));
        assert!(mixed.codecs.iter().any(|&(_, c)| c == Codec::Identity));
        assert!(mixed.losses.iter().all(|l| l.is_finite()));
        let raw_cfg = RuntimeConfig {
            policy: SchemePolicy::AlwaysPs,
            partition: Partition::KvPairs { pair_elems: 100 },
            ..RuntimeConfig::new(2, 4, 0.05, 3)
        };
        let raw = train(&conv_factory, &data, None, &raw_cfg);
        assert!(
            mixed.traffic.total_bytes() < raw.traffic.total_bytes(),
            "mixed mesh moved {} bytes, raw PS moved {}",
            mixed.traffic.total_bytes(),
            raw.traffic.total_bytes()
        );
    }

    /// Satellite regression: a gradient frame whose payload fails codec
    /// decode must be counted and dropped — never `expect`-abort the shard.
    #[test]
    fn poisoned_grad_frame_is_counted_and_skipped() {
        use crate::chunk::Chunk;
        use crate::transport::Message;
        let (mut eps, _traffic) = transport::fabric_with_nodes(&[0, 0]);
        let server_ep = eps.pop().expect("server endpoint");
        let mut worker_ep = eps.pop().expect("worker endpoint");
        let plan = ServerPlan {
            ps_chunks: vec![(
                0,
                Chunk {
                    layer: 0,
                    offset: 0,
                    len: 4,
                    shard: 0,
                },
                Codec::Identity,
            )],
            layer_granular: Vec::new(),
            init_values: vec![vec![1.0, 2.0, 3.0, 4.0]],
            workers: 1,
            update_scale: -1.0,
            momentum: 0.0,
            lr_schedule: LrSchedule::Constant,
            iterations: 1,
            ssp: false,
            comm_timeout: Duration::from_secs(10),
            me_shard: 0,
            schedule: crate::membership::MembershipSchedule::trivial(1),
            start_iter: 0,
            all_chunks: Vec::new(),
            all_init: Vec::new(),
            restore: None,
            export_state: false,
        };
        let before = poisoned_frames();
        std::thread::scope(|scope| {
            let h = scope.spawn(move || server::run_server(plan, server_ep));
            // Truncated payload: three f32s where the chunk expects four.
            worker_ep
                .send(
                    1,
                    Message::GradChunk {
                        iter: 0,
                        layer: 0,
                        chunk: 0,
                        codec: Codec::Identity,
                        data: crate::wire::encode_f32s(&[9.0, 9.0, 9.0]),
                    },
                )
                .expect("send corrupt frame");
            // The real push; the shard must still be alive to fold it.
            worker_ep
                .send(
                    1,
                    Message::GradChunk {
                        iter: 0,
                        layer: 0,
                        chunk: 0,
                        codec: Codec::Identity,
                        data: crate::wire::encode_f32s(&[0.5; 4]),
                    },
                )
                .expect("send valid frame");
            let env = worker_ep
                .recv_timeout(Duration::from_secs(10))
                .expect("fresh params after the poisoned frame was dropped");
            match env.msg {
                Message::ParamChunk { data, .. } => {
                    let params = crate::wire::decode_f32s(&data).expect("valid reply");
                    // θ += update_scale · grad = θ − 0.5.
                    assert_eq!(params, vec![0.5, 1.5, 2.5, 3.5]);
                }
                other => panic!("expected fresh params, got {other:?}"),
            }
            worker_ep.shutdown().expect("worker endpoint shutdown");
            h.join().expect("shard must survive the poisoned frame");
        });
        assert!(
            poisoned_frames() > before,
            "the poisoned frame must be counted"
        );
    }

    #[test]
    fn distributed_momentum_equals_serial_momentum_sgd() {
        // Serial reference: Sgd optimiser with momentum on the same global
        // batch stream (1 worker so the shard streams are identical).
        use poseidon_nn::sgd::{Sgd, SgdConfig};
        let data = dataset();
        let mut serial = factory();
        let mut opt = Sgd::new(
            &serial,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        let head = poseidon_nn::loss::SoftmaxCrossEntropy;
        for it in 0..6 {
            let (x, y) = data.minibatch(it * 8, 8);
            let logits = serial.forward(&x);
            let out = head.evaluate(&logits, &y);
            serial.backward(&out.grad);
            opt.step(&mut serial);
        }

        let cfg = RuntimeConfig {
            momentum: 0.9,
            policy: SchemePolicy::AlwaysPs,
            ..RuntimeConfig::new(1, 8, 0.1, 6)
        };
        let dist = train(&factory, &dataset(), None, &cfg);
        let diff = dist.net.max_param_diff(&serial);
        assert!(
            diff < 1e-5,
            "server-side momentum diverged from Sgd: {diff}"
        );
    }

    #[test]
    fn momentum_agrees_across_schemes() {
        let mk = |policy| {
            let cfg = RuntimeConfig {
                momentum: 0.9,
                policy,
                partition: Partition::KvPairs { pair_elems: 50 },
                ..RuntimeConfig::new(4, 8, 0.1, 6)
            };
            train(&factory, &dataset(), None, &cfg)
        };
        let ps = mk(SchemePolicy::AlwaysPs);
        let sfb = mk(SchemePolicy::AlwaysSfbForFc);
        let adam = mk(SchemePolicy::AdamSf);
        assert!(
            ps.net.max_param_diff(&sfb.net) < 1e-4,
            "PS vs SFB with momentum"
        );
        assert!(
            ps.net.max_param_diff(&adam.net) < 1e-4,
            "PS vs Adam with momentum"
        );
        // Momentum changes the trajectory relative to plain SGD.
        let plain = distributed(SchemePolicy::AlwaysPs, 4);
        assert!(ps.net.max_param_diff(&plain.net) > 1e-6);
    }

    #[test]
    fn lr_schedule_matches_serial_decayed_sgd() {
        use poseidon_nn::sgd::{Sgd, SgdConfig};
        let data = dataset();
        let mut serial = factory();
        let mut opt = Sgd::new(
            &serial,
            SgdConfig {
                learning_rate: 0.2,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        let head = poseidon_nn::loss::SoftmaxCrossEntropy;
        for it in 0..8 {
            // Step decay: x0.5 every 3 iterations.
            opt.set_learning_rate(0.2 * 0.5f32.powi((it / 3) as i32));
            let (x, y) = data.minibatch(it * 8, 8);
            let logits = serial.forward(&x);
            let out = head.evaluate(&logits, &y);
            serial.backward(&out.grad);
            opt.step(&mut serial);
        }

        let cfg = RuntimeConfig {
            momentum: 0.9,
            lr_schedule: LrSchedule::Step {
                every: 3,
                factor: 0.5,
            },
            policy: SchemePolicy::AlwaysPs,
            ..RuntimeConfig::new(1, 8, 0.2, 8)
        };
        let dist = train(&factory, &dataset(), None, &cfg);
        let diff = dist.net.max_param_diff(&serial);
        assert!(
            diff < 1e-5,
            "scheduled distributed SGD diverged from serial: {diff}"
        );
    }

    #[test]
    fn lr_schedule_multiplier_steps() {
        let s = LrSchedule::Step {
            every: 100,
            factor: 0.1,
        };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(99), 1.0);
        assert!((s.multiplier(100) - 0.1).abs() < 1e-9);
        assert!((s.multiplier(250) - 0.01).abs() < 1e-9);
        assert_eq!(LrSchedule::Constant.multiplier(1_000_000), 1.0);
    }

    #[test]
    fn scheduled_runs_agree_across_schemes() {
        let mk = |policy| {
            let cfg = RuntimeConfig {
                momentum: 0.5,
                lr_schedule: LrSchedule::Step {
                    every: 2,
                    factor: 0.7,
                },
                policy,
                partition: Partition::KvPairs { pair_elems: 50 },
                ..RuntimeConfig::new(3, 8, 0.15, 6)
            };
            train(&factory, &dataset(), None, &cfg)
        };
        let ps = mk(SchemePolicy::AlwaysPs);
        let sfb = mk(SchemePolicy::AlwaysSfbForFc);
        assert!(ps.net.max_param_diff(&sfb.net) < 1e-4);
    }

    #[test]
    fn ssp_trains_and_respects_staleness_bound() {
        let cfg = RuntimeConfig {
            policy: SchemePolicy::AlwaysPs,
            consistency: Consistency::Ssp { staleness: 2 },
            ..RuntimeConfig::new(4, 8, 0.1, 20)
        };
        let r = train(&factory, &dataset(), None, &cfg);
        assert!(
            r.losses.last().unwrap() < &r.losses[0],
            "SSP must still learn"
        );
        assert!(
            r.max_staleness_spread <= 3,
            "spread {} exceeded staleness+1",
            r.max_staleness_spread
        );
    }

    #[test]
    fn ssp_differs_from_bsp_trajectory() {
        let bsp = distributed(SchemePolicy::AlwaysPs, 4);
        let cfg = RuntimeConfig {
            policy: SchemePolicy::AlwaysPs,
            consistency: Consistency::Ssp { staleness: 1 },
            partition: Partition::KvPairs { pair_elems: 50 },
            ..RuntimeConfig::new(4, 8, 0.2, 5)
        };
        let ssp = train(&factory, &dataset(), None, &cfg);
        // Eager unordered applies change the trajectory (except in freak
        // schedules; a tie here would be suspicious but not impossible, so we
        // assert learning rather than strict difference, plus the spread
        // telemetry is present).
        assert!(ssp.losses.last().unwrap() < &ssp.losses[0]);
        assert_eq!(bsp.max_staleness_spread, 0, "BSP reports no spread");
    }

    #[test]
    #[should_panic(expected = "SSP supports the PS path only")]
    fn ssp_rejects_non_ps_policies() {
        let cfg = RuntimeConfig {
            consistency: Consistency::Ssp { staleness: 1 },
            ..RuntimeConfig::new(2, 8, 0.1, 2)
        };
        let _ = train(&factory, &dataset(), None, &cfg);
    }

    #[test]
    fn ring_and_tree_match_ps_bitwise() {
        let ps = distributed(SchemePolicy::AlwaysPs, 4);
        let ring = distributed(SchemePolicy::AlwaysRing, 4);
        let tree = distributed(SchemePolicy::AlwaysTree, 4);
        assert_eq!(
            ps.net.max_param_diff(&ring.net),
            0.0,
            "ring must replicate the PS fold bitwise"
        );
        assert_eq!(
            ps.net.max_param_diff(&tree.net),
            0.0,
            "tree must replicate the PS fold bitwise"
        );
        assert_eq!(ps.losses, ring.losses);
        assert_eq!(ps.losses, tree.losses);
        assert!(ring.schemes.iter().all(|&(_, s)| s == CommScheme::Ring));
        assert!(tree.schemes.iter().all(|&(_, s)| s == CommScheme::Tree));
        assert!(
            ring.traffic.total_bytes() > 0,
            "collectives move real bytes"
        );
    }

    #[test]
    fn collectives_match_ps_with_momentum_and_schedule() {
        let mk = |policy| {
            let cfg = RuntimeConfig {
                momentum: 0.9,
                lr_schedule: LrSchedule::Step {
                    every: 2,
                    factor: 0.5,
                },
                policy,
                partition: Partition::KvPairs { pair_elems: 50 },
                ..RuntimeConfig::new(3, 8, 0.1, 6)
            };
            train(&factory, &dataset(), None, &cfg)
        };
        let ps = mk(SchemePolicy::AlwaysPs);
        let ring = mk(SchemePolicy::AlwaysRing);
        let tree = mk(SchemePolicy::AlwaysTree);
        assert_eq!(
            ps.net.max_param_diff(&ring.net),
            0.0,
            "ring diverged under momentum + LR schedule"
        );
        assert_eq!(
            ps.net.max_param_diff(&tree.net),
            0.0,
            "tree diverged under momentum + LR schedule"
        );
    }

    #[test]
    fn single_worker_collective_reduces_to_ps() {
        let ring = distributed(SchemePolicy::AlwaysRing, 1);
        let serial = serial_train(5, 8, 0.2);
        assert!(ring.net.max_param_diff(&serial) < 1e-6);
        assert!(ring.schemes.iter().all(|&(_, s)| s == CommScheme::Ps));
    }

    /// Satellite regression: one worker starts late every iteration, so its
    /// peers run ahead and their collective frames for a future iteration
    /// arrive early — those must be stashed and replayed in arrival order,
    /// never dropped, and the trajectory must stay bitwise identical.
    #[test]
    fn collectives_survive_skewed_start() {
        let skewed = |policy| {
            let cfg = RuntimeConfig {
                policy,
                partition: Partition::KvPairs { pair_elems: 50 },
                straggler_delay_ms: Some((1, 5)),
                ..RuntimeConfig::new(3, 8, 0.2, 5)
            };
            train(&factory, &dataset(), None, &cfg)
        };
        let ps = distributed(SchemePolicy::AlwaysPs, 3);
        let ring = skewed(SchemePolicy::AlwaysRing);
        let tree = skewed(SchemePolicy::AlwaysTree);
        assert_eq!(
            ps.net.max_param_diff(&ring.net),
            0.0,
            "skewed ring run diverged"
        );
        assert_eq!(
            ps.net.max_param_diff(&tree.net),
            0.0,
            "skewed tree run diverged"
        );
    }

    /// The health plane names the delayed worker: a scripted straggler must
    /// come back flagged in `TrainResult::health`, and a clean mesh must not
    /// flag anyone.
    #[test]
    fn health_verdict_names_the_straggler() {
        let cfg = RuntimeConfig {
            partition: Partition::KvPairs { pair_elems: 50 },
            straggler_delay_ms: Some((1, 20)),
            ..RuntimeConfig::new(3, 8, 0.2, 4)
        };
        let result = train(&factory, &dataset(), None, &cfg);
        assert_eq!(result.health.verdicts.len(), 3);
        assert!(
            result.health.stragglers().contains(&1),
            "expected worker 1 flagged: {}",
            result.health.render()
        );

        // Clean-mesh check at a generous factor: busy times here are
        // sub-millisecond, where CPU contention from the parallel test
        // harness adds real skew — only pathological spread may flag.
        let clean_cfg = RuntimeConfig {
            partition: Partition::KvPairs { pair_elems: 50 },
            health: crate::health::HealthConfig {
                straggler_factor: 16.0,
            },
            ..RuntimeConfig::new(3, 8, 0.2, 4)
        };
        let clean = train(&factory, &dataset(), None, &clean_cfg);
        assert!(
            clean.health.stragglers().is_empty(),
            "clean mesh flagged a straggler at 16x: {}",
            clean.health.render()
        );
    }

    #[test]
    fn topo_aware_policy_trains_exactly() {
        use poseidon_netsim::LinkConfig;
        // Whatever mix of PS/SFB/ring/tree the topology-aware pricer picks,
        // every scheme in the mix is exact, so the trajectory must match PS.
        let topo = crate::config::Topology::two_level(
            3,
            1,
            LinkConfig {
                bandwidth_gbps: 100.0,
                latency_s: 1e-6,
            },
            LinkConfig {
                bandwidth_gbps: 10.0,
                latency_s: 50e-6,
            },
            4.0,
        );
        let cfg = RuntimeConfig {
            policy: SchemePolicy::TopoAware(topo),
            partition: Partition::KvPairs { pair_elems: 50 },
            ..RuntimeConfig::new(3, 8, 0.2, 5)
        };
        let mixed = train(&factory, &dataset(), None, &cfg);
        let ps = distributed(SchemePolicy::AlwaysPs, 3);
        let diff = ps.net.max_param_diff(&mixed.net);
        if mixed.schemes.iter().any(|&(_, s)| s == CommScheme::Sfb) {
            // SFB reconstructs the dense gradient worker-side — exact but not
            // bitwise against the server fold (same bound as ps_and_sfb_agree).
            assert!(diff < 1e-4, "topology-aware mix diverged from PS: {diff}");
        } else {
            assert_eq!(diff, 0.0, "topology-aware mix diverged from PS");
        }
    }

    #[test]
    fn eval_hook_reports_errors() {
        let cfg = RuntimeConfig {
            eval_every: 2,
            ..RuntimeConfig::new(2, 8, 0.2, 6)
        };
        let eval = dataset();
        let r = train(&factory, &dataset(), Some(&eval), &cfg);
        assert_eq!(r.test_errors.len(), 3);
        assert_eq!(r.test_errors[0].0, 2);
        assert!(r.test_errors.iter().all(|&(_, e)| (0.0..=1.0).contains(&e)));
    }
}
