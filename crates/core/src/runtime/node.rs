//! Single-endpoint runtime entry: one worker *or* one KV shard, driven over
//! any [`Transport`].
//!
//! [`train`](crate::runtime::train) runs all `2P` endpoints as threads of one
//! process; [`run_endpoint`] runs exactly one of them, so `2P` OS processes
//! (the `poseidon-node` binary) connected by a
//! [`TcpTransport`](crate::transport::TcpTransport) mesh execute the
//! identical protocol. Every participant derives the same
//! [`RunPlan`](super::RunPlan) deterministically from the shared model
//! factory and config — there is no separate control plane; agreement on the
//! CLI flags *is* the control plane.
//!
//! Endpoint ids follow the fabric convention: `0..P` are workers on physical
//! nodes `0..P`, `P..2P` are shards colocated on the same nodes.

use super::{build_run_plan, server, ssp_mode, worker, worker_config, RuntimeConfig, SspClock};
use crate::syncer;
use crate::telemetry;
use crate::transport::Transport;
use poseidon_nn::data::Dataset;
use poseidon_nn::Model;
use std::sync::Arc;

/// What one endpoint produced.
pub enum NodeOutcome<M: Model> {
    /// A worker endpoint: its per-iteration losses, eval samples (endpoint 0
    /// only) and final replica.
    Worker {
        /// Mean training loss per iteration on this worker's shard.
        losses: Vec<f32>,
        /// `(iteration, top-1 error)` samples on the eval set.
        test_errors: Vec<(usize, f32)>,
        /// The final model replica.
        net: M,
        /// This worker's per-iteration busy-time p50 (ns), for mesh-level
        /// straggler detection by the launcher (see [`crate::health`]).
        busy_p50_ns: u64,
        /// Full worker state (`export_state` runs only).
        checkpoint: Option<crate::checkpoint::WorkerCheckpoint>,
    },
    /// A KV shard endpoint.
    Server {
        /// Full shard state (`export_state` runs only).
        checkpoint: Option<crate::checkpoint::ShardCheckpoint>,
    },
}

/// Runs the single worker or shard owning `endpoint` to completion.
///
/// All participants must build the run from identical `net_factory`, `data`
/// and `cfg` (deterministic agreement); the endpoint's fabric id decides its
/// role. Only BSP is supported — SSP's shared clock needs one process.
///
/// # Panics
///
/// Panics on configuration mismatch (fabric size ≠ `2 * cfg.workers`, SSP
/// requested) and on transport failures (a dead peer surfaces as a timeout
/// panic naming this endpoint).
pub fn run_endpoint<M: Model, T: Transport>(
    net_factory: &(dyn Fn() -> M + Sync),
    data: &Dataset,
    eval: Option<&Dataset>,
    cfg: &RuntimeConfig,
    endpoint: T,
) -> NodeOutcome<M> {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.iterations > 0, "need at least one iteration");
    let p = cfg.workers;
    assert_eq!(
        endpoint.endpoints(),
        2 * p,
        "fabric has {} endpoints but the config implies {} (2 x {p} workers)",
        endpoint.endpoints(),
        2 * p
    );
    assert!(
        ssp_mode(cfg).is_none(),
        "the per-process runtime is BSP-only: SSP's clock is shared process state"
    );

    telemetry::configure(&cfg.telemetry);
    let reference = net_factory();
    let plan = build_run_plan(&reference, cfg, false);
    let me = endpoint.endpoint_id();
    if cfg.telemetry.enabled {
        let role = if me < p { "worker" } else { "shard" };
        telemetry::set_process(me as u32, format!("poseidon-node e{me} ({role})"));
    }

    // Per-process resume: each endpoint takes only its own slice of the
    // checkpoint (the launcher passes every process the same file).
    let (worker_restore, shard_restore) = match cfg.resume.as_ref() {
        Some(ck) if me < p => (
            Some(
                ck.workers
                    .iter()
                    .find(|w| w.worker as usize == me)
                    .cloned()
                    .unwrap_or_else(|| panic!("checkpoint has no state for worker {me}")),
            ),
            None,
        ),
        Some(ck) => (
            None,
            Some(
                ck.shards
                    .iter()
                    .find(|s| s.shard as usize == me - p)
                    .cloned()
                    .unwrap_or_else(|| panic!("checkpoint has no state for shard {}", me - p)),
            ),
        ),
        None => (None, None),
    };

    if me < p {
        // Worker role: train on shard `me` of the same deterministic
        // partition every participant computes.
        let shard = data.partition(p).swap_remove(me);
        let eval_set = if me == 0 { eval.cloned() } else { None };
        let mut wc = worker_config(
            cfg,
            me,
            plan.update_scale,
            None,
            cfg.compute.threads_per_worker(p),
            &plan.schedule,
            worker_restore,
        );
        // In the per-process runtime every worker endpoint may serve (the
        // caller decides by wiring a cell), not just worker 0.
        wc.snapshots = cfg.serve_snapshots.clone();
        // BSP never consults the clock; a private one satisfies the worker.
        let clock = Arc::new(SspClock::new(p));
        let out = worker::run_worker(
            wc,
            &plan.coordinator,
            net_factory(),
            shard,
            eval_set,
            endpoint,
            clock,
        );
        NodeOutcome::Worker {
            losses: out.losses,
            test_errors: out.test_errors,
            net: out.net,
            busy_p50_ns: out.busy.quantile(0.5),
            checkpoint: out.checkpoint,
        }
    } else {
        let mut sp = plan.plans.into_iter().nth(me - p).expect("shard plan");
        sp.restore = shard_restore;
        let out = server::run_server(sp, endpoint);
        NodeOutcome::Server {
            checkpoint: out.checkpoint,
        }
    }
}

/// Flattens every trainable layer's parameters in slot order — a canonical
/// form for comparing replicas across process boundaries (the `poseidon-node`
/// parent asserts all workers' flats are bitwise identical).
pub fn flatten_model_params<M: Model>(net: &M) -> Vec<f32> {
    let mut flat = Vec::new();
    for slot in 0..net.num_slots() {
        if let Some(params) = net.slot(slot).and_then(|l| l.params()) {
            flat.extend(syncer::flatten_params(params));
        }
    }
    flat
}

/// Inverse of [`flatten_model_params`]: writes a canonical flat back into a
/// structurally identical model (the serving front door reconstructs a
/// replica from a published [`Snapshot`](crate::serving::Snapshot) this way).
///
/// # Panics
///
/// Panics when `flat` does not exactly cover the model's trainable
/// parameters.
pub fn install_model_params<M: Model>(net: &mut M, flat: &[f32]) {
    let mut off = 0;
    for slot in 0..net.num_slots() {
        if let Some(params) = net.slot_mut(slot).and_then(|l| l.params_mut()) {
            let n = params.num_params();
            assert!(off + n <= flat.len(), "flat parameter vector too short");
            syncer::write_params_flat(params, &flat[off..off + n]);
            off += n;
        }
    }
    assert_eq!(off, flat.len(), "flat parameter vector too long");
}
