//! The stale-synchronous-parallel (SSP) clock.
//!
//! Under SSP [Ho et al., 2013 — cited as [12] by the paper], a worker at
//! iteration `t` may proceed only if the slowest worker has reached at least
//! `t − staleness`; BSP is the special case `staleness = 0` with a hard
//! barrier. This clock tracks every worker's iteration, blocks over-eager
//! workers on a condition variable, and records the largest spread actually
//! observed so tests can assert the bound held.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared per-run SSP clock.
pub struct SspClock {
    clocks: Mutex<Vec<u64>>,
    cv: Condvar,
    max_spread: AtomicU64,
}

impl SspClock {
    /// Creates a clock for `workers` workers, all at iteration 0.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "clock needs at least one worker");
        Self {
            clocks: Mutex::new(vec![0; workers]),
            cv: Condvar::new(),
            max_spread: AtomicU64::new(0),
        }
    }

    /// Marks `worker` as having *completed* iteration `iter` (clock value
    /// `iter + 1`) and wakes any waiters.
    pub fn advance(&self, worker: usize, iter: u64) {
        let mut clocks = self.clocks.lock();
        clocks[worker] = iter + 1;
        let max = *clocks.iter().max().expect("non-empty");
        let min = *clocks.iter().min().expect("non-empty");
        drop(clocks);
        self.max_spread.fetch_max(max - min, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Blocks until `worker` is allowed to *start* iteration `iter` under the
    /// given staleness bound, i.e. until `iter <= min_clock + staleness`.
    pub fn wait_until_allowed(&self, _worker: usize, iter: u64, staleness: u64) {
        let mut clocks = self.clocks.lock();
        loop {
            let min = *clocks.iter().min().expect("non-empty");
            if iter <= min + staleness {
                return;
            }
            self.cv.wait(&mut clocks);
        }
    }

    /// Largest `max - min` clock spread observed so far.
    pub fn max_spread_observed(&self) -> u64 {
        self.max_spread.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn staleness_zero_enforces_lockstep() {
        let clock = Arc::new(SspClock::new(2));
        // Worker 0 completed iteration 0; worker 1 has not.
        clock.advance(0, 0);
        // Worker 0 may start iteration 1 only when min clock >= 1 - 0 = 1.
        let c = Arc::clone(&clock);
        let waiter = std::thread::spawn(move || {
            c.wait_until_allowed(0, 1, 0);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!waiter.is_finished(), "worker 0 must block at staleness 0");
        clock.advance(1, 0);
        waiter.join().unwrap();
    }

    #[test]
    fn staleness_allows_bounded_lead() {
        let clock = SspClock::new(2);
        // No one has finished anything; with staleness 2 a worker may start
        // iterations 0, 1 and 2 but not 3.
        clock.wait_until_allowed(0, 0, 2);
        clock.wait_until_allowed(0, 2, 2);
        clock.advance(0, 0);
        clock.advance(0, 1);
        clock.advance(0, 2);
        assert_eq!(clock.max_spread_observed(), 3);
    }

    #[test]
    fn spread_tracks_maximum() {
        let clock = SspClock::new(3);
        clock.advance(0, 0);
        clock.advance(0, 1);
        assert_eq!(clock.max_spread_observed(), 2);
        clock.advance(1, 0);
        clock.advance(2, 0);
        clock.advance(2, 1);
        assert_eq!(clock.max_spread_observed(), 2, "max is sticky");
    }

    #[test]
    fn concurrent_workers_respect_bound() {
        let clock = Arc::new(SspClock::new(4));
        let staleness = 1u64;
        let mut handles = Vec::new();
        for w in 0..4usize {
            let c = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                for iter in 0..50u64 {
                    c.wait_until_allowed(w, iter, staleness);
                    if w == 0 {
                        // Worker 0 is artificially slow.
                        std::thread::yield_now();
                    }
                    c.advance(w, iter);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            clock.max_spread_observed() <= staleness + 1,
            "spread {} exceeded bound",
            clock.max_spread_observed()
        );
    }
}
