//! Bitwise checkpoint/restore of distributed training state.
//!
//! A [`TrainingCheckpoint`] captures everything a bulk-synchronous run needs
//! to resume *bitwise-identically* at an iteration boundary: every worker
//! replica's parameters, the SFB velocity replicas, every error-feedback
//! compressor residual (push, collective-segment, and shard-reply streams),
//! and every shard's master pairs with their optimizer velocity. Restoring a
//! checkpoint and training the remaining iterations produces exactly the
//! parameters of the uninterrupted run — the invariant the restart tests
//! prove on all four schemes.
//!
//! The encoding is a strict versioned binary: magic `PCKP`, version byte,
//! little-endian fields, no padding, trailing bytes rejected. Corruption is
//! surfaced as `None`, never a panic or a half-restored state.
//!
//! The per-pair state blob ([`encode_pair_state`]) doubles as the payload of
//! [`Message::Handoff`] frames during elastic reconfiguration: the departing
//! shard serialises `(params, velocity, reply-codec residual)` per KV pair
//! and the absorbing shard installs it, so ownership moves without breaking
//! the bitwise trajectory.
//!
//! [`Message::Handoff`]: crate::transport::Message::Handoff

use crate::kvstore::KvKey;
use crate::syncer::SyncerState;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic prefix of every checkpoint buffer.
pub const CKPT_MAGIC: [u8; 4] = *b"PCKP";
/// Current checkpoint format version.
pub const CKPT_VERSION: u8 = 1;

/// One trainable layer's worker-side state.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCheckpoint {
    /// Layer slot index.
    pub layer: u32,
    /// Flattened parameters (weights then bias, the canonical flat order).
    pub params: Vec<f32>,
    /// SFB/momentum velocity replica `(rows, cols, weights, bias)`, if this
    /// layer accumulated one.
    pub sf_velocity: Option<(u32, u32, Vec<f32>, Vec<f32>)>,
    /// The layer syncer's persistent state (collective velocity segments and
    /// compressor residuals).
    pub syncer: SyncerState,
}

/// One worker endpoint's full state at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerCheckpoint {
    /// Worker id.
    pub worker: u32,
    /// The next iteration this worker would run.
    pub next_iter: u64,
    /// Membership epoch at the boundary.
    pub epoch: u32,
    /// Per-layer state, ascending by layer.
    pub layers: Vec<LayerCheckpoint>,
}

/// One KV pair's master-side state.
#[derive(Debug, Clone, PartialEq)]
pub struct PairState {
    /// The pair's key.
    pub key: KvKey,
    /// Master parameter copy.
    pub params: Vec<f32>,
    /// Scaled optimizer velocity (empty = none accumulated).
    pub velocity: Vec<f32>,
    /// Reply-codec error-feedback residual (empty = none).
    pub residual: Vec<f32>,
}

/// One shard endpoint's full state at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Shard id (`0..P`, endpoint `P + shard`).
    pub shard: u32,
    /// The next iteration this shard would serve.
    pub next_iter: u64,
    /// Membership epoch at the boundary.
    pub epoch: u32,
    /// Every owned pair's state, ascending by key.
    pub pairs: Vec<PairState>,
}

/// The whole mesh's state at one iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCheckpoint {
    /// The next iteration the mesh would run.
    pub next_iter: u64,
    /// Worker states, ascending by worker id.
    pub workers: Vec<WorkerCheckpoint>,
    /// Shard states, ascending by shard id.
    pub shards: Vec<ShardCheckpoint>,
}

fn put_f32s(buf: &mut BytesMut, vals: &[f32]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_f32_le(v);
    }
}

fn get_f32s(buf: &mut &[u8]) -> Option<Vec<f32>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f32_le());
    }
    Some(out)
}

fn put_opt_f32s(buf: &mut BytesMut, vals: &Option<Vec<f32>>) {
    match vals {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            put_f32s(buf, v);
        }
    }
}

fn get_opt_f32s(buf: &mut &[u8]) -> Option<Option<Vec<f32>>> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => Some(None),
        1 => get_f32s(buf).map(Some),
        _ => None,
    }
}

/// Serialises one KV pair's `(params, velocity, residual)` — the payload of
/// a [`Message::Handoff`](crate::transport::Message::Handoff) frame.
pub fn encode_pair_state(params: &[f32], velocity: &[f32], residual: &[f32]) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(12 + 4 * (params.len() + velocity.len() + residual.len()));
    put_f32s(&mut buf, params);
    put_f32s(&mut buf, velocity);
    put_f32s(&mut buf, residual);
    buf.freeze()
}

/// Decodes a [`encode_pair_state`] blob. Strict: trailing bytes reject.
pub fn decode_pair_state(mut buf: &[u8]) -> Option<(Vec<f32>, Vec<f32>, Vec<f32>)> {
    let params = get_f32s(&mut buf)?;
    let velocity = get_f32s(&mut buf)?;
    let residual = get_f32s(&mut buf)?;
    if buf.has_remaining() {
        return None;
    }
    Some((params, velocity, residual))
}

fn put_syncer(buf: &mut BytesMut, st: &SyncerState) {
    buf.put_u32_le(st.velocity.len() as u32);
    for v in &st.velocity {
        put_opt_f32s(buf, v);
    }
    buf.put_u32_le(st.push_residuals.len() as u32);
    for r in &st.push_residuals {
        put_opt_f32s(buf, r);
    }
    buf.put_u32_le(st.seg_residuals.len() as u32);
    for r in &st.seg_residuals {
        put_opt_f32s(buf, r);
    }
}

fn get_syncer(buf: &mut &[u8]) -> Option<SyncerState> {
    let mut lists: Vec<Vec<Option<Vec<f32>>>> = Vec::with_capacity(3);
    for _ in 0..3 {
        if buf.remaining() < 4 {
            return None;
        }
        let n = buf.get_u32_le() as usize;
        let mut list = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            list.push(get_opt_f32s(buf)?);
        }
        lists.push(list);
    }
    let seg_residuals = lists.pop()?;
    let push_residuals = lists.pop()?;
    let velocity = lists.pop()?;
    Some(SyncerState {
        velocity,
        push_residuals,
        seg_residuals,
    })
}

fn put_worker(buf: &mut BytesMut, w: &WorkerCheckpoint) {
    buf.put_u32_le(w.worker);
    buf.put_u64_le(w.next_iter);
    buf.put_u32_le(w.epoch);
    buf.put_u32_le(w.layers.len() as u32);
    for l in &w.layers {
        buf.put_u32_le(l.layer);
        put_f32s(buf, &l.params);
        match &l.sf_velocity {
            None => buf.put_u8(0),
            Some((rows, cols, vw, vb)) => {
                buf.put_u8(1);
                buf.put_u32_le(*rows);
                buf.put_u32_le(*cols);
                put_f32s(buf, vw);
                put_f32s(buf, vb);
            }
        }
        put_syncer(buf, &l.syncer);
    }
}

fn get_worker(buf: &mut &[u8]) -> Option<WorkerCheckpoint> {
    if buf.remaining() < 20 {
        return None;
    }
    let worker = buf.get_u32_le();
    let next_iter = buf.get_u64_le();
    let epoch = buf.get_u32_le();
    let n = buf.get_u32_le() as usize;
    let mut layers = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        if buf.remaining() < 4 {
            return None;
        }
        let layer = buf.get_u32_le();
        let params = get_f32s(buf)?;
        if buf.remaining() < 1 {
            return None;
        }
        let sf_velocity = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 8 {
                    return None;
                }
                let rows = buf.get_u32_le();
                let cols = buf.get_u32_le();
                let vw = get_f32s(buf)?;
                let vb = get_f32s(buf)?;
                Some((rows, cols, vw, vb))
            }
            _ => return None,
        };
        let syncer = get_syncer(buf)?;
        layers.push(LayerCheckpoint {
            layer,
            params,
            sf_velocity,
            syncer,
        });
    }
    Some(WorkerCheckpoint {
        worker,
        next_iter,
        epoch,
        layers,
    })
}

fn put_shard(buf: &mut BytesMut, s: &ShardCheckpoint) {
    buf.put_u32_le(s.shard);
    buf.put_u64_le(s.next_iter);
    buf.put_u32_le(s.epoch);
    buf.put_u32_le(s.pairs.len() as u32);
    for p in &s.pairs {
        buf.put_u32_le(p.key.0);
        buf.put_u32_le(p.key.1);
        put_f32s(buf, &p.params);
        put_f32s(buf, &p.velocity);
        put_f32s(buf, &p.residual);
    }
}

fn get_shard(buf: &mut &[u8]) -> Option<ShardCheckpoint> {
    if buf.remaining() < 20 {
        return None;
    }
    let shard = buf.get_u32_le();
    let next_iter = buf.get_u64_le();
    let epoch = buf.get_u32_le();
    let n = buf.get_u32_le() as usize;
    let mut pairs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        if buf.remaining() < 8 {
            return None;
        }
        let key = (buf.get_u32_le(), buf.get_u32_le());
        let params = get_f32s(buf)?;
        let velocity = get_f32s(buf)?;
        let residual = get_f32s(buf)?;
        pairs.push(PairState {
            key,
            params,
            velocity,
            residual,
        });
    }
    Some(ShardCheckpoint {
        shard,
        next_iter,
        epoch,
        pairs,
    })
}

/// Serialises one worker's checkpoint, self-framed with magic + version.
pub fn encode_worker(w: &WorkerCheckpoint) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(&CKPT_MAGIC);
    buf.put_u8(CKPT_VERSION);
    buf.put_u8(b'W');
    put_worker(&mut buf, w);
    buf.to_vec()
}

/// Serialises one shard's checkpoint, self-framed with magic + version.
pub fn encode_shard(s: &ShardCheckpoint) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(&CKPT_MAGIC);
    buf.put_u8(CKPT_VERSION);
    buf.put_u8(b'S');
    put_shard(&mut buf, s);
    buf.to_vec()
}

fn check_header(buf: &mut &[u8], role: u8) -> Option<()> {
    if buf.remaining() < 6 || buf[..4] != CKPT_MAGIC {
        return None;
    }
    buf.advance(4);
    if buf.get_u8() != CKPT_VERSION || buf.get_u8() != role {
        return None;
    }
    Some(())
}

/// Decodes an [`encode_worker`] buffer. Strict: bad magic, wrong version,
/// wrong role tag, truncation, and trailing bytes all reject.
pub fn decode_worker(mut buf: &[u8]) -> Option<WorkerCheckpoint> {
    check_header(&mut buf, b'W')?;
    let w = get_worker(&mut buf)?;
    (!buf.has_remaining()).then_some(w)
}

/// Decodes an [`encode_shard`] buffer, strict like [`decode_worker`].
pub fn decode_shard(mut buf: &[u8]) -> Option<ShardCheckpoint> {
    check_header(&mut buf, b'S')?;
    let s = get_shard(&mut buf)?;
    (!buf.has_remaining()).then_some(s)
}

/// Serialises a whole-mesh checkpoint.
pub fn encode_training(t: &TrainingCheckpoint) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(&CKPT_MAGIC);
    buf.put_u8(CKPT_VERSION);
    buf.put_u8(b'T');
    buf.put_u64_le(t.next_iter);
    buf.put_u32_le(t.workers.len() as u32);
    for w in &t.workers {
        put_worker(&mut buf, w);
    }
    buf.put_u32_le(t.shards.len() as u32);
    for s in &t.shards {
        put_shard(&mut buf, s);
    }
    buf.to_vec()
}

/// Decodes an [`encode_training`] buffer, strict like [`decode_worker`].
pub fn decode_training(mut buf: &[u8]) -> Option<TrainingCheckpoint> {
    check_header(&mut buf, b'T')?;
    if buf.remaining() < 12 {
        return None;
    }
    let next_iter = buf.get_u64_le();
    let nw = buf.get_u32_le() as usize;
    let mut workers = Vec::with_capacity(nw.min(1 << 16));
    for _ in 0..nw {
        workers.push(get_worker(&mut buf)?);
    }
    if buf.remaining() < 4 {
        return None;
    }
    let ns = buf.get_u32_le() as usize;
    let mut shards = Vec::with_capacity(ns.min(1 << 16));
    for _ in 0..ns {
        shards.push(get_shard(&mut buf)?);
    }
    if buf.has_remaining() {
        return None;
    }
    Some(TrainingCheckpoint {
        next_iter,
        workers,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingCheckpoint {
        TrainingCheckpoint {
            next_iter: 7,
            workers: vec![WorkerCheckpoint {
                worker: 0,
                next_iter: 7,
                epoch: 2,
                layers: vec![
                    LayerCheckpoint {
                        layer: 0,
                        params: vec![1.0, -2.5, 3.25],
                        sf_velocity: Some((2, 1, vec![0.5, -0.5], vec![0.125, 0.0])),
                        syncer: SyncerState {
                            velocity: vec![Some(vec![1.0]), None],
                            push_residuals: vec![None],
                            seg_residuals: vec![Some(vec![-0.25, 0.75])],
                        },
                    },
                    LayerCheckpoint {
                        layer: 2,
                        params: vec![],
                        sf_velocity: None,
                        syncer: SyncerState::default(),
                    },
                ],
            }],
            shards: vec![ShardCheckpoint {
                shard: 1,
                next_iter: 7,
                epoch: 2,
                pairs: vec![PairState {
                    key: (3, 1),
                    params: vec![9.0],
                    velocity: vec![-1.0],
                    residual: vec![],
                }],
            }],
        }
    }

    #[test]
    fn training_checkpoint_roundtrips_bitwise() {
        let t = sample();
        let buf = encode_training(&t);
        assert_eq!(decode_training(&buf), Some(t));
    }

    #[test]
    fn worker_and_shard_roundtrip_standalone() {
        let t = sample();
        let wb = encode_worker(&t.workers[0]);
        assert_eq!(decode_worker(&wb), Some(t.workers[0].clone()));
        let sb = encode_shard(&t.shards[0]);
        assert_eq!(decode_shard(&sb), Some(t.shards[0].clone()));
        // Role tags cross-reject.
        assert_eq!(decode_shard(&wb), None);
        assert_eq!(decode_worker(&sb), None);
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let buf = encode_training(&sample());
        // Any strict prefix is rejected.
        for cut in 0..buf.len() {
            assert_eq!(decode_training(&buf[..cut]), None, "prefix {cut} accepted");
        }
        // Trailing garbage is rejected.
        let mut long = buf.clone();
        long.push(0xAA);
        assert_eq!(decode_training(&long), None);
        // Bad magic / version are rejected.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_training(&bad), None);
        let mut bad = buf;
        bad[4] = CKPT_VERSION + 1;
        assert_eq!(decode_training(&bad), None);
    }

    #[test]
    fn pair_state_blob_roundtrips() {
        let blob = encode_pair_state(&[1.0, 2.0], &[-0.5], &[]);
        assert_eq!(
            decode_pair_state(&blob),
            Some((vec![1.0, 2.0], vec![-0.5], vec![]))
        );
        for cut in 0..blob.len() {
            assert_eq!(decode_pair_state(&blob[..cut]), None);
        }
        let mut long = blob.to_vec();
        long.push(1);
        assert_eq!(decode_pair_state(&long), None);
    }
}
